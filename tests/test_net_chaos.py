"""Chaos regression tests: documented verdicts, no leaked tasks.

Each scenario drives the server/client pair into a specific failure
mode and asserts the engine terminates with a documented effect
(Decoded / Failed) and that every asyncio task is collected.
"""

import asyncio
import random

import pytest

from repro.net import (
    ChaosProxy,
    ConnectionLost,
    DocumentStore,
    MSG_DONE,
    MSG_HELLO,
    MSG_MANIFEST,
    MSG_NEXT_ROUND,
    MSG_ROUND_END,
    NetClient,
    NetServer,
    encode_json,
    read_expected,
    read_message,
)
from repro.net.wire import MSG_ERROR, MSG_FRAME
from repro.transport.cache import PacketCache

from tests.netutil import assert_no_leaked_tasks, make_prepared

pytestmark = pytest.mark.net


def make_store(**kwargs):
    prepared, payload = make_prepared(**kwargs)
    store = DocumentStore()
    store.add(prepared)
    return store, prepared, payload


def test_server_killed_mid_round_fails_the_transfer():
    """kill() mid-transfer: the client's engine terminates Failed."""

    async def go():
        store, prepared, _ = make_store(size=8192, packet_size=64)
        server = NetServer(store)
        await server.start()
        # Heavy drop keeps the transfer multi-round so the kill lands
        # mid-transfer deterministically.
        proxy = ChaosProxy(
            server.host, server.port, rng=random.Random(5), drop=0.97
        )
        await proxy.start()
        try:
            client = NetClient(
                proxy.host,
                proxy.port,
                cache=PacketCache(),
                round_timeout=1.0,
                max_reconnects=1,
                reconnect_delay=0.01,
            )
            fetch = asyncio.ensure_future(client.fetch("doc"))
            while server.stats["rounds_served"] < 1:
                await asyncio.sleep(0.01)
            server.kill()
            result = await fetch
        finally:
            await proxy.stop()
            await server.stop()
        assert result.status == "failed"
        assert not result.success
        assert result.reconnects == 2  # one legal redial, one over budget
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_unreachable_server_raises_connection_lost():
    """No manifest was ever seen: the failure surfaces as an exception."""

    async def go():
        store, _, _ = make_store()
        server = NetServer(store)
        await server.start()
        port = server.port
        await server.stop()  # nothing is listening on `port` now
        client = NetClient(
            "127.0.0.1", port, max_reconnects=1, reconnect_delay=0.01
        )
        with pytest.raises(ConnectionLost):
            await client.fetch("doc")
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_half_open_socket_times_out_server_side():
    """A peer that dials and goes silent is reaped by the round timeout."""

    async def go():
        store, _, _ = make_store()
        async with NetServer(store, round_timeout=0.2) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            deadline = asyncio.get_running_loop().time() + 5.0
            while server.stats["timeouts"] < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            while server.active_connections:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        assert server.stats["timeouts"] == 1
        assert server.active_connections == 0
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_silent_client_after_round_times_out_server_side():
    """HELLO then silence: the server times out waiting for NEXT_ROUND."""

    async def go():
        store, _, _ = make_store(size=512)
        async with NetServer(store, round_timeout=0.2) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(encode_json(MSG_HELLO, {"doc": "doc", "have": []}))
            await writer.drain()
            await read_expected(reader, MSG_MANIFEST)
            # Drain the round but never answer NEXT_ROUND.
            while True:
                msg_type, _ = await read_message(reader)
                if msg_type == MSG_ROUND_END:
                    break
            deadline = asyncio.get_running_loop().time() + 5.0
            while server.stats["timeouts"] < 1:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_slow_reader_is_bounded_by_backpressure():
    """A reader that stalls holds at most send_queue_frames of queue."""

    async def go():
        store, prepared, _ = make_store(size=8192, packet_size=64)
        capacity = 8
        assert prepared.n > capacity  # the round must overrun the queue
        async with NetServer(
            store, round_timeout=10.0, send_queue_frames=capacity
        ) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(encode_json(MSG_HELLO, {"doc": "doc", "have": []}))
            await writer.drain()
            await asyncio.sleep(0.3)  # stall before reading anything
            await read_expected(reader, MSG_MANIFEST)
            frames = 0
            while True:
                msg_type, _ = await read_message(reader)
                if msg_type == MSG_FRAME:
                    frames += 1
                elif msg_type == MSG_ROUND_END:
                    break
            assert frames == prepared.n
            writer.write(encode_json(MSG_DONE, {"status": "decoded", "round": 1}))
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            deadline = asyncio.get_running_loop().time() + 5.0
            while server.active_connections:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
        assert server.stats["completed"] == 1
        assert 0 < server.stats["sendq_high_water"] <= capacity
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_two_concurrent_clients_same_document():
    """Per-connection engines: concurrent fetches never interfere."""

    async def go():
        store, _, payload = make_store(size=4096)
        async with NetServer(store) as server:
            clients = [
                NetClient(server.host, server.port, cache=PacketCache())
                for _ in range(2)
            ]
            results = await asyncio.gather(
                *(client.fetch("doc") for client in clients)
            )
        for result in results:
            assert result.status == "decoded"
            assert result.payload == payload
        assert server.stats["connections"] == 2
        assert server.stats["completed"] == 2
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_round_bound_enforced_server_side():
    """A client that keeps asking for rounds is refused at max_rounds."""

    async def go():
        store, _, _ = make_store(size=512)
        async with NetServer(store, max_rounds=3) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(encode_json(MSG_HELLO, {"doc": "doc", "have": []}))
            await writer.drain()
            await read_expected(reader, MSG_MANIFEST)
            refused = False
            for _ in range(10):
                while True:
                    msg_type, body = await read_message(reader)
                    if msg_type == MSG_ROUND_END:
                        break
                    if msg_type == MSG_ERROR:
                        refused = True
                        break
                if refused:
                    break
                writer.write(
                    encode_json(MSG_NEXT_ROUND, {"round": 0, "have": []})
                )
                await writer.drain()
            assert refused
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        assert server.stats["errors"] == 1
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_graceful_stop_drains_inflight_transfer():
    """stop() lets an in-flight fetch finish before closing."""

    async def go():
        store, _, payload = make_store(size=4096)
        server = NetServer(store)
        await server.start()
        client = NetClient(server.host, server.port, cache=PacketCache())
        fetch = asyncio.ensure_future(client.fetch("doc"))
        while server.stats["connections"] < 1:
            await asyncio.sleep(0.005)
        await server.stop(drain_timeout=5.0)
        result = await fetch
        assert result.status == "decoded"
        assert result.payload == payload
        await assert_no_leaked_tasks()

    asyncio.run(go())
