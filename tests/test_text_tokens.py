"""Tests for repro.text.tokens."""

from repro.text.tokens import iter_tokens, lead_in_sentence, split_sentences, tokenize


class TestTokenize:
    def test_basic_words(self):
        assert tokenize("Mobile web environment") == ["mobile", "web", "environment"]

    def test_punctuation_stripped(self):
        assert tokenize("browsing, mobile; web!") == ["browsing", "mobile", "web"]

    def test_hyphen_and_apostrophe_kept(self):
        assert tokenize("weakly-connected client's") == [
            "weakly-connected",
            "client's",
        ]

    def test_numbers_alone_dropped(self):
        assert tokenize("19.2 kbps in 2000") == ["kbps", "in"]

    def test_alphanumeric_kept(self):
        assert tokenize("IEEE 802 and x25 protocols") == [
            "ieee",
            "and",
            "x25",
            "protocols",
        ]

    def test_case_preserved_when_requested(self):
        assert tokenize("XML DTD", lowercase=False) == ["XML", "DTD"]

    def test_empty(self):
        assert tokenize("") == []
        assert tokenize("   \n\t ") == []

    def test_iter_matches_list(self):
        text = "The quick brown-fox jumps"
        assert list(iter_tokens(text)) == tokenize(text)


class TestSentences:
    def test_split_simple(self):
        text = "First sentence. Second one! Third?"
        assert split_sentences(text) == ["First sentence.", "Second one!", "Third?"]

    def test_no_split_mid_abbreviation_lowercase(self):
        # Terminator followed by lowercase is not a boundary.
        text = "Bandwidth is 19.2 kbps. next words"
        assert len(split_sentences(text)) == 1

    def test_empty(self):
        assert split_sentences("") == []
        assert split_sentences("   ") == []

    def test_lead_in(self):
        paragraph = "Lead sentences summarize. The rest elaborates."
        assert lead_in_sentence(paragraph) == "Lead sentences summarize."

    def test_lead_in_empty(self):
        assert lead_in_sentence("") == ""
