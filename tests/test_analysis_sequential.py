"""Tests for sequential repetition control."""

import random

import pytest

from repro.analysis.sequential import run_until_tight


class TestConvergence:
    def test_zero_variance_converges_immediately(self):
        result = run_until_tight(lambda i: 5.0, min_repetitions=3)
        assert result.converged
        assert result.repetitions == 3
        assert result.mean == 5.0
        assert result.half_width == 0.0

    def test_noisy_stream_needs_more_repetitions(self):
        rng = random.Random(0)
        noisy = run_until_tight(
            lambda i: rng.gauss(10.0, 2.0),
            relative_precision=0.05,
            max_repetitions=500,
        )
        assert noisy.converged
        assert noisy.repetitions > 3
        assert noisy.relative_half_width <= 0.05

    def test_tighter_precision_needs_more_samples(self):
        def make_stream(seed):
            rng = random.Random(seed)
            return lambda i: rng.gauss(10.0, 2.0)

        loose = run_until_tight(
            make_stream(1), relative_precision=0.2, max_repetitions=500
        )
        tight = run_until_tight(
            make_stream(1), relative_precision=0.02, max_repetitions=2000
        )
        assert tight.repetitions > loose.repetitions

    def test_gives_up_at_max(self):
        rng = random.Random(2)
        result = run_until_tight(
            lambda i: rng.gauss(0.0, 100.0),  # mean ~0: never tight
            relative_precision=0.01,
            max_repetitions=10,
        )
        assert not result.converged
        assert result.repetitions == 10

    def test_zero_mean_zero_variance(self):
        result = run_until_tight(lambda i: 0.0)
        assert result.converged
        assert result.mean == 0.0

    def test_sample_receives_index(self):
        seen = []
        run_until_tight(lambda i: seen.append(i) or 1.0, min_repetitions=3)
        assert seen[:3] == [0, 1, 2]


class TestValidation:
    def test_bad_precision(self):
        with pytest.raises(ValueError):
            run_until_tight(lambda i: 1.0, relative_precision=0.0)

    def test_max_below_min(self):
        with pytest.raises(ValueError):
            run_until_tight(lambda i: 1.0, min_repetitions=5, max_repetitions=2)


class TestSimulationIntegration:
    def test_session_means_tighten(self):
        """The paper's 1–5% dispersion claim: session means converge
        within a handful of repetitions at the default configuration."""
        import random as _random

        from repro.simulation.parameters import Parameters
        from repro.simulation.runner import simulate_session

        params = Parameters(documents_per_session=40, max_rounds=10)
        master = _random.Random(7)

        def sample(_index):
            rng = _random.Random(master.getrandbits(64))
            return simulate_session(params, rng, caching=True).mean_response_time

        result = run_until_tight(sample, relative_precision=0.05, max_repetitions=60)
        assert result.converged
        assert result.repetitions <= 60
