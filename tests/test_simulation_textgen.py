"""Tests for the synthetic corpus generator, including end-to-end
search quality on a generated corpus."""

import random

import pytest

from repro.simulation.textgen import CorpusGenerator, ZipfSampler, make_vocabulary
from repro.xmlkit.dtd import RESEARCH_PAPER
from repro.xmlkit.parser import parse_xml


class TestVocabulary:
    def test_size_and_uniqueness(self):
        words = make_vocabulary(300, seed=1)
        assert len(words) == 300
        assert len(set(words)) == 300

    def test_deterministic(self):
        assert make_vocabulary(50, seed=2) == make_vocabulary(50, seed=2)
        assert make_vocabulary(50, seed=2) != make_vocabulary(50, seed=3)

    def test_words_are_alphabetic(self):
        for word in make_vocabulary(100, seed=4):
            assert word.isalpha()
            assert 2 <= len(word) <= 20


class TestZipfSampler:
    def test_rank_frequency_decreases(self):
        sampler = ZipfSampler(200, exponent=1.2)
        rng = random.Random(0)
        counts = [0] * 200
        for _ in range(20_000):
            counts[sampler.sample(rng)] += 1
        # Head ranks dominate tail ranks.
        assert counts[0] > counts[50] > counts[150]

    def test_all_indices_in_range(self):
        sampler = ZipfSampler(10)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(1000))

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, exponent=0.0)


class TestDocuments:
    def test_valid_research_paper(self):
        generator = CorpusGenerator(seed=5)
        xml, _topic = generator.document(0)
        document = parse_xml(xml)
        RESEARCH_PAPER.validate(document)

    def test_geometry(self):
        generator = CorpusGenerator(seed=5)
        xml, _ = generator.document(0, sections=3, subsections=2, paragraphs=2)
        document = parse_xml(xml)
        assert len(document.root.find_all("section")) == 3
        assert len(document.root.find_all("subsection")) == 6
        # 12 body paragraphs + 1 abstract paragraph.
        assert len(document.root.find_all("paragraph")) == 13

    def test_reproducible(self):
        a = CorpusGenerator(seed=6).document(3)
        b = CorpusGenerator(seed=6).document(3)
        assert a == b

    def test_topic_words_present(self):
        generator = CorpusGenerator(seed=7)
        xml, topic = generator.document(0, topic=2, topic_bias=0.5)
        text = xml.lower()
        hits = sum(1 for word in generator.topics[2] if word in text)
        assert hits >= len(generator.topics[2]) // 2

    def test_corpus_balanced_topics(self):
        generator = CorpusGenerator(topic_count=4, seed=8)
        corpus = generator.corpus(8)
        topics = [topic for _xml, topic in corpus.values()]
        assert sorted(topics) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_vocabulary_too_small(self):
        with pytest.raises(ValueError):
            CorpusGenerator(vocabulary_size=10, topic_count=5, topic_words=4)


class TestSearchQuality:
    def test_topic_queries_retrieve_topic_documents(self):
        """End to end: generate a corpus, index it, and check the
        engine returns on-topic documents for topic queries."""
        from repro.search.engine import SearchEngine

        generator = CorpusGenerator(topic_count=4, seed=9)
        corpus = generator.corpus(12, sections=2, subsections=1, paragraphs=2)
        engine = SearchEngine()
        truth = {}
        for doc_id, (xml, topic) in corpus.items():
            engine.add_document(doc_id, parse_xml(xml))
            truth[doc_id] = topic

        correct = 0
        for topic in range(4):
            hits = engine.search(generator.topic_query(topic), limit=3)
            assert hits, f"no hits for topic {topic}"
            correct += sum(1 for hit in hits if truth[hit.document_id] == topic)
        # At least two-thirds of the top results are on topic.
        assert correct >= 8
