"""End-to-end tests of the Figure 1 prototype: browse, render, recover."""

import random

import pytest

from repro.prototype import (
    DatabaseGateway,
    DocumentTransmitterService,
    MobileBrowser,
    ObjectRequestBroker,
)
from repro.transport import PacketCache, WirelessChannel

PAPER = """<paper>
  <title>Prototype Demo Paper</title>
  <abstract><paragraph>Weakly connected mobile browsing of web documents.</paragraph></abstract>
  <section>
    <title>Transmission</title>
    <paragraph>Cooked packets survive corruption through redundancy coding,
    and redundancy coding protects the wireless packets on every transfer
    so the browsing client can reconstruct documents reliably.</paragraph>
  </section>
  <section>
    <title>Caching</title>
    <paragraph>Caching intact packets bridges stalled downloads so that
    repeated transmissions become cheaper for the mobile client over
    the weakly connected wireless channel.</paragraph>
  </section>
</paper>"""


def make_browser(alpha=0.0, seed=0, cache=None):
    gateway = DatabaseGateway()
    gateway.put("paper-1", PAPER)
    broker = ObjectRequestBroker()
    broker.register("transmitter", DocumentTransmitterService(gateway))
    channel = WirelessChannel(alpha=alpha, rng=random.Random(seed))
    return MobileBrowser(broker, channel, cache=cache)


class TestCleanBrowse:
    def test_full_download(self):
        browser = make_browser()
        result = browser.browse("paper-1")
        assert result.success
        assert not result.terminated_early
        assert result.document_text is not None
        assert "redundancy" in result.document_text

    def test_all_units_rendered(self):
        browser = make_browser()
        result = browser.browse("paper-1")
        labels = {event.label for event in result.rendered}
        # Every scheduled unit eventually renders.
        assert any("1" == label or label.startswith("1.") for label in labels)
        assert len(labels) >= 3

    def test_render_positions_follow_document_order(self):
        browser = make_browser()
        result = browser.browse("paper-1")
        by_label = {event.label: event.position for event in result.rendered}
        # Abstract paragraph precedes section 2 content in position.
        abstract = [p for label, p in by_label.items() if label.startswith("0")]
        section2 = [p for label, p in by_label.items() if label.startswith("2")]
        assert min(abstract) < min(section2)

    def test_unknown_document(self):
        browser = make_browser()
        with pytest.raises(KeyError):
            browser.browse("missing")


class TestIncrementalRendering:
    def test_render_times_monotone(self):
        browser = make_browser(alpha=0.2, seed=3)
        result = browser.browse("paper-1")
        times = [event.time for event in result.rendered]
        assert times == sorted(times)

    def test_query_orders_relevant_units_first(self):
        browser = make_browser()
        result = browser.browse("paper-1", query_text="caching stalled")
        assert result.rendered
        first_label = result.rendered[0].label
        # The caching section (2.x) or its paragraph must render first.
        assert first_label.startswith("2")


class TestLossyBrowse:
    def test_recovers_under_corruption(self):
        browser = make_browser(alpha=0.3, seed=1, cache=PacketCache())
        result = browser.browse("paper-1", gamma=2.0)
        assert result.success
        assert "redundancy" in result.document_text

    def test_early_termination_by_relevance(self):
        browser = make_browser()
        result = browser.browse("paper-1", relevance_threshold=0.2)
        assert result.terminated_early
        assert result.document_text is None

    def test_gamma_controls_cooked_count(self):
        gateway = DatabaseGateway()
        gateway.put("paper-1", PAPER)
        service = DocumentTransmitterService(gateway)
        from repro.prototype.messages import FetchRequest

        manifest_low, prepared_low = service.fetch(
            FetchRequest("paper-1", gamma=1.0)
        )
        manifest_high, prepared_high = service.fetch(
            FetchRequest("paper-1", gamma=2.0)
        )
        assert manifest_low.m == manifest_high.m
        assert manifest_high.n > manifest_low.n


class TestManifest:
    def test_manifest_measure_selection(self):
        gateway = DatabaseGateway()
        gateway.put("paper-1", PAPER)
        service = DocumentTransmitterService(gateway)
        from repro.prototype.messages import FetchRequest

        manifest_plain, _ = service.fetch(FetchRequest("paper-1"))
        assert manifest_plain.measure == "ic"
        manifest_query, _ = service.fetch(
            FetchRequest("paper-1", query_text="caching")
        )
        assert manifest_query.measure == "mqic"

    def test_manifest_offsets_contiguous(self):
        gateway = DatabaseGateway()
        gateway.put("paper-1", PAPER)
        service = DocumentTransmitterService(gateway)
        from repro.prototype.messages import FetchRequest

        manifest, prepared = service.fetch(FetchRequest("paper-1"))
        offset = 0
        for unit in manifest.units:
            assert unit.offset == offset
            offset += unit.size
        assert offset == manifest.total_bytes
