"""Tests for the synthetic workload generator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lod import LOD
from repro.simulation.parameters import Parameters
from repro.simulation.workload import (
    SyntheticDocument,
    generate_session,
    relevance_flags,
)


def make_doc(seed=0, **kwargs):
    params = Parameters(**kwargs) if kwargs else Parameters()
    return SyntheticDocument(params, random.Random(seed)), params


class TestParagraphIC:
    def test_normalized(self):
        doc, params = make_doc()
        assert sum(doc.paragraph_ic) == pytest.approx(1.0)
        assert len(doc.paragraph_ic) == params.paragraphs == 20

    def test_all_positive(self):
        doc, _ = make_doc()
        assert all(ic > 0 for ic in doc.paragraph_ic)

    def test_skew_controls_spread(self):
        """max/min ratio tracks δ (the paper's skew factor)."""
        rng = random.Random(0)
        params5 = Parameters(delta=5.0)
        ratios = []
        for _ in range(50):
            doc = SyntheticDocument(params5, rng)
            ratios.append(max(doc.paragraph_ic) / min(doc.paragraph_ic))
        average_ratio = sum(ratios) / len(ratios)
        assert 2.0 < average_ratio <= 5.0 + 1e-9

    def test_delta_one_uniform(self):
        doc, _ = make_doc(delta=1.0)
        assert max(doc.paragraph_ic) == pytest.approx(min(doc.paragraph_ic))


class TestUnitIC:
    def test_section_grouping(self):
        doc, _ = make_doc()
        sections = doc.unit_ic(LOD.SECTION)
        assert len(sections) == 5
        assert sum(sections) == pytest.approx(1.0)
        assert sections[0] == pytest.approx(sum(doc.paragraph_ic[0:4]))

    def test_subsection_grouping(self):
        doc, _ = make_doc()
        subsections = doc.unit_ic(LOD.SUBSECTION)
        assert len(subsections) == 10
        assert subsections[3] == pytest.approx(sum(doc.paragraph_ic[6:8]))

    def test_paragraph_identity(self):
        doc, _ = make_doc()
        assert doc.unit_ic(LOD.PARAGRAPH) == doc.paragraph_ic

    def test_subsubsection_same_as_paragraph(self):
        """§5.3: the simulated documents have no subsubsections."""
        doc, _ = make_doc()
        assert doc.unit_ic(LOD.SUBSUBSECTION) == doc.paragraph_ic


class TestOrdering:
    def test_document_lod_sequential(self):
        doc, _ = make_doc()
        assert doc.paragraph_order(LOD.DOCUMENT) == list(range(20))

    def test_paragraph_lod_descending_ic(self):
        doc, _ = make_doc()
        order = doc.paragraph_order(LOD.PARAGRAPH)
        values = [doc.paragraph_ic[i] for i in order]
        assert values == sorted(values, reverse=True)

    def test_order_is_permutation(self):
        doc, _ = make_doc()
        for lod in LOD:
            assert sorted(doc.paragraph_order(lod)) == list(range(20))

    def test_section_lod_keeps_intra_section_order(self):
        doc, _ = make_doc()
        order = doc.paragraph_order(LOD.SECTION)
        # Paragraphs arrive in blocks of 4 consecutive indices.
        for block_start in range(0, 20, 4):
            block = order[block_start : block_start + 4]
            assert block == sorted(block)
            assert block[-1] - block[0] == 3


class TestContentProfile:
    def test_sums_to_one(self):
        doc, params = make_doc()
        for lod in LOD:
            profile = doc.content_profile(lod)
            assert len(profile) == params.m
            assert sum(profile) == pytest.approx(1.0)

    def test_finer_lod_frontloads_content(self):
        """The whole point of multi-resolution: at any prefix, finer
        LOD ordering has delivered at least as much content."""
        doc, params = make_doc(delta=5.0)
        sequential = doc.content_profile(LOD.DOCUMENT)
        ranked = doc.content_profile(LOD.PARAGRAPH)
        cumulative_seq = 0.0
        cumulative_ranked = 0.0
        for seq_value, ranked_value in zip(sequential, ranked):
            cumulative_seq += seq_value
            cumulative_ranked += ranked_value
            assert cumulative_ranked >= cumulative_seq - 1e-9

    def test_profile_matches_paragraph_bytes(self):
        doc, params = make_doc()
        # 512-byte paragraphs over 256-byte packets: each packet is
        # half a paragraph, so consecutive packet pairs carry equal
        # halves of one paragraph's content.
        profile = doc.content_profile(LOD.DOCUMENT)
        for index in range(0, params.m, 2):
            assert profile[index] == pytest.approx(profile[index + 1])
            paragraph = index // 2
            assert profile[index] == pytest.approx(doc.paragraph_ic[paragraph] / 2)


class TestSession:
    def test_generate_session_count(self):
        params = Parameters(documents_per_session=17)
        docs = generate_session(params, random.Random(0))
        assert len(docs) == 17

    def test_relevance_flags_exact_fraction(self):
        params = Parameters(documents_per_session=100, irrelevant=0.3)
        flags = relevance_flags(params, random.Random(0))
        assert sum(flags) == 30

    def test_relevance_flags_shuffled(self):
        params = Parameters(documents_per_session=100, irrelevant=0.5)
        flags = relevance_flags(params, random.Random(1))
        assert flags != sorted(flags, reverse=True)
