"""Equivalence of the byte-level protocol and the oracle simulator.

The evaluation (§5) runs on :func:`repro.simulation.runner.simulate_transfer`,
which replays the transfer protocol on packet indices only.  These
tests drive both implementations with the *same* corruption pattern
and assert they terminate after the same number of frames — the
property that makes the fast simulator a valid stand-in for the real
protocol.
"""

import random
from typing import List

import pytest

from repro.coding.packets import Packetizer
from repro.simulation.runner import simulate_transfer
from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.sender import DocumentSender
from repro.transport.session import transfer_document


class ScriptedChannel(WirelessChannel):
    """A channel whose corruption decisions follow a fixed script."""

    def __init__(self, script: List[bool], bandwidth_kbps: float = 19.2) -> None:
        super().__init__(bandwidth_kbps=bandwidth_kbps, alpha=0.5)
        self._script = list(script)
        self._cursor = 0

    def send(self, wire: bytes):
        corrupt = self._script[self._cursor % len(self._script)]
        self._cursor += 1
        self.clock += self.transmission_time(len(wire))
        self.frames_sent += 1
        if corrupt:
            self.frames_corrupted += 1
            from repro.transport.channel import Delivery

            return Delivery(self.clock, self._garble(wire), True, False)
        from repro.transport.channel import Delivery

        return Delivery(self.clock, wire, False, False)


class ScriptedRandom(random.Random):
    """random.Random whose .random() follows the same script.

    Returns 0.99 (≥ α ⇒ intact) or 0.0 (< α ⇒ corrupt), matching the
    simulator's `rand() < alpha` test with alpha = 0.5.
    """

    def __init__(self, script: List[bool]) -> None:
        super().__init__(0)
        self._script = list(script)
        self._cursor = 0

    def random(self) -> float:
        value = 0.0 if self._script[self._cursor % len(self._script)] else 0.99
        self._cursor += 1
        return value


def run_both(script, document_size=2048, gamma=1.5, caching=True,
             threshold=None, max_rounds=10):
    packet_size = 256
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=gamma))
    prepared = sender.prepare_raw("doc", b"D" * document_size)

    channel = ScriptedChannel(script)
    cache = PacketCache() if caching else None
    byte_level = transfer_document(
        prepared, channel, cache=cache,
        relevance_threshold=threshold, max_rounds=max_rounds,
    )

    oracle = simulate_transfer(
        m=prepared.m, n=prepared.n, alpha=0.5,
        packet_time=channel.transmission_time(packet_size + 4),
        rng=ScriptedRandom(script), caching=caching,
        relevance_threshold=threshold,
        content_profile=prepared.content_profile,
        max_rounds=max_rounds,
    )
    return byte_level, oracle


SCRIPTS = {
    "clean": [False] * 64,
    "alternating": [False, True] * 32,
    "bursty": ([True] * 5 + [False] * 11) * 4,
    "mostly_bad": ([True] * 3 + [False]) * 16,
}


class TestEquivalence:
    @pytest.mark.parametrize("name", list(SCRIPTS))
    @pytest.mark.parametrize("caching", [True, False])
    def test_full_download_same_frames(self, name, caching):
        byte_level, oracle = run_both(SCRIPTS[name], caching=caching)
        assert byte_level.success == oracle.success
        assert byte_level.frames_sent == oracle.packets_sent
        assert byte_level.rounds == oracle.rounds
        assert byte_level.response_time == pytest.approx(oracle.response_time)

    @pytest.mark.parametrize("name", list(SCRIPTS))
    def test_early_termination_same_frames(self, name):
        byte_level, oracle = run_both(SCRIPTS[name], threshold=0.4)
        assert byte_level.success == oracle.success
        assert byte_level.terminated_early == oracle.terminated_early
        assert byte_level.frames_sent == oracle.packets_sent

    def test_stall_and_giveup_agree(self):
        script = [True] * 64  # everything corrupted
        byte_level, oracle = run_both(script, max_rounds=3)
        assert not byte_level.success and not oracle.success
        assert byte_level.frames_sent == oracle.packets_sent
        assert byte_level.rounds == oracle.rounds == 3
