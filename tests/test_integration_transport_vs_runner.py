"""Three-way parity of the §4.2 protocol implementations.

Both the byte-exact transport session and the oracle-mode simulator
are now thin drivers around :class:`repro.protocol.TransferEngine`.
This suite proves three things:

1. **Cross-driver equivalence** — the byte path and the oracle path
   driven by the *same* corruption pattern terminate after the same
   number of frames (the property that makes the fast simulator a
   valid stand-in for the real protocol), and a bare engine fed typed
   events agrees with both;
2. **Golden regression** — both drivers reproduce, bit-for-bit, the
   outcomes recorded from the pre-refactor implementations
   (``tests/data/protocol_goldens.json``, written by
   ``tools/record_protocol_goldens.py`` before the engine existed)
   across seeded geometries, α values, and both cache policies;
3. **CRN determinism** — engine-driven sessions remain byte-identical
   between serial and ``--jobs`` parallel sweeps.
"""

import json
import random
from functools import lru_cache
from pathlib import Path
from typing import List

import pytest

from repro.coding.packets import Packetizer
from repro.protocol import FrameCorrupt, FrameDelivered, RoundEnded, TransferEngine
from repro.simulation.parallel import SessionTask, map_session_means
from repro.simulation.parameters import Parameters
from repro.simulation.runner import simulate_transfer
from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.sender import DocumentSender
from repro.transport.session import transfer_document

GOLDENS_PATH = Path(__file__).resolve().parent / "data" / "protocol_goldens.json"


class ScriptedChannel(WirelessChannel):
    """A channel whose corruption decisions follow a fixed script."""

    def __init__(self, script: List[bool], bandwidth_kbps: float = 19.2) -> None:
        super().__init__(bandwidth_kbps=bandwidth_kbps, alpha=0.5)
        self._script = list(script)
        self._cursor = 0

    def send(self, wire: bytes):
        corrupt = self._script[self._cursor % len(self._script)]
        self._cursor += 1
        self.clock += self.transmission_time(len(wire))
        self.frames_sent += 1
        if corrupt:
            self.frames_corrupted += 1
            from repro.transport.channel import Delivery

            return Delivery(self.clock, self._garble(wire), True, False)
        from repro.transport.channel import Delivery

        return Delivery(self.clock, wire, False, False)


class ScriptedRandom(random.Random):
    """random.Random whose .random() follows the same script.

    Returns 0.99 (≥ α ⇒ intact) or 0.0 (< α ⇒ corrupt), matching the
    simulator's `rand() < alpha` test with alpha = 0.5.
    """

    def __init__(self, script: List[bool]) -> None:
        super().__init__(0)
        self._script = list(script)
        self._cursor = 0

    def random(self) -> float:
        value = 0.0 if self._script[self._cursor % len(self._script)] else 0.99
        self._cursor += 1
        return value


def run_both(script, document_size=2048, gamma=1.5, caching=True,
             threshold=None, max_rounds=10):
    packet_size = 256
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=gamma))
    prepared = sender.prepare_raw("doc", b"D" * document_size)

    channel = ScriptedChannel(script)
    cache = PacketCache() if caching else None
    byte_level = transfer_document(
        prepared, channel, cache=cache,
        relevance_threshold=threshold, max_rounds=max_rounds,
    )

    oracle = simulate_transfer(
        m=prepared.m, n=prepared.n, alpha=0.5,
        packet_time=channel.transmission_time(packet_size + 4),
        rng=ScriptedRandom(script), caching=caching,
        relevance_threshold=threshold,
        content_profile=prepared.content_profile,
        max_rounds=max_rounds,
    )
    return byte_level, oracle


SCRIPTS = {
    "clean": [False] * 64,
    "alternating": [False, True] * 32,
    "bursty": ([True] * 5 + [False] * 11) * 4,
    "mostly_bad": ([True] * 3 + [False]) * 16,
}


class TestEquivalence:
    @pytest.mark.parametrize("name", list(SCRIPTS))
    @pytest.mark.parametrize("caching", [True, False])
    def test_full_download_same_frames(self, name, caching):
        byte_level, oracle = run_both(SCRIPTS[name], caching=caching)
        assert byte_level.success == oracle.success
        assert byte_level.frames_sent == oracle.packets_sent
        assert byte_level.rounds == oracle.rounds
        assert byte_level.response_time == pytest.approx(oracle.response_time)

    @pytest.mark.parametrize("name", list(SCRIPTS))
    def test_early_termination_same_frames(self, name):
        byte_level, oracle = run_both(SCRIPTS[name], threshold=0.4)
        assert byte_level.success == oracle.success
        assert byte_level.terminated_early == oracle.terminated_early
        assert byte_level.frames_sent == oracle.packets_sent

    def test_stall_and_giveup_agree(self):
        script = [True] * 64  # everything corrupted
        byte_level, oracle = run_both(script, max_rounds=3)
        assert not byte_level.success and not oracle.success
        assert byte_level.frames_sent == oracle.packets_sent
        assert byte_level.rounds == oracle.rounds == 3


def drive_engine(script, m, n, content_profile, caching, threshold, max_rounds):
    """A third §4.2 implementation: the bare engine fed typed events."""
    engine = TransferEngine(
        m,
        n,
        content_profile=content_profile,
        caching=caching,
        relevance_threshold=threshold,
        max_rounds=max_rounds,
    )
    frames_sent = 0
    cursor = 0
    terminal = engine.start()
    while terminal is None:
        for seq in range(n):
            corrupt = script[cursor % len(script)]
            cursor += 1
            frames_sent += 1
            event = FrameCorrupt(seq) if corrupt else FrameDelivered(seq)
            engine.handle(event)
            terminal = engine.finished
            if terminal is not None:
                break
        else:
            engine.handle(RoundEnded())
            terminal = engine.finished
    return terminal, frames_sent


class TestEngineAgreesWithBothDrivers:
    """The bare engine is the third leg of the parity triangle."""

    @pytest.mark.parametrize("name", list(SCRIPTS))
    @pytest.mark.parametrize("caching", [True, False])
    @pytest.mark.parametrize("threshold", [None, 0.4])
    def test_same_outcome_and_frames(self, name, caching, threshold):
        script = SCRIPTS[name]
        byte_level, oracle = run_both(script, caching=caching, threshold=threshold)
        sender = DocumentSender(Packetizer(packet_size=256, redundancy_ratio=1.5))
        prepared = sender.prepare_raw("doc", b"D" * 2048)
        terminal, frames_sent = drive_engine(
            script,
            prepared.m,
            prepared.n,
            prepared.content_profile,
            caching=caching,
            threshold=threshold,
            max_rounds=10,
        )
        from repro.protocol import EarlyStop, Failed

        assert byte_level.success == (not isinstance(terminal, Failed))
        assert byte_level.terminated_early == isinstance(terminal, EarlyStop)
        assert byte_level.rounds == terminal.round
        assert byte_level.frames_sent == frames_sent == oracle.packets_sent


# ---------------------------------------------------------------------------
# Golden regression: pre-refactor outcomes, replayed bit-for-bit
# ---------------------------------------------------------------------------


@lru_cache(maxsize=None)
def _goldens():
    return json.loads(GOLDENS_PATH.read_text())


@lru_cache(maxsize=None)
def _golden_prepared(doc_size: int, gamma: float):
    sender = DocumentSender(
        Packetizer(packet_size=_goldens()["packet_size"], redundancy_ratio=gamma)
    )
    payload = bytes(range(256)) * (doc_size // 256)
    return sender.prepare_raw("golden", payload), payload


def _case_id(case, keys):
    return " ".join(f"{key}={case[key]}" for key in keys)


class TestGoldenTransportReplay:
    """Engine-driven session == pre-refactor session, exactly."""

    @pytest.mark.parametrize(
        "geometry", sorted({(c["doc_size"], c["gamma"]) for c in _goldens()["transport"]})
    )
    def test_byte_path_matches_goldens(self, geometry):
        doc_size, gamma = geometry
        goldens = _goldens()
        prepared, payload = _golden_prepared(doc_size, gamma)
        cases = [
            c
            for c in goldens["transport"]
            if (c["doc_size"], c["gamma"]) == geometry
        ]
        assert cases
        for case in cases:
            channel = WirelessChannel(
                alpha=case["alpha"], rng=random.Random(case["seed"])
            )
            cache = PacketCache() if case["caching"] else None
            result = transfer_document(
                prepared,
                channel,
                cache=cache,
                relevance_threshold=case["threshold"],
                max_rounds=goldens["max_rounds"],
            )
            label = _case_id(case, ("alpha", "caching", "threshold", "seed"))
            assert result.success == case["success"], label
            assert result.terminated_early == case["terminated_early"], label
            assert result.rounds == case["rounds"], label
            assert result.frames_sent == case["frames_sent"], label
            assert result.response_time == case["response_time"], label
            assert result.content_received == case["content_received"], label
            payload_ok = result.payload == payload if result.payload is not None else None
            assert payload_ok == case["payload_ok"], label


class TestGoldenOracleReplay:
    """Engine-driven oracle runner == pre-refactor runner, exactly."""

    @pytest.mark.parametrize(
        "geometry", sorted({(c["m"], c["n"]) for c in _goldens()["oracle"]})
    )
    def test_oracle_path_matches_goldens(self, geometry):
        m, n = geometry
        goldens = _goldens()
        cases = [c for c in goldens["oracle"] if (c["m"], c["n"]) == geometry]
        assert cases
        for case in cases:
            profile = [1.0 / m] * m if case["threshold"] is not None else None
            outcome = simulate_transfer(
                m=m,
                n=n,
                alpha=case["alpha"],
                packet_time=goldens["packet_time"],
                rng=random.Random(case["seed"]),
                caching=case["caching"],
                relevance_threshold=case["threshold"],
                content_profile=profile,
                max_rounds=goldens["max_rounds"],
            )
            label = _case_id(case, ("alpha", "caching", "threshold", "seed"))
            assert outcome.success == case["success"], label
            assert outcome.terminated_early == case["terminated_early"], label
            assert outcome.rounds == case["rounds"], label
            assert outcome.packets_sent == case["packets_sent"], label
            assert outcome.response_time == case["response_time"], label


class TestCrnDeterminismUnderJobs:
    """Engine-driven sessions stay byte-identical across worker counts."""

    def test_serial_and_parallel_sweeps_agree(self):
        params = Parameters(repetitions=4, documents_per_session=4)
        master = random.Random(99)
        seeds = tuple(master.getrandbits(64) for _ in range(4))
        tasks = [
            SessionTask(params, seeds, caching)
            for caching in (False, True)
        ]
        serial = map_session_means(tasks, jobs=1)
        parallel = map_session_means(tasks, jobs=2)
        assert serial == parallel  # bit-for-bit, not approx
