"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data import draft_paper_path

DRAFT = str(draft_paper_path())


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_seed_echoed_in_transfer_output(self, capsys):
        assert main(["transfer", DRAFT, "--alpha", "0.2", "--seed", "5"]) == 0
        assert "seed=5" in capsys.readouterr().out


class TestSc:
    def test_prints_tree(self, capsys):
        assert main(["sc", DRAFT]) == 0
        out = capsys.readouterr().out
        assert "# measure: ic" in out
        assert "document" in out
        assert "0.0.1" in out

    def test_query_switches_measure(self, capsys):
        assert main(["sc", DRAFT, "--query", "browsing mobile web"]) == 0
        assert "# measure: mqic" in capsys.readouterr().out

    def test_html_input(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text("<h1>Wireless</h1><p>Mobile web browsing content.</p>")
        assert main(["sc", str(page), "--html"]) == 0
        assert "section" in capsys.readouterr().out


class TestSchedule:
    def test_cumulative_reaches_one(self, capsys):
        assert main(["schedule", DRAFT, "--lod", "paragraph"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        last = out[-1]
        assert "cumulative= 1.0000" in last or "cumulative=  1.0000" in last.replace("1.00000", "1.0000")

    def test_lod_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["schedule", DRAFT, "--lod", "chapter"])


class TestPlan:
    def test_output(self, capsys):
        assert main(["plan", "--m", "40", "--alpha", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "N=48" in out
        assert "gamma=1.200" in out


class TestTransfer:
    def test_successful_transfer(self, capsys):
        code = main(
            ["transfer", DRAFT, "--alpha", "0.2", "--cache", "--seed", "1"]
        )
        assert code == 0
        assert "ok:" in capsys.readouterr().out

    def test_early_stop(self, capsys):
        code = main(
            ["transfer", DRAFT, "--alpha", "0.0", "--stop-at", "0.3"]
        )
        assert code == 0
        assert "early-stop" in capsys.readouterr().out

    def test_failure_exit_code(self, capsys):
        # gamma=1.0 on a terrible channel cannot finish; CLI signals it.
        code = main(
            [
                "transfer", DRAFT,
                "--alpha", "0.8", "--gamma", "1.0", "--seed", "2",
            ]
        )
        assert code == 1
        assert "FAILED" in capsys.readouterr().out


class TestChaosFlags:
    def test_deprecated_flags_forward_to_chaos_model(self, capsys):
        with pytest.warns(DeprecationWarning, match="--chaos-model iid:corrupt=0.1"):
            code = main(
                ["transfer", DRAFT, "--chaos-corrupt", "0.1", "--seed", "3"]
            )
        assert code == 0
        assert "ok:" in capsys.readouterr().out

    def test_both_chaos_surfaces_is_an_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "transfer", DRAFT,
                    "--chaos-model", "iid:corrupt=0.1",
                    "--chaos-drop", "0.2",
                ]
            )
        assert excinfo.value.code == 2
        assert "not both" in capsys.readouterr().out

    def test_legacy_flags_are_byte_identical_to_the_spec(self, capsys):
        # The deprecated flags synthesize the iid: spec and ride the
        # same parser, so a seeded run is reproduced exactly.
        args = ["transfer", DRAFT, "--seed", "11"]
        assert main(args + ["--chaos-model", "iid:corrupt=0.2,drop=0.05"]) == 0
        spec_out = capsys.readouterr().out
        with pytest.warns(DeprecationWarning):
            assert (
                main(args + ["--chaos-corrupt", "0.2", "--chaos-drop", "0.05"])
                == 0
            )
        legacy_out = capsys.readouterr().out
        assert legacy_out == spec_out


class TestDeliveryFlag:
    def test_fetch_accepts_delivery_choices(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["net", "fetch", "doc", "--delivery", "carousel"]
        )
        assert args.delivery == "carousel"
        with pytest.raises(SystemExit):
            parser.parse_args(["net", "fetch", "doc", "--delivery", "anycast"])

    def test_serve_carousel_excludes_broker_and_workers(self, capsys):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["net", "serve", DRAFT, "--carousel"])
        assert args.carousel is True
        assert args.carousel_schedule == "flat"


class TestFigure:
    def test_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["figure", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "fig2", "fig7"):
            assert name in out
