"""Multi-worker serving: pool lifecycle, shared disk tier, drain.

Marked ``net``: spawns real worker processes on loopback sockets.
The cluster-wide guarantees under test — one cook however many
workers fork, graceful drain with final snapshots, no leaked
processes, warmup running once in the parent — are the tentpole
acceptance criteria of the multi-worker issue.
"""

import asyncio
import os
import signal
import time

import pytest

from repro.net import merge_snapshots, render_exposition, run_loadgen
from repro.net.workers import WorkerConfig, WorkerPool
from repro.prep import PrepRequest, PreparationService

from tests.test_prep_service import PAPER

pytestmark = [pytest.mark.net]

REQUEST = PrepRequest(query="mobile web", packet_size=64)


def pool_config(tmp_path, **overrides):
    kwargs = dict(
        documents=(("doc", PAPER, False),),
        default_request=REQUEST,
        disk_root=str(tmp_path / "cache"),
        round_timeout=5.0,
    )
    kwargs.update(overrides)
    return WorkerConfig(**kwargs)


def loadgen(pool, clients):
    report, results = asyncio.run(
        run_loadgen(pool.host, pool.port, "doc", clients=clients, request=REQUEST)
    )
    return report, results


def settled_snapshot(pool, served, deadline_seconds=10.0):
    """Merged snapshot once the fleet has accounted *served* transfers.

    Client-side success races ahead of server-side bookkeeping: a
    handler only notices the departed client on its next socket op.
    Poll until completed + client_gone reaches the expected total (or
    the deadline passes and the last snapshot speaks for itself).
    """
    deadline = time.monotonic() + deadline_seconds
    while True:
        merged = pool.stats_snapshot(timeout=10.0)
        total = (
            merged["server"]["completed"] + merged["server"]["client_gone"]
        )
        if total >= served or time.monotonic() >= deadline:
            return merged
        time.sleep(0.05)


def assert_all_reaped(pool):
    """No leaked worker processes: every pid is gone (or a zombie we own)."""
    assert pool.alive() == 0
    for pid in pool.pids:
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue  # fully gone
        # Still signalable: must be our already-joined child (reaped
        # by multiprocessing), never a running process.
        assert not any(
            process.pid == pid and process.is_alive()
            for process in pool._processes
        )


class TestPoolLifecycle:
    def test_two_workers_one_cook_cluster_wide(self, tmp_path):
        with WorkerPool(pool_config(tmp_path), workers=2) as pool:
            report, results = loadgen(pool, 16)
            assert report.succeeded == 16
            payloads = {result.payload for result in results}
            assert len(payloads) == 1  # byte-identical across workers

            merged = settled_snapshot(pool, served=16)
            labels = {w.get("worker") for w in merged["workers"]}
            assert labels == {"w0", "w1"}
            # One pipeline run cluster-wide: a single cooked miss and a
            # single bundle write; every other first touch was a disk
            # hit (counted as a cooked hit).
            assert merged["prep"]["cooked_misses"] == 1
            assert merged["prep"]["disk_writes"] == 1
            assert merged["prep"]["disk_errors"] == 0
            # A client that closes the instant it decodes can race the
            # server's own bookkeeping into client_gone, so gate on the
            # sum rather than the exact completed split.
            served = (
                merged["server"]["completed"]
                + merged["server"]["client_gone"]
            )
            assert served == 16
        assert_all_reaped(pool)

    def test_stop_returns_one_final_snapshot_per_worker(self, tmp_path):
        pool = WorkerPool(pool_config(tmp_path), workers=2)
        pool.start()
        loadgen(pool, 4)
        finals = pool.stop(drain_timeout=5.0)
        assert len(finals) == 2
        assert all(final is not None for final in finals)
        assert (
            sum(
                final["server"]["completed"]
                + final["server"]["client_gone"]
                for final in finals
            )
            == 4
        )
        assert_all_reaped(pool)

    def test_shared_listener_fallback(self, tmp_path):
        config = pool_config(tmp_path, reuse_port=False)
        with WorkerPool(config, workers=2) as pool:
            assert pool._listener is not None
            report, _ = loadgen(pool, 8)
            assert report.succeeded == 8
            merged = pool.stats_snapshot(timeout=10.0)
            assert merged["prep"]["cooked_misses"] == 1
        assert_all_reaped(pool)

    def test_merged_exposition_carries_worker_labels(self, tmp_path):
        with WorkerPool(pool_config(tmp_path), workers=2) as pool:
            loadgen(pool, 4)
            merged = pool.stats_snapshot(timeout=10.0)
        body = render_exposition(merged)
        assert 'worker="w0"' in body
        assert 'worker="w1"' in body
        # The merged (unlabeled) family rides alongside the labeled ones.
        assert "\nrepro_server_completed " in "\n" + body


class TestWarmupRunsOnce:
    def test_parent_warmup_keeps_cluster_misses_at_one(self, tmp_path):
        # The ``--warmup --workers 4`` fix: the parent cooks into the
        # shared disk tier before any worker exists, so the cluster
        # keeps prep.misses{cooked} == 1 (the parent's) and no worker
        # ever runs the pipeline.
        disk_root = tmp_path / "cache"
        parent = PreparationService(
            default_request=REQUEST, disk_path=disk_root
        )
        parent.add_document("doc", PAPER)
        assert parent.warmup() == 1
        assert parent.stats["cooked_misses"] == 1
        assert parent.stats["disk_writes"] == 1

        config = pool_config(tmp_path, warmup=False)
        with WorkerPool(config, workers=4) as pool:
            report, _ = loadgen(pool, 12)
            assert report.succeeded == 12
            merged = pool.stats_snapshot(timeout=10.0)
            # Not a single worker re-cooked or re-persisted: every
            # first touch was a verified disk load.  Each worker loads
            # at most once, but SO_REUSEPORT makes no promise that a
            # small client burst reaches every worker, so the hit
            # count is a range rather than an equality.
            assert merged["prep"]["cooked_misses"] == 0
            assert merged["prep"]["disk_writes"] == 0
            assert 1 <= merged["prep"]["disk_hits"] <= len(merged["workers"])
        assert_all_reaped(pool)


class TestDrain:
    def test_sigterm_drains_one_worker(self, tmp_path):
        with WorkerPool(pool_config(tmp_path), workers=2) as pool:
            victim = pool.pids[1]
            os.kill(victim, signal.SIGTERM)
            deadline = time.monotonic() + 15.0
            while pool.alive() > 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert pool.alive() == 1
            # The survivor still serves the shared port.
            report, _ = loadgen(pool, 4)
            assert report.succeeded == 4
        assert_all_reaped(pool)


class TestMergeSnapshots:
    def test_counters_sum_and_percentiles_weight(self):
        a = {
            "server": {"completed": 3, "frames_sent": 30},
            "active_connections": 1,
            "prep": {"cooked_misses": 1, "cooked_hits": 2},
            "slo": {
                "count": 10, "errors": 1, "error_budget": 0.05,
                "over_target": 1, "total_observed": 10, "total_errors": 1,
                "p50_seconds": 0.1, "p95_seconds": 0.2,
                "p99_seconds": 0.3, "mean_seconds": 0.12,
            },
            "worker": "w0",
        }
        b = {
            "server": {"completed": 1, "frames_sent": 10},
            "active_connections": 0,
            "prep": {"cooked_misses": 0, "cooked_hits": 1},
            "slo": {
                "count": 30, "errors": 0, "error_budget": 0.05,
                "over_target": 0, "total_observed": 30, "total_errors": 0,
                "p50_seconds": 0.2, "p95_seconds": 0.4,
                "p99_seconds": 0.5, "mean_seconds": 0.24,
            },
            "worker": "w1",
        }
        merged = merge_snapshots([a, b])
        assert merged["server"] == {"completed": 4, "frames_sent": 40}
        assert merged["active_connections"] == 1
        assert merged["prep"] == {"cooked_misses": 1, "cooked_hits": 3}
        slo = merged["slo"]
        assert slo["count"] == 40 and slo["errors"] == 1
        assert slo["approximate"] is True
        assert slo["p50_seconds"] == pytest.approx(
            (0.1 * 10 + 0.2 * 30) / 40
        )
        assert merged["workers"] == [a, b]

    def test_empty_merge_is_well_formed(self):
        merged = merge_snapshots([])
        assert merged["server"] == {}
        assert merged["workers"] == []
        assert merged["active_connections"] == 0
        assert "broadcast" not in merged

    def test_broadcast_sections_merge_with_approximate_label(self):
        a = {
            "server": {},
            "broadcast": {
                "enabled": True, "schedule": "skewed", "documents": 4,
                "period_slots": 241, "subscribers": 2, "subscriptions": 5,
                "slots_dropped": 1, "cycles_aired": 3, "frames_aired": 720,
                "bytes_aired": 195_000,
            },
        }
        b = {
            "server": {},
            "broadcast": {
                "enabled": True, "schedule": "skewed", "documents": 4,
                "period_slots": 241, "subscribers": 1, "subscriptions": 2,
                "slots_dropped": 0, "cycles_aired": 1, "frames_aired": 240,
                "bytes_aired": 65_000,
            },
        }
        merged = merge_snapshots([a, b])
        broadcast = merged["broadcast"]
        assert broadcast["enabled"] is True
        assert broadcast["schedule"] == "skewed"
        assert broadcast["documents"] == 4
        assert broadcast["period_slots"] == 241
        assert broadcast["subscribers"] == 3
        assert broadcast["subscriptions"] == 7
        assert broadcast["slots_dropped"] == 1
        assert broadcast["cycles_aired"] == 4
        assert broadcast["frames_aired"] == 960
        assert broadcast["bytes_aired"] == 260_000
        # The per-cycle mean blends independent worker streams, so it
        # carries the same label the merged SLO percentiles do.
        assert broadcast["mean_cycle_bytes"] == pytest.approx(260_000 / 4)
        assert broadcast["approximate"] is True

    def test_unicast_only_fleet_has_no_broadcast_section(self):
        merged = merge_snapshots([{"server": {"completed": 1}}])
        assert "broadcast" not in merged
