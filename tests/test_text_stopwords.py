"""Tests for repro.text.stopwords."""

from repro.text.stopwords import DEFAULT_STOPWORDS, is_stopword, remove_stopwords


class TestStopwordList:
    def test_common_function_words_present(self):
        for word in ("the", "and", "of", "to", "is", "with", "that"):
            assert word in DEFAULT_STOPWORDS

    def test_content_words_absent(self):
        for word in ("mobile", "web", "browsing", "packet", "document"):
            assert word not in DEFAULT_STOPWORDS

    def test_frozen(self):
        assert isinstance(DEFAULT_STOPWORDS, frozenset)


class TestIsStopword:
    def test_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("AND")

    def test_extra_words(self):
        assert not is_stopword("figure")
        assert is_stopword("figure", extra=["figure"])


class TestRemoveStopwords:
    def test_preserves_order(self):
        tokens = ["the", "mobile", "web", "is", "weakly", "connected"]
        assert remove_stopwords(tokens) == ["mobile", "web", "weakly", "connected"]

    def test_empty(self):
        assert remove_stopwords([]) == []

    def test_extra_is_case_insensitive(self):
        assert remove_stopwords(["Table", "data"], extra=["table"]) == ["data"]

    def test_all_stopwords(self):
        assert remove_stopwords(["the", "of", "and"]) == []
