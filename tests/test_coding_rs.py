"""Tests for the erasure codecs: the any-M-of-N reconstruction property."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.rs import (
    MAX_COOKED,
    CodecError,
    RabinDispersal,
    SystematicRSCodec,
)


def random_packets(rng: random.Random, m: int, size: int):
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(m)]


class TestConfiguration:
    def test_n_less_than_m_rejected(self):
        with pytest.raises(CodecError):
            SystematicRSCodec(5, 4)

    def test_n_above_field_limit_rejected(self):
        with pytest.raises(CodecError):
            SystematicRSCodec(10, 256)

    def test_max_cooked_boundary_allowed(self):
        SystematicRSCodec(10, MAX_COOKED)

    def test_n_equals_m_degenerates_to_identity(self):
        codec = SystematicRSCodec(3, 3)
        raw = [b"aa", b"bb", b"cc"]
        assert codec.encode(raw) == raw


class TestSystematicProperty:
    def test_clear_text_prefix(self):
        rng = random.Random(0)
        codec = SystematicRSCodec(6, 11)
        raw = random_packets(rng, 6, 32)
        cooked = codec.encode(raw)
        assert cooked[:6] == raw

    def test_indices_helpers(self):
        codec = SystematicRSCodec(4, 7)
        assert list(codec.clear_text_indices()) == [0, 1, 2, 3]
        assert list(codec.redundancy_indices()) == [4, 5, 6]

    def test_rabin_is_not_systematic(self):
        rng = random.Random(1)
        codec = RabinDispersal(4, 8)
        raw = random_packets(rng, 4, 16)
        cooked = codec.encode(raw)
        # With high probability no cooked packet equals a raw one
        # (row 0 of the Vandermonde is all-ones, a checksum of rows).
        assert cooked[:4] != raw


class TestAnyMofN:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.booleans(),
    )
    def test_random_subsets_reconstruct(self, seed, m, extra, systematic):
        rng = random.Random(seed)
        n = m + extra
        codec_cls = SystematicRSCodec if systematic else RabinDispersal
        codec = codec_cls(m, n)
        raw = random_packets(rng, m, 24)
        cooked = codec.encode(raw)
        keep = rng.sample(range(n), m)
        assert codec.decode({i: cooked[i] for i in keep}) == raw

    def test_every_possible_subset_small_code(self):
        """Exhaustive check for (M=3, N=6): all C(6,3)=20 subsets work."""
        import itertools

        rng = random.Random(7)
        codec = SystematicRSCodec(3, 6)
        raw = random_packets(rng, 3, 8)
        cooked = codec.encode(raw)
        for subset in itertools.combinations(range(6), 3):
            assert codec.decode({i: cooked[i] for i in subset}) == raw

    def test_extra_packets_ignored(self):
        rng = random.Random(3)
        codec = SystematicRSCodec(3, 6)
        raw = random_packets(rng, 3, 8)
        cooked = codec.encode(raw)
        assert codec.decode({i: cooked[i] for i in range(6)}) == raw


class TestDecodeErrors:
    def test_too_few_packets(self):
        codec = SystematicRSCodec(4, 6)
        raw = random_packets(random.Random(0), 4, 8)
        cooked = codec.encode(raw)
        with pytest.raises(CodecError, match="at least 4"):
            codec.decode({0: cooked[0], 1: cooked[1], 5: cooked[5]})

    def test_index_out_of_range(self):
        codec = SystematicRSCodec(2, 4)
        with pytest.raises(CodecError, match="out of range"):
            codec.decode({0: b"aa", 1: b"bb", 9: b"cc"})

    def test_mismatched_sizes(self):
        codec = SystematicRSCodec(2, 4)
        with pytest.raises(CodecError, match="same length"):
            codec.decode({0: b"aa", 1: b"b"})

    def test_encode_wrong_count(self):
        codec = SystematicRSCodec(3, 5)
        with pytest.raises(CodecError, match="expected 3"):
            codec.encode([b"a", b"b"])

    def test_encode_mismatched_lengths(self):
        codec = SystematicRSCodec(2, 4)
        with pytest.raises(CodecError, match="same length"):
            codec.encode([b"aa", b"a"])


class TestCorruptionSemantics:
    def test_m_minus_one_insufficient(self):
        """Any M−1 packets must not be accepted (the threshold is exact)."""
        codec = RabinDispersal(5, 9)
        raw = random_packets(random.Random(5), 5, 16)
        cooked = codec.encode(raw)
        with pytest.raises(CodecError):
            codec.decode({i: cooked[i] for i in range(4)})

    def test_decode_cache_consistency(self):
        """Repeated decodes with the same subset reuse the cached inverse."""
        rng = random.Random(11)
        codec = SystematicRSCodec(4, 8)
        raw = random_packets(rng, 4, 8)
        cooked = codec.encode(raw)
        subset = {1: cooked[1], 4: cooked[4], 6: cooked[6], 7: cooked[7]}
        first = codec.decode(subset)
        second = codec.decode(subset)
        assert first == second == raw
