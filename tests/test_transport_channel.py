"""Tests for the wireless channel model."""

import random

import pytest

from repro.coding.packets import decode_frame, encode_frame
from repro.transport.channel import WirelessChannel


class TestTiming:
    def test_table2_packet_time(self):
        """260 bytes at 19.2 kbps ≈ 0.1083 s (Table 2 geometry)."""
        channel = WirelessChannel(bandwidth_kbps=19.2)
        assert channel.transmission_time(260) == pytest.approx(260 * 8 / 19200)

    def test_clock_advances_per_frame(self):
        channel = WirelessChannel(bandwidth_kbps=19.2, alpha=0.0)
        channel.send(b"x" * 260)
        channel.send(b"x" * 260)
        assert channel.clock == pytest.approx(2 * 260 * 8 / 19200)

    def test_fifo_delivery_times_monotone(self):
        channel = WirelessChannel(alpha=0.5, rng=random.Random(0))
        times = [channel.send(b"y" * 100).time for _ in range(20)]
        assert times == sorted(times)


class TestCorruption:
    def test_alpha_zero_never_corrupts(self):
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        for _ in range(100):
            delivery = channel.send(b"data" * 10)
            assert not delivery.corrupted
            assert delivery.wire == b"data" * 10

    def test_alpha_one_always_corrupts(self):
        channel = WirelessChannel(alpha=1.0, rng=random.Random(0))
        for _ in range(50):
            delivery = channel.send(b"data" * 10)
            assert delivery.corrupted
            assert delivery.wire != b"data" * 10

    def test_corruption_rate_statistical(self):
        channel = WirelessChannel(alpha=0.3, rng=random.Random(42))
        n = 5000
        corrupted = sum(channel.send(b"z" * 50).corrupted for _ in range(n))
        assert corrupted / n == pytest.approx(0.3, abs=0.03)

    def test_corrupted_frame_fails_crc(self):
        """Corruption must be *detectable* — the paper's channel model."""
        channel = WirelessChannel(alpha=1.0, rng=random.Random(1))
        wire = encode_frame(5, b"p" * 64)
        for _ in range(50):
            delivery = channel.send(wire)
            assert not decode_frame(delivery.wire).intact

    def test_garble_preserves_length(self):
        channel = WirelessChannel(alpha=1.0, rng=random.Random(2))
        delivery = channel.send(b"q" * 99)
        assert len(delivery.wire) == 99


class TestLoss:
    def test_loss_probability(self):
        channel = WirelessChannel(
            alpha=0.0, loss_probability=1.0, rng=random.Random(0)
        )
        delivery = channel.send(b"gone")
        assert delivery.lost
        assert delivery.wire is None

    def test_lost_frames_consume_air_time(self):
        channel = WirelessChannel(loss_probability=1.0, rng=random.Random(0))
        channel.send(b"x" * 100)
        assert channel.clock > 0


class TestInstrumentation:
    def test_counters(self):
        channel = WirelessChannel(alpha=0.5, rng=random.Random(3))
        for _ in range(200):
            channel.send(b"c" * 20)
        assert channel.frames_sent == 200
        assert 0 < channel.frames_corrupted < 200
        rate = channel.observed_corruption_rate()
        assert rate == pytest.approx(channel.frames_corrupted / 200)

    def test_reset(self):
        channel = WirelessChannel(alpha=0.5, rng=random.Random(3))
        channel.send(b"x")
        channel.reset_counters()
        assert channel.frames_sent == 0
        assert channel.observed_corruption_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WirelessChannel(bandwidth_kbps=0)
        with pytest.raises(ValueError):
            WirelessChannel(alpha=1.1)
