"""Shared helpers for the socket-marked ``net``/``slow`` suites."""

import asyncio
import os
import random

from repro.channel import GilbertElliottModel, IIDModel
from repro.coding.packets import Packetizer
from repro.transport.sender import DocumentSender


def chaos_model(alpha, seed, *, drop=0.0, disconnect=0.0, burst_length=5.0):
    """The chaos :class:`~repro.channel.ChannelModel` CI selects.

    ``REPRO_CHAOS_MODEL`` picks the channel family — ``iid`` (default)
    or ``gilbert`` (burst errors matched to the same stationary
    *alpha*) — so the chaos-matrix CI leg replays the same suite over
    both channel shapes without editing any test.
    """
    kind = os.environ.get("REPRO_CHAOS_MODEL", "iid").strip().lower()
    rng = random.Random(seed)
    if kind in ("", "iid"):
        return IIDModel(rng=rng, drop=drop, corrupt=alpha, disconnect=disconnect)
    if kind == "gilbert":
        if drop or disconnect:
            raise ValueError(
                "the gilbert chaos family models corruption only; "
                "drop/disconnect need REPRO_CHAOS_MODEL=iid"
            )
        return GilbertElliottModel.matched_to_alpha(
            alpha, burst_length=burst_length, rng=rng
        )
    raise ValueError(
        f"unknown REPRO_CHAOS_MODEL {kind!r} (valid: iid, gilbert)"
    )


def make_prepared(
    document_id="doc",
    size=2048,
    packet_size=64,
    gamma=1.5,
    seed=99,
):
    """Cook a deterministic pseudo-random payload; returns (prepared, payload)."""
    payload = bytes(random.Random(seed).randrange(256) for _ in range(size))
    sender = DocumentSender(
        Packetizer(packet_size=packet_size, redundancy_ratio=gamma)
    )
    return sender.prepare_raw(document_id, payload), payload


async def assert_no_leaked_tasks():
    """Every server/proxy/client task must be finished by teardown.

    Each test runs under its own ``asyncio.run`` loop, so anything
    still pending here was leaked by the code under test.
    """
    for _ in range(5):  # let done-callbacks and cancellations settle
        await asyncio.sleep(0)
    current = asyncio.current_task()
    leaked = [
        task for task in asyncio.all_tasks() if task is not current and not task.done()
    ]
    assert not leaked, f"leaked tasks: {leaked!r}"
