"""Shared helpers for the socket-marked ``net``/``slow`` suites."""

import asyncio
import random

from repro.coding.packets import Packetizer
from repro.transport.sender import DocumentSender


def make_prepared(
    document_id="doc",
    size=2048,
    packet_size=64,
    gamma=1.5,
    seed=99,
):
    """Cook a deterministic pseudo-random payload; returns (prepared, payload)."""
    payload = bytes(random.Random(seed).randrange(256) for _ in range(size))
    sender = DocumentSender(
        Packetizer(packet_size=packet_size, redundancy_ratio=gamma)
    )
    return sender.prepare_raw(document_id, payload), payload


async def assert_no_leaked_tasks():
    """Every server/proxy/client task must be finished by teardown.

    Each test runs under its own ``asyncio.run`` loop, so anything
    still pending here was leaked by the code under test.
    """
    for _ in range(5):  # let done-callbacks and cancellations settle
        await asyncio.sleep(0)
    current = asyncio.current_task()
    leaked = [
        task for task in asyncio.all_tasks() if task is not current and not task.done()
    ]
    assert not leaked, f"leaked tasks: {leaked!r}"
