"""Adaptive redundancy over real sockets (the paper's §4.2 EWMA γ).

With ``adaptive_gamma=True`` the server sizes every round from its
per-client loss estimate instead of streaming all N cooked frames:
clean channels converge toward ``gamma_floor`` (redundant frames are
withheld), bursty ones push γ up toward ``gamma_ceiling``.  These
tests pin both directions plus the ``net.adaptive.*`` telemetry and
the stats-snapshot surface.
"""

import asyncio
import random

import pytest

from repro import obs
from repro.channel import GilbertElliottModel
from repro.net import ChaosProxy, DocumentStore, NetServer
from repro.net.client import NetClient
from repro.prep.request import TransferSettings
from repro.transport.cache import PacketCache

from tests.netutil import assert_no_leaked_tasks, make_prepared

pytestmark = pytest.mark.net


def make_store(**kwargs):
    prepared, payload = make_prepared(**kwargs)
    store = DocumentStore()
    store.add(prepared)
    return store, prepared, payload


async def fetch_once(server, *, via=None):
    host = via.host if via is not None else server.host
    port = via.port if via is not None else server.port
    client = NetClient(
        host,
        port,
        cache=PacketCache(),
        settings=TransferSettings(round_timeout=2.0, max_reconnects=8),
        reconnect_delay=0.01,
    )
    return await client.fetch("doc")


def test_clean_channel_converges_to_the_floor_and_saves_frames():
    """No loss observed: γ sits at the floor, redundancy is withheld."""

    async def go():
        store, prepared, payload = make_store(size=8192, packet_size=64, gamma=2.0)
        async with NetServer(
            store, adaptive_gamma=True, initial_loss=0.0
        ) as server:
            result = await fetch_once(server)
            assert result.status == "decoded"
            assert result.payload == payload
            # The fixed-γ server would stream all N frames in round 1;
            # the adaptive one sends only need × γ_floor = M of them.
            assert server.stats["frames_sent"] < prepared.n
            assert server.stats["frames_sent"] >= prepared.m
            assert server.stats["adaptive_rounds"] >= 1
            assert server.stats["adaptive_frames_saved"] > 0
            snapshot = server.stats_snapshot()
            assert snapshot["adaptive"]["enabled"] is True
            assert snapshot["adaptive"]["clients"] == 1
            assert snapshot["adaptive"]["rounds"] >= 1
            assert snapshot["adaptive"]["frames_saved"] > 0
            (controller,) = server._gamma_controllers.values()
            assert controller.alpha_estimate == pytest.approx(0.0)
            assert controller.gamma() == pytest.approx(server.gamma_floor)
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_bursty_channel_pushes_gamma_above_the_clean_baseline():
    """Observed losses raise the EWMA estimate and with it γ."""

    async def go():
        store, prepared, payload = make_store(size=8192, packet_size=64, gamma=2.0)
        async with NetServer(
            store, adaptive_gamma=True, initial_loss=0.0, gamma_ceiling=3.0
        ) as server:
            model = GilbertElliottModel.matched_to_alpha(
                0.35, burst_length=6.0, rng=random.Random(20000806)
            )
            async with ChaosProxy(
                server.host, server.port, model=model
            ) as proxy:
                result = await fetch_once(server, via=proxy)
            assert result.status == "decoded"
            assert result.payload == payload
            assert proxy.stats["corrupted"] > 0
            assert result.rounds > 1  # corruption forced retransmission
            (controller,) = server._gamma_controllers.values()
            # The EWMA absorbed real loss: γ left the floor.
            assert controller.alpha_estimate > 0.05
            assert controller.gamma() > server.gamma_floor
            assert controller.gamma() <= server.gamma_ceiling
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_reconnecting_client_keeps_its_channel_estimate():
    """Controllers are keyed by transfer ID: a redial resumes the EWMA."""

    async def go():
        store, prepared, payload = make_store(size=8192, packet_size=64, gamma=2.0)
        async with NetServer(
            store, adaptive_gamma=True, initial_loss=0.0
        ) as server:
            model = GilbertElliottModel.matched_to_alpha(
                0.3, burst_length=5.0, rng=random.Random(7)
            )
            async with ChaosProxy(
                server.host,
                server.port,
                model=model,
                cut_after_frames=prepared.m // 2,
            ) as proxy:
                result = await fetch_once(server, via=proxy)
            assert result.status == "decoded"
            assert result.reconnects >= 1
            # Both connections fed the *same* controller.
            assert len(server._gamma_controllers) == 1
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_adaptive_metrics_land_in_the_obs_registry():
    """net.adaptive.* gauges/counters are visible when telemetry is on."""

    async def go():
        store, _, _ = make_store(size=4096, packet_size=64, gamma=2.0)
        async with NetServer(store, adaptive_gamma=True) as server:
            result = await fetch_once(server)
            assert result.status == "decoded"
            assert server.stats["adaptive_rounds"] >= 1
        await assert_no_leaked_tasks()

    obs.enable()
    try:
        asyncio.run(go())
        metrics = obs.OBS.metrics
        assert metrics.get("net.adaptive.gamma") is not None
        assert metrics.get("net.adaptive.alpha") is not None
        rounds = metrics.get("net.adaptive.rounds")
        assert rounds is not None and rounds.total >= 1
        assert metrics.get("net.adaptive.frames_saved") is not None
    finally:
        obs.disable(reset=True)


def test_adaptive_knobs_are_validated_eagerly():
    store = DocumentStore()
    with pytest.raises(ValueError, match="floor"):
        NetServer(store, adaptive_gamma=True, gamma_floor=0.5)
    with pytest.raises(ValueError, match="ceiling"):
        NetServer(store, adaptive_gamma=True, gamma_floor=2.0, gamma_ceiling=1.5)
    # Disabled servers skip the validation path entirely.
    NetServer(store, adaptive_gamma=False, gamma_floor=0.5)
