"""Tests for GF(2^8) matrices and Gaussian elimination."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.gf256 import gf_mul
from repro.coding.matrix import GFMatrix


def random_matrix(rng: random.Random, n: int) -> GFMatrix:
    return GFMatrix([[rng.randrange(256) for _ in range(n)] for _ in range(n)])


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GFMatrix([])
        with pytest.raises(ValueError):
            GFMatrix([[]])

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 2], [3]])

    def test_rejects_out_of_field(self):
        with pytest.raises(ValueError):
            GFMatrix([[256]])
        with pytest.raises(ValueError):
            GFMatrix([[-1]])

    def test_identity(self):
        identity = GFMatrix.identity(3)
        assert identity.is_identity()
        assert identity.nrows == identity.ncols == 3


class TestVandermonde:
    def test_shape_and_entries(self):
        v = GFMatrix.vandermonde(4, 3)
        assert (v.nrows, v.ncols) == (4, 3)
        # Row i is [1, x_i, x_i^2] with x_i = i+1.
        assert v.row(0) == [1, 1, 1]
        assert v.row(1) == [1, 2, 4]

    def test_too_many_rows_rejected(self):
        with pytest.raises(ValueError):
            GFMatrix.vandermonde(256, 3)

    def test_any_square_submatrix_invertible(self):
        """The property the erasure code rests on."""
        v = GFMatrix.vandermonde(12, 5)
        rng = random.Random(0)
        for _ in range(20):
            rows = sorted(rng.sample(range(12), 5))
            sub = v.submatrix(rows)
            assert sub.rank() == 5
            sub.inverse()  # must not raise


class TestMultiply:
    def test_identity_neutral(self):
        rng = random.Random(1)
        m = random_matrix(rng, 4)
        assert m.multiply(GFMatrix.identity(4)) == m
        assert GFMatrix.identity(4).multiply(m) == m

    def test_dimension_check(self):
        with pytest.raises(ValueError):
            GFMatrix.identity(2).multiply(GFMatrix.identity(3))

    def test_multiply_vector_matches_matrix(self):
        rng = random.Random(2)
        m = random_matrix(rng, 3)
        vector = [rng.randrange(256) for _ in range(3)]
        column = GFMatrix([[v] for v in vector])
        product = m.multiply(column)
        assert [product[i, 0] for i in range(3)] == m.multiply_vector(vector)

    def test_vector_length_check(self):
        with pytest.raises(ValueError):
            GFMatrix.identity(3).multiply_vector([1, 2])


class TestInverse:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=6))
    def test_inverse_roundtrip(self, seed, n):
        rng = random.Random(seed)
        while True:
            m = random_matrix(rng, n)
            if m.rank() == n:
                break
        assert m.multiply(m.inverse()).is_identity()
        assert m.inverse().multiply(m).is_identity()

    def test_singular_raises(self):
        singular = GFMatrix([[1, 2], [1, 2]])
        with pytest.raises(ValueError, match="singular"):
            singular.inverse()

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 2, 3], [4, 5, 6]]).inverse()


class TestRank:
    def test_full_rank_identity(self):
        assert GFMatrix.identity(5).rank() == 5

    def test_duplicate_rows(self):
        assert GFMatrix([[1, 2], [1, 2], [2, 4]]).rank() == 1

    def test_zero_matrix(self):
        assert GFMatrix([[0, 0], [0, 0]]).rank() == 0

    def test_wide_matrix(self):
        assert GFMatrix([[1, 0, 0], [0, 1, 0]]).rank() == 2
