"""Unit tests for the rendering manager and manifest ordering."""

import pytest

from repro.prototype.client import RenderingManager, _label_sort_key
from repro.prototype.messages import FetchManifest, UnitDescriptor


def make_manifest(units):
    descriptors = []
    offset = 0
    for label, size, content in units:
        descriptors.append(
            UnitDescriptor(label=label, offset=offset, size=size, content=content)
        )
        offset += size
    return FetchManifest(
        document_id="doc",
        measure="ic",
        total_bytes=offset,
        m=4,
        n=6,
        units=descriptors,
    )


class TestLabelSortKey:
    def test_numeric_hierarchy(self):
        labels = ["3.2.1", "1", "2.10", "2.2", "0", "10"]
        ordered = sorted(labels, key=_label_sort_key)
        assert ordered == ["0", "1", "2.2", "2.10", "3.2.1", "10"]

    def test_title_suffix_ignored(self):
        assert _label_sort_key("2(title)") == _label_sort_key("2")

    def test_non_numeric_sorts_first(self):
        assert _label_sort_key("D") < _label_sort_key("0")

    def test_mixed_alpha_pieces_are_totally_ordered(self):
        # Regression: non-numeric pieces used to collapse to -1, so
        # "A.2" vs "B.1" compared equal in the first piece and sorted
        # arbitrarily.  The key is now total and deterministic.
        assert _label_sort_key("A.2") < _label_sort_key("B.1")
        assert _label_sort_key("A.2") > _label_sort_key("A.1")
        labels = ["B.1", "A.2", "A.10", "A.9", "B", "A"]
        ordered = sorted(labels, key=_label_sort_key)
        assert ordered == ["A", "A.2", "A.9", "A.10", "B", "B.1"]

    def test_alpha_and_numeric_pieces_do_not_collide(self):
        # "D" is not the same sort position as any number.
        keys = {_label_sort_key(label) for label in ["D", "-1", "0", "1"]}
        assert len(keys) == 4

    def test_title_suffix_strip_is_not_positional(self):
        # Only the *trailing* marker is stripped (structure.py appends
        # it); a piece that merely contains the text is left alone.
        assert _label_sort_key("2 (title)") == _label_sort_key("2")
        assert _label_sort_key("intro(title)") == _label_sort_key("intro")
        assert _label_sort_key("(title)x.1") != _label_sort_key("x.1")

    def test_key_is_total_over_mixed_sets(self):
        labels = ["3.2.1", "A", "1", "2.10", "B.2", "2.2", "0", "10", "D"]
        ordered = sorted(labels, key=_label_sort_key)
        # Non-numeric heads first (text order), then numeric in value order.
        assert ordered == ["A", "B.2", "D", "0", "1", "2.2", "2.10", "3.2.1", "10"]


class TestRenderingManager:
    def test_unit_renders_when_fully_covered(self):
        manifest = make_manifest([("2", 10, 0.6), ("1", 10, 0.4)])
        renderer = RenderingManager(manifest)
        # 9 bytes: unit "2" (first in stream) not fully covered yet.
        assert renderer.on_bytes(b"x" * 9, time=1.0) == []
        events = renderer.on_bytes(b"x" * 10, time=2.0)
        assert [event.label for event in events] == ["2"]

    def test_rendered_once_only(self):
        manifest = make_manifest([("1", 5, 1.0)])
        renderer = RenderingManager(manifest)
        renderer.on_bytes(b"y" * 5, time=1.0)
        assert renderer.on_bytes(b"y" * 5, time=2.0) == []
        assert renderer.rendered_count == 1

    def test_positions_follow_document_order(self):
        # Stream order is by content (2 before 1); positions are by label.
        manifest = make_manifest([("2", 4, 0.6), ("1", 4, 0.4)])
        renderer = RenderingManager(manifest)
        events = renderer.on_bytes(b"z" * 8, time=1.0)
        positions = {event.label: event.position for event in events}
        assert positions["1"] == 0
        assert positions["2"] == 1

    def test_text_slices_correct_bytes(self):
        manifest = make_manifest([("1", 5, 0.5), ("2", 5, 0.5)])
        renderer = RenderingManager(manifest)
        events = renderer.on_bytes(b"aaaaabbbbb", time=1.0)
        by_label = {event.label: event.text for event in events}
        assert by_label["1"] == "aaaaa"
        assert by_label["2"] == "bbbbb"

    def test_rendered_content_accumulates(self):
        manifest = make_manifest([("1", 5, 0.7), ("2", 5, 0.3)])
        renderer = RenderingManager(manifest)
        renderer.on_bytes(b"c" * 5, time=1.0)
        assert renderer.rendered_content() == pytest.approx(0.7)
        renderer.on_bytes(b"c" * 10, time=2.0)
        assert renderer.rendered_content() == pytest.approx(1.0)

    def test_empty_stream(self):
        manifest = make_manifest([("1", 5, 1.0)])
        renderer = RenderingManager(manifest)
        assert renderer.on_bytes(b"", time=0.0) == []
        assert renderer.rendered_count == 0
