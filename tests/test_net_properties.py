"""Seeded property sweep for the networked §4.2 protocol.

Random (M, N, alpha, loss, disconnect) grids run through a
:class:`ChaosProxy` on loopback.  The invariants:

* a fetch reports ``decoded`` only when reconstruction from >= M
  intact cooked packets succeeded — asserted by comparing the
  reconstructed payload byte-for-byte against the original;
* a fetch that does not decode exhausted an explicit budget
  (reconnects or rounds), never an undocumented state;
* a transfer resumed across a mid-stream disconnect is byte-identical
  to an uninterrupted one;
* no asyncio task outlives its test.
"""

import asyncio
import random

import pytest

from repro import obs
from repro.net import ChaosProxy, DocumentStore, NetClient, NetServer
from repro.obs.trace import (
    NET_CONN_CLOSE,
    NET_CONN_OPEN,
    NET_ROUND_SERVED,
    TRANSFER_COMPLETE,
    TRANSFER_START,
    load_jsonl,
)
from repro.transport.cache import PacketCache

from tests.netutil import assert_no_leaked_tasks, make_prepared

pytestmark = pytest.mark.net


def sweep_cases(count=8, master_seed=20000806):
    """Seeded random grid over geometry and fault rates."""
    rng = random.Random(master_seed)
    cases = []
    for index in range(count):
        cases.append(
            dict(
                seed=rng.randrange(1 << 30),
                # Kept so that m * gamma <= 255 (the GF(256) bound on N).
                size=rng.choice([512, 2048, 4096]),
                packet_size=rng.choice([64, 128, 256]),
                gamma=rng.choice([1.25, 1.5, 2.0]),
                drop=rng.choice([0.0, 0.05, 0.15]),
                corrupt=rng.choice([0.0, 0.1, 0.2, 0.35]),
                disconnect=rng.choice([0.0, 0.002, 0.01]),
            )
        )
    return cases


@pytest.mark.parametrize("case", sweep_cases(), ids=lambda c: f"seed{c['seed']}")
def test_chaos_sweep(case):
    async def go():
        prepared, payload = make_prepared(
            size=case["size"],
            packet_size=case["packet_size"],
            gamma=case["gamma"],
            seed=case["seed"],
        )
        store = DocumentStore()
        store.add(prepared)
        max_reconnects = 6
        async with NetServer(store) as server:
            # Uninterrupted baseline, straight to the server.
            baseline = await NetClient(
                server.host, server.port, cache=PacketCache()
            ).fetch("doc")
            assert baseline.status == "decoded"
            assert baseline.payload == payload

            async with ChaosProxy(
                server.host,
                server.port,
                rng=random.Random(case["seed"]),
                drop=case["drop"],
                corrupt=case["corrupt"],
                disconnect=case["disconnect"],
                max_disconnects=3,
            ) as proxy:
                client = NetClient(
                    proxy.host,
                    proxy.port,
                    cache=PacketCache(),
                    max_reconnects=max_reconnects,
                    reconnect_delay=0.01,
                )
                result = await client.fetch("doc")

        if result.status == "decoded":
            # Decode implies >= M intact packets were accumulated; the
            # reconstruction being byte-identical is the proof.
            assert result.payload == payload
            assert result.payload == baseline.payload
        else:
            # The only legal non-decode outcomes are exhausted budgets.
            assert result.status == "failed"
            assert (
                result.reconnects > max_reconnects
                or result.rounds >= client.max_rounds
            )
        await assert_no_leaked_tasks()

    asyncio.run(go())


@pytest.mark.parametrize("cut_fraction", [0.25, 0.5, 0.9])
def test_resumed_transfer_is_byte_identical(cut_fraction):
    """A mid-transfer disconnect resumes from cache, byte-identical."""

    async def go():
        prepared, payload = make_prepared(size=4096, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        # The cut must land before M intact frames arrive (the client
        # decodes and stops as soon as it holds M), so scale by M.
        cut_after = max(1, int(prepared.m * cut_fraction))
        async with NetServer(store) as server:
            uninterrupted = await NetClient(
                server.host, server.port, cache=PacketCache()
            ).fetch("doc")
            assert uninterrupted.status == "decoded"

            async with ChaosProxy(
                server.host, server.port, cut_after_frames=cut_after
            ) as proxy:
                client = NetClient(
                    proxy.host,
                    proxy.port,
                    cache=PacketCache(),
                    reconnect_delay=0.01,
                )
                resumed = await client.fetch("doc")

            assert resumed.status == "decoded"
            assert resumed.reconnects >= 1
            assert resumed.payload == uninterrupted.payload == payload
            # The resumed connection really skipped the cached packets.
            assert server.stats["resumed_frames_skipped"] > 0
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_trace_context_survives_reconnect(tmp_path):
    """One transfer ID correlates both peers across a cut-and-resume.

    The client mints the ID once; after the chaos proxy severs the
    first connection the redial's ``HELLO`` carries the *same* ID, so
    the exported JSONL shows a single correlated timeline: the client's
    ``transfer_start``/``transfer_complete`` and the server's
    ``net_conn_open``/``net_round_served``/``net_conn_close`` — one
    open per connection, the resumed one flagged.
    """

    async def go():
        prepared, payload = make_prepared(size=4096, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        async with NetServer(store) as server:
            async with ChaosProxy(
                server.host, server.port, cut_after_frames=max(1, prepared.m // 2)
            ) as proxy:
                client = NetClient(
                    proxy.host,
                    proxy.port,
                    cache=PacketCache(),
                    reconnect_delay=0.01,
                )
                result = await client.fetch("doc")
        assert result.status == "decoded"
        assert result.reconnects >= 1
        assert result.payload == payload
        await assert_no_leaked_tasks()

    obs.enable()
    try:
        asyncio.run(go())
        trace_path = tmp_path / "trace.jsonl"
        obs.OBS.trace.export_jsonl(str(trace_path))
    finally:
        obs.disable(reset=True)

    events = load_jsonl(str(trace_path))
    starts = [e for e in events if e["event"] == TRANSFER_START]
    assert len(starts) == 1
    transfer_id = starts[0]["transfer"]
    # Wire-minted ID, not the recorder's local tN numbering.
    assert not transfer_id.startswith("t")

    opens = [e for e in events if e["event"] == NET_CONN_OPEN]
    rounds = [e for e in events if e["event"] == NET_ROUND_SERVED]
    closes = [e for e in events if e["event"] == NET_CONN_CLOSE]
    completes = [e for e in events if e["event"] == TRANSFER_COMPLETE]
    assert len(opens) >= 2              # original dial + >= 1 redial
    assert len(closes) == len(opens)
    assert rounds and completes

    # Every event of the transfer — both peers — shares the one ID.
    for event in opens + rounds + closes + completes:
        assert event["transfer"] == transfer_id, event
    # Exactly the redials are flagged as resumed, and each connection
    # carries its own span (.c1, .c2, ...) under the shared ID.
    assert [e["resumed"] for e in opens].count(False) == 1
    assert [e["resumed"] for e in opens].count(True) == len(opens) - 1
    spans = {e["span"] for e in opens}
    assert len(spans) == len(opens)
    assert all(span.startswith(transfer_id + ".c") for span in spans)


def test_no_cache_restart_still_decodes():
    """NoCaching: a drop restarts from scratch yet converges."""

    async def go():
        prepared, payload = make_prepared(size=2048, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        async with NetServer(store) as server:
            async with ChaosProxy(
                server.host, server.port, cut_after_frames=prepared.m // 2
            ) as proxy:
                client = NetClient(
                    proxy.host, proxy.port, cache=None, reconnect_delay=0.01
                )
                result = await client.fetch("doc")
            assert result.status == "decoded"
            assert result.reconnects >= 1
            assert result.payload == payload
            # Nothing was carried, so the server never skipped frames.
            assert server.stats["resumed_frames_skipped"] == 0
        await assert_no_leaked_tasks()

    asyncio.run(go())
