"""Backend parity and selection for the GF(2^8) coding kernels.

Every registered backend must be byte-identical to the pure-Python
reference on the full coding surface: raw matmul, scalar primitives,
cooked packets from both codecs, and any-M-of-N reconstruction across
randomized geometry.  The suite also covers backend selection (env
var, explicit name, instance pass-through) and the bounded
decode-matrix cache.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.coding.backend import (
    BACKEND_ENV,
    BaselineBackend,
    CodingBackendError,
    FusedBackend,
    available_backends,
    default_backend_name,
    get_backend,
)
from repro.coding import backend as backend_module
from repro.coding.gf256 import gf_mul
from repro.coding.rs import (
    DECODE_CACHE_MAX,
    RabinDispersal,
    SystematicRSCodec,
    _DecodeMatrixCache,
)

BASELINE = get_backend("baseline")
OTHERS = [name for name in available_backends() if name != "baseline"]


def _packets(rng, m, size):
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(m)]


def _rows(rng, count, m):
    return [[rng.randrange(256) for _ in range(m)] for _ in range(count)]


# ---------------------------------------------------------------------------
# Raw kernel parity
# ---------------------------------------------------------------------------

class TestKernelParity:
    @pytest.mark.parametrize("name", OTHERS)
    @pytest.mark.parametrize(
        "rows,m,size",
        [
            (1, 1, 1),
            (2, 3, 5),
            (7, 3, 33),
            (8, 16, 256),   # below the fused nibble-path row threshold
            (24, 16, 256),  # above it
            (24, 16, 4096),
            (60, 40, 64),
        ],
    )
    def test_matmul_matches_baseline(self, name, rows, m, size):
        rng = random.Random(rows * 10007 + m * 101 + size)
        matrix = _rows(rng, rows, m)
        stack = _packets(rng, m, size)
        backend = get_backend(name)
        assert backend.matmul(matrix, stack, size) == BASELINE.matmul(
            matrix, stack, size
        )

    @pytest.mark.parametrize("name", OTHERS)
    def test_scalar_primitives_match_baseline(self, name):
        backend = get_backend(name)
        rng = random.Random(7)
        for size in (1, 17, 300):
            data = bytes(rng.randrange(256) for _ in range(size))
            acc = bytes(rng.randrange(256) for _ in range(size))
            for scalar in (0, 1, 2, 29, 128, 255):
                assert backend.scale(scalar, data) == BASELINE.scale(scalar, data)
                assert backend.mul_xor(acc, scalar, data) == BASELINE.mul_xor(
                    acc, scalar, data
                )

    def test_baseline_scale_is_gf_mul(self):
        data = bytes(range(256))
        for scalar in (0, 1, 93, 255):
            expected = bytes(gf_mul(scalar, value) for value in data)
            assert BASELINE.scale(scalar, data) == expected

    @given(
        rows=st.integers(min_value=1, max_value=12),
        m=st.integers(min_value=1, max_value=12),
        size=st.integers(min_value=1, max_value=128),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matmul_parity_randomized(self, rows, m, size, seed):
        rng = random.Random(seed)
        matrix = _rows(rng, rows, m)
        stack = _packets(rng, m, size)
        reference = BASELINE.matmul(matrix, stack, size)
        for name in OTHERS:
            assert get_backend(name).matmul(matrix, stack, size) == reference


# ---------------------------------------------------------------------------
# Block-kernel surface: memoryviews, matmul_into, native vs fallback
# ---------------------------------------------------------------------------

class TestBlockKernelSurface:
    @pytest.mark.parametrize("name", OTHERS)
    @pytest.mark.parametrize("rows,m,size", [(1, 1, 1), (5, 3, 17), (24, 16, 256)])
    def test_memoryview_packets_match_bytes(self, name, rows, m, size):
        rng = random.Random(rows * 31 + m * 7 + size)
        matrix = _rows(rng, rows, m)
        stack = _packets(rng, m, size)
        backend = get_backend(name)
        views = [memoryview(packet) for packet in stack]
        assert backend.matmul(matrix, views, size) == BASELINE.matmul(
            matrix, stack, size
        )

    @pytest.mark.parametrize("name", OTHERS)
    def test_scalar_primitives_accept_memoryviews(self, name):
        backend = get_backend(name)
        rng = random.Random(11)
        data = bytes(rng.randrange(256) for _ in range(41))
        acc = bytes(rng.randrange(256) for _ in range(41))
        for scalar in (0, 1, 2, 77, 255):
            assert bytes(backend.scale(scalar, memoryview(data))) == BASELINE.scale(
                scalar, data
            )
            assert bytes(
                backend.mul_xor(memoryview(acc), scalar, memoryview(data))
            ) == BASELINE.mul_xor(acc, scalar, data)

    @pytest.mark.parametrize("name", available_backends())
    @pytest.mark.parametrize("rows,m,size", [(1, 1, 1), (4, 3, 33), (24, 16, 4096)])
    def test_matmul_into_matches_matmul(self, name, rows, m, size):
        rng = random.Random(rows * 13 + m + size)
        matrix = _rows(rng, rows, m)
        stack = _packets(rng, m, size)
        backend = get_backend(name)
        arena = bytearray(rows * size)
        backend.matmul_into(matrix, stack, size, arena)
        assert bytes(arena) == b"".join(BASELINE.matmul(matrix, stack, size))

    @pytest.mark.parametrize("name", available_backends())
    def test_matmul_into_rejects_wrong_size_buffer(self, name):
        backend = get_backend(name)
        with pytest.raises(CodingBackendError, match="matmul_into buffer"):
            backend.matmul_into([[1, 2]], [b"ab", b"cd"], 2, bytearray(3))

    def test_native_and_fallback_engines_agree(self):
        numpy_backend = pytest.importorskip("numpy") and get_backend("numpy")
        fallback = backend_module.NumpyBackend(use_native=False)
        assert not fallback.native
        rng = random.Random(23)
        for rows, m, size in [(1, 1, 1), (3, 2, 7), (9, 5, 65), (24, 16, 1024)]:
            matrix = _rows(rng, rows, m)
            stack = _packets(rng, m, size)
            expected = BASELINE.matmul(matrix, stack, size)
            assert fallback.matmul(matrix, stack, size) == expected
            assert numpy_backend.matmul(matrix, stack, size) == expected

    def test_matmul_never_materializes_product_tensor(self):
        pytest.importorskip("numpy")
        import tracemalloc

        rows, m, size = 96, 24, 16384
        tensor_bytes = rows * m * size  # 37.7 MB in the old formulation
        rng = random.Random(99)
        matrix = _rows(rng, rows, m)
        stack = _packets(rng, m, size)
        for use_native in (True, False):
            backend = backend_module.NumpyBackend(use_native=use_native)
            backend.matmul(matrix, stack, size)  # warm arenas + native load
            tracemalloc.start()
            try:
                backend.matmul(matrix, stack, size)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
            assert peak < tensor_bytes // 2, (use_native, peak)


# ---------------------------------------------------------------------------
# Codec-level parity: cooked packets and reconstructions are identical
# ---------------------------------------------------------------------------

class TestCodecParity:
    @pytest.mark.parametrize("codec_cls", [RabinDispersal, SystematicRSCodec])
    @pytest.mark.parametrize(
        "m,n,size", [(1, 1, 1), (3, 7, 33), (16, 24, 256), (40, 60, 64)]
    )
    def test_encode_identical_across_backends(self, codec_cls, m, n, size):
        raw = _packets(random.Random(m * n + size), m, size)
        cooked = {
            name: codec_cls(m, n, backend=name).encode(raw)
            for name in available_backends()
        }
        reference = cooked["baseline"]
        for name, packets in cooked.items():
            assert packets == reference, name

    @pytest.mark.parametrize("codec_cls", [RabinDispersal, SystematicRSCodec])
    def test_any_m_of_n_across_backends(self, codec_cls):
        m, n, size = 4, 7, 29
        raw = _packets(random.Random(42), m, size)
        codecs = {
            name: codec_cls(m, n, backend=name) for name in available_backends()
        }
        cooked = codecs["baseline"].encode(raw)
        for subset in itertools.combinations(range(n), m):
            received = {i: cooked[i] for i in subset}
            for name, codec in codecs.items():
                assert codec.decode(received) == raw, (name, subset)

    def test_systematic_clear_prefix_on_every_backend(self):
        raw = _packets(random.Random(5), 6, 48)
        for name in available_backends():
            codec = SystematicRSCodec(6, 10, backend=name)
            cooked = codec.encode(raw)
            assert cooked[: codec.m] == raw, name

    @given(
        m=st.integers(min_value=1, max_value=10),
        extra=st.integers(min_value=0, max_value=8),
        size=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        systematic=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_randomized_roundtrip_parity(self, m, extra, size, seed, systematic):
        n = m + extra
        codec_cls = SystematicRSCodec if systematic else RabinDispersal
        rng = random.Random(seed)
        raw = _packets(rng, m, size)
        losses = rng.sample(range(n), extra)
        received_indices = [i for i in range(n) if i not in losses]
        reference = None
        for name in available_backends():
            codec = codec_cls(m, n, backend=name)
            cooked = codec.encode(raw)
            if reference is None:
                reference = cooked
            else:
                assert cooked == reference, name
            assert codec.decode({i: cooked[i] for i in received_indices}) == raw


# ---------------------------------------------------------------------------
# Golden-fixture geometries stay byte-identical under the default backend
# ---------------------------------------------------------------------------

class TestGoldenGeometryParity:
    def test_default_backend_cooks_golden_geometries_identically(self):
        """Cook every (m, n, packet_size) geometry the protocol goldens
        exercise and require byte parity with the baseline kernel.

        The full golden replay in
        test_integration_transport_vs_runner.py runs under the default
        backend automatically; this pins the coding layer itself to the
        same geometries so a kernel regression is caught here first,
        with a pointed failure.
        """
        import json
        import pathlib

        goldens = json.loads(
            (pathlib.Path(__file__).parent / "data" / "protocol_goldens.json")
            .read_text()
        )
        geometries = sorted(
            {
                (entry["m"], entry["n"], entry["doc_size"])
                for entry in goldens["transport"]
            }
        )
        assert geometries, "golden fixture file lost its transport entries"
        packet_size = goldens["packet_size"]
        default = get_backend()
        for m, n, doc_size in geometries:
            rng = random.Random(doc_size * 31 + m)
            document = bytes(rng.randrange(256) for _ in range(doc_size))
            for codec_cls in (SystematicRSCodec, RabinDispersal):
                reference = codec_cls(m, n, backend="baseline")
                candidate = codec_cls(m, n, backend=default)
                padded = document + bytes(m * packet_size - doc_size)
                chunks = [
                    padded[i * packet_size : (i + 1) * packet_size]
                    for i in range(m)
                ]
                cooked_ref = reference.encode(chunks)
                cooked_new = candidate.encode(chunks)
                assert cooked_new == cooked_ref, (codec_cls.__name__, m, n)
                received = {i: cooked_ref[i] for i in range(n - m, n)}
                assert candidate.decode(received) == reference.decode(received)


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------

class TestSelection:
    def test_known_names_registered(self):
        names = available_backends()
        assert "baseline" in names
        assert "fused" in names

    def test_unknown_name_raises(self):
        with pytest.raises(CodingBackendError, match="unknown coding backend"):
            get_backend("simd9000")

    def test_instance_passes_through(self):
        backend = FusedBackend()
        assert get_backend(backend) is backend

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "baseline")
        assert default_backend_name() == "baseline"
        assert isinstance(get_backend(), BaselineBackend)
        monkeypatch.setenv(BACKEND_ENV, "fused")
        assert isinstance(get_backend(), FusedBackend)

    def test_auto_and_unset_pick_best_available(self, monkeypatch):
        # Auto-selection prefers the numpy block kernel when numpy is
        # importable (its parity self-check must pass), else fused.
        expected = "numpy" if "numpy" in available_backends() else "fused"
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert default_backend_name() == expected
        monkeypatch.setenv(BACKEND_ENV, "auto")
        assert default_backend_name() == expected

    def test_explicit_fused_still_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "fused")
        assert default_backend_name() == "fused"
        assert isinstance(get_backend(), FusedBackend)

    def test_codec_accepts_name_and_instance(self):
        by_name = RabinDispersal(2, 4, backend="baseline")
        assert isinstance(by_name.backend, BaselineBackend)
        fused = FusedBackend()
        assert RabinDispersal(2, 4, backend=fused).backend is fused

    def test_default_resolution_logged_once(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(backend_module, "_SELECTION_LOGGED", False)
        obs.enable()
        try:
            first = get_backend()
            get_backend()  # second resolution must not double-log
            get_backend("baseline")  # explicit names are never logged
            snapshot = obs.OBS.metrics.snapshot()
            counters = snapshot["counters"]
            key = f"coding.backend_selected{{backend={first.name}}}"
            assert counters.get(key) == 1.0
            events = [
                event
                for event in obs.OBS.trace.events
                if event.event == "coding_backend_selected"
            ]
            assert len(events) == 1
            assert events[0].fields["backend"] == first.name
        finally:
            obs.disable(reset=True)


# ---------------------------------------------------------------------------
# Bounded decode-matrix cache
# ---------------------------------------------------------------------------

class TestDecodeCache:
    def test_lru_capacity_and_eviction_order(self):
        cache = _DecodeMatrixCache(capacity=3)
        for key in ((1,), (2,), (3,)):
            cache.put(key, object())
        cache.get((1,))  # refresh: (2,) is now the oldest
        cache.put((4,), object())
        assert len(cache) == 3
        assert (2,) not in cache
        assert (1,) in cache and (3,) in cache and (4,) in cache

    def test_codec_cache_stays_bounded_under_churn(self):
        m, n = 2, 24  # C(24, 2) - 1 = 275 distinct loss patterns > cap
        codec = SystematicRSCodec(m, n, backend="fused")
        raw = _packets(random.Random(3), m, 8)
        cooked = codec.encode(raw)
        distinct = 0
        for subset in itertools.combinations(range(n), m):
            if list(subset) == list(range(m)):
                continue  # clear-text path never touches the cache
            distinct += 1
            assert codec.decode({i: cooked[i] for i in subset}) == raw
        assert distinct > DECODE_CACHE_MAX
        assert len(codec._decode_cache) == DECODE_CACHE_MAX

    def test_cache_size_gauge_reported(self):
        obs.enable()
        try:
            codec = RabinDispersal(2, 5, backend="baseline")
            raw = _packets(random.Random(9), 2, 16)
            cooked = codec.encode(raw)
            codec.decode({0: cooked[0], 3: cooked[3]})
            codec.decode({1: cooked[1], 4: cooked[4]})
            snapshot = obs.OBS.metrics.snapshot()
            assert snapshot["gauges"]["rs.decode_cache_entries"] == 2.0
        finally:
            obs.disable(reset=True)
