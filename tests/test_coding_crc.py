"""Tests for the CRC implementations against reference values."""

import binascii
import zlib

import pytest
from hypothesis import given, strategies as st

from repro.coding.crc import crc16, crc32, verify_crc16, verify_crc32


class TestCrc32Reference:
    @given(st.binary(max_size=256))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_known_vector(self):
        # The classic check value for "123456789".
        assert crc32(b"123456789") == 0xCBF43926

    def test_incremental(self):
        data = b"hello world"
        partial = crc32(data[:5])
        assert crc32(data[5:], initial=partial) == crc32(data)

    def test_empty(self):
        assert crc32(b"") == 0


class TestCrc16Reference:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE check value for "123456789".
        assert crc16(b"123456789") == 0x29B1

    def test_empty_is_init(self):
        assert crc16(b"") == 0xFFFF

    @given(st.binary(max_size=128))
    def test_sixteen_bits(self, data):
        assert 0 <= crc16(data) <= 0xFFFF


class TestErrorDetection:
    @given(st.binary(min_size=1, max_size=128), st.integers(min_value=0, max_value=127))
    def test_single_byte_flip_detected(self, data, position):
        position %= len(data)
        corrupted = bytearray(data)
        corrupted[position] ^= 0x01
        assert crc16(bytes(corrupted)) != crc16(data)
        assert crc32(bytes(corrupted)) != crc32(data)

    def test_verify_helpers(self):
        data = b"packet payload"
        assert verify_crc16(data, crc16(data))
        assert not verify_crc16(data, crc16(data) ^ 1)
        assert verify_crc32(data, crc32(data))
        assert not verify_crc32(data, crc32(data) ^ 1)

    def test_burst_errors_detected(self):
        data = b"\x00" * 64
        for burst_length in (2, 8, 16):
            corrupted = bytearray(data)
            for i in range(burst_length):
                corrupted[20 + i] ^= 0xFF
            assert crc32(bytes(corrupted)) != crc32(data)
