"""Tests for the EWMA estimator and the adaptive redundancy controller."""

import pytest

from repro.analysis.ewma import AdaptiveRedundancyController, EwmaEstimator
from repro.analysis.planner import redundancy_ratio


class TestEwmaEstimator:
    def test_first_observation_initializes(self):
        estimator = EwmaEstimator(weight=0.2)
        assert estimator.estimate is None
        assert estimator.observe(0.4) == 0.4

    def test_recurrence(self):
        estimator = EwmaEstimator(weight=0.5, initial=0.0)
        assert estimator.observe(1.0) == pytest.approx(0.5)
        assert estimator.observe(1.0) == pytest.approx(0.75)

    def test_converges_to_constant_signal(self):
        estimator = EwmaEstimator(weight=0.3, initial=0.9)
        for _ in range(100):
            estimator.observe(0.2)
        assert estimator.estimate == pytest.approx(0.2, abs=1e-6)

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            EwmaEstimator(weight=1.5)
        with pytest.raises(ValueError):
            EwmaEstimator(weight=-0.1)

    def test_observation_validated(self):
        estimator = EwmaEstimator()
        with pytest.raises(ValueError):
            estimator.observe(1.2)

    def test_reset(self):
        estimator = EwmaEstimator(initial=0.5)
        estimator.reset()
        assert estimator.estimate is None


class TestController:
    def test_gamma_tracks_channel(self):
        controller = AdaptiveRedundancyController(initial_alpha=0.1, weight=0.5)
        quiet = controller.gamma()
        for _ in range(10):
            controller.record_transfer(corrupted=40, total=100)
        noisy = controller.gamma()
        assert noisy > quiet

    def test_gamma_matches_planner_at_converged_alpha(self):
        controller = AdaptiveRedundancyController(
            success=0.95, m_hint=50, weight=1.0, initial_alpha=0.1
        )
        controller.record_transfer(corrupted=30, total=100)
        assert controller.alpha_estimate == pytest.approx(0.3)
        assert controller.gamma() == pytest.approx(redundancy_ratio(50, 0.3, 0.95))

    def test_clamping(self):
        controller = AdaptiveRedundancyController(
            initial_alpha=0.0, floor=1.3, ceiling=1.6
        )
        assert controller.gamma() == 1.3  # planner would say 1.0
        for _ in range(20):
            controller.record_transfer(corrupted=90, total=100)
        assert controller.gamma() == 1.6

    def test_feedback_validation(self):
        controller = AdaptiveRedundancyController()
        with pytest.raises(ValueError):
            controller.record_transfer(corrupted=5, total=4)
        with pytest.raises(ValueError):
            controller.record_transfer(corrupted=-1, total=4)

    def test_configuration_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRedundancyController(floor=0.9)
        with pytest.raises(ValueError):
            AdaptiveRedundancyController(floor=2.0, ceiling=1.5)
