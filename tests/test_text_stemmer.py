"""Tests for the Porter stemmer against published reference pairs."""

import pytest
from hypothesis import given, strategies as st

from repro.text.stemmer import PorterStemmer, stem

# Classic examples from Porter's 1980 paper and the reference vocabulary.
REFERENCE_PAIRS = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]

DOMAIN_PAIRS = [
    ("browsing", "brows"),
    ("browsers", "browser"),
    ("transmission", "transmiss"),
    ("transmitted", "transmit"),
    ("caching", "cach"),
    ("cached", "cach"),
    ("documents", "document"),
    ("mobile", "mobil"),
    ("organizational", "organiz"),
]


class TestReferencePairs:
    @pytest.mark.parametrize("word,expected", REFERENCE_PAIRS)
    def test_porter_reference(self, word, expected):
        assert stem(word) == expected

    @pytest.mark.parametrize("word,expected", DOMAIN_PAIRS)
    def test_domain_vocabulary(self, word, expected):
        assert stem(word) == expected


class TestProperties:
    def test_short_words_unchanged(self):
        for word in ("a", "an", "to", "it"):
            assert stem(word) == word

    def test_case_folded(self):
        assert stem("Browsing") == stem("browsing")

    def test_idempotent_on_common_stems(self):
        # Stemming a stem should usually be stable for our vocabulary.
        for word in ("document", "mobil", "network", "packet"):
            assert stem(stem(word)) == stem(word)

    @given(st.text(alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz"), max_size=20))
    def test_never_crashes_and_never_grows(self, word):
        result = PorterStemmer().stem(word)
        assert isinstance(result, str)
        assert len(result) <= len(word) + 1  # step1b can append 'e'

    def test_variants_conflate(self):
        assert stem("connect") == stem("connected") == stem("connecting")
        assert stem("transmission") == stem("transmissions")
