"""Tests for repro.util.stats."""

import math
import random
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    confidence_interval,
    mean,
    population_variance,
    sample_stdev,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_population_variance(self):
        assert population_variance([2.0, 4.0]) == 1.0

    def test_sample_stdev_matches_statistics(self):
        data = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75]
        assert sample_stdev(data) == pytest.approx(statistics.stdev(data))

    def test_sample_stdev_single_point(self):
        assert sample_stdev([42.0]) == 0.0


class TestConfidenceInterval:
    def test_single_observation_degenerates(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_contains_mean(self):
        rng = random.Random(0)
        data = [rng.gauss(10, 2) for _ in range(20)]
        low, high = confidence_interval(data)
        assert low < mean(data) < high

    def test_small_sample_uses_t_table(self):
        # n=2, dof=1 -> t = 12.706; half width = t * s / sqrt(2).
        low, high = confidence_interval([0.0, 2.0])
        expected_half = 12.706 * statistics.stdev([0.0, 2.0]) / math.sqrt(2)
        assert high - 1.0 == pytest.approx(expected_half)

    def test_large_sample_uses_normal(self):
        data = list(range(100))
        low, high = confidence_interval([float(x) for x in data])
        s = statistics.stdev(data)
        assert high - mean(data) == pytest.approx(1.96 * s / 10.0)


class TestRunningStats:
    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_matches_batch_computation(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.count == len(values)
        assert rs.mean == pytest.approx(mean(values), rel=1e-9, abs=1e-6)
        assert rs.stdev == pytest.approx(sample_stdev(values), rel=1e-6, abs=1e-6)

    def test_empty_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean

    def test_single_value(self):
        rs = RunningStats()
        rs.add(3.0)
        assert rs.mean == 3.0
        assert rs.variance == 0.0

    def test_summary_immutable(self):
        rs = RunningStats()
        rs.extend([1.0, 2.0, 3.0])
        summary = rs.summary()
        assert summary.count == 3
        with pytest.raises(AttributeError):
            summary.mean = 0.0

    def test_relative_stdev(self):
        rs = RunningStats()
        rs.extend([9.0, 10.0, 11.0])
        summary = rs.summary()
        assert summary.relative_stdev() == pytest.approx(1.0 / 10.0)
