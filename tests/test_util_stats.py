"""Tests for repro.util.stats."""

import math
import random
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.util.stats import (
    RunningStats,
    confidence_interval,
    mean,
    percentile,
    population_variance,
    sample_stdev,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestBasics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_population_variance(self):
        assert population_variance([2.0, 4.0]) == 1.0

    def test_sample_stdev_matches_statistics(self):
        data = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75]
        assert sample_stdev(data) == pytest.approx(statistics.stdev(data))

    def test_sample_stdev_single_point(self):
        # Documented n=1 contract: mathematically undefined, returns
        # exactly 0.0 (never NaN, never an exception).
        assert sample_stdev([42.0]) == 0.0
        assert sample_stdev([-1e9]) == 0.0
        assert isinstance(sample_stdev([0.0]), float)

    def test_sample_stdev_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            sample_stdev([])


class TestPercentile:
    def test_median_of_odd_sample(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_interpolates_between_order_statistics(self):
        # Rank 0.5·(2−1) = 0.5 between 10 and 20.
        assert percentile([10.0, 20.0], 50) == 15.0

    def test_extremes_are_min_and_max(self):
        data = [5.0, -1.0, 3.0]
        assert percentile(data, 0) == -1.0
        assert percentile(data, 100) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_matches_statistics_quantiles(self):
        rng = random.Random(1)
        data = [rng.random() for _ in range(101)]
        # statistics.quantiles with method="inclusive" uses the same
        # linear interpolation over n−1 intervals.
        quartiles = statistics.quantiles(data, n=4, method="inclusive")
        assert percentile(data, 25) == pytest.approx(quartiles[0])
        assert percentile(data, 50) == pytest.approx(quartiles[1])
        assert percentile(data, 75) == pytest.approx(quartiles[2])

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_p_raises(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], -0.1)

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_bounded_by_min_and_max(self, values):
        for p in (0, 25, 50, 75, 100):
            result = percentile(values, p)
            assert min(values) <= result <= max(values)


class TestConfidenceInterval:
    def test_single_observation_degenerates(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_contains_mean(self):
        rng = random.Random(0)
        data = [rng.gauss(10, 2) for _ in range(20)]
        low, high = confidence_interval(data)
        assert low < mean(data) < high

    def test_small_sample_uses_t_table(self):
        # n=2, dof=1 -> t = 12.706; half width = t * s / sqrt(2).
        low, high = confidence_interval([0.0, 2.0])
        expected_half = 12.706 * statistics.stdev([0.0, 2.0]) / math.sqrt(2)
        assert high - 1.0 == pytest.approx(expected_half)

    def test_large_sample_uses_normal(self):
        data = list(range(100))
        low, high = confidence_interval([float(x) for x in data])
        s = statistics.stdev(data)
        assert high - mean(data) == pytest.approx(1.96 * s / 10.0)


class TestRunningStats:
    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_matches_batch_computation(self, values):
        rs = RunningStats()
        rs.extend(values)
        assert rs.count == len(values)
        assert rs.mean == pytest.approx(mean(values), rel=1e-9, abs=1e-6)
        assert rs.stdev == pytest.approx(sample_stdev(values), rel=1e-6, abs=1e-6)

    def test_empty_raises(self):
        rs = RunningStats()
        with pytest.raises(ValueError):
            _ = rs.mean

    def test_single_value(self):
        rs = RunningStats()
        rs.add(3.0)
        assert rs.mean == 3.0
        assert rs.variance == 0.0

    def test_summary_immutable(self):
        rs = RunningStats()
        rs.extend([1.0, 2.0, 3.0])
        summary = rs.summary()
        assert summary.count == 3
        with pytest.raises(AttributeError):
            summary.mean = 0.0

    def test_relative_stdev(self):
        rs = RunningStats()
        rs.extend([9.0, 10.0, 11.0])
        summary = rs.summary()
        assert summary.relative_stdev() == pytest.approx(1.0 / 10.0)
