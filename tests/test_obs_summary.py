"""Tests for the obs-summary trace analyzer."""

from repro.obs import trace as tr
from repro.obs.summary import (
    aggregate_timers,
    build_timelines,
    find_metrics_snapshot,
    find_prep_stats,
    format_summary,
)


def _synthetic_trace():
    """A hand-written two-transfer trace (one retransmission, one early stop)."""
    return [
        {"ts": 0.0, "event": tr.TRANSFER_START, "transfer": "t1",
         "document": "a.xml", "m": 2, "n": 3},
        {"ts": 0.1, "event": tr.ROUND_START, "transfer": "t1", "round": 1},
        {"ts": 0.2, "event": tr.FRAME_SENT, "transfer": "t1", "size": 260, "outcome": "ok"},
        {"ts": 0.3, "event": tr.FRAME_SENT, "transfer": "t1", "size": 260, "outcome": "corrupt"},
        {"ts": 0.3, "event": tr.FRAME_CORRUPT, "transfer": "t1", "sequence": 1},
        {"ts": 0.4, "event": tr.FRAME_SENT, "transfer": "t1", "size": 260, "outcome": "lost"},
        {"ts": 0.5, "event": tr.ROUND_STALLED, "transfer": "t1", "round": 1, "intact": 1},
        {"ts": 0.6, "event": tr.ROUND_START, "transfer": "t1", "round": 2},
        {"ts": 0.7, "event": tr.FRAME_SENT, "transfer": "t1", "size": 260, "outcome": "ok"},
        {"ts": 0.8, "event": tr.DECODE_COMPLETE, "transfer": "t1", "round": 2, "intact": 2},
        {"ts": 0.9, "event": tr.TRANSFER_COMPLETE, "transfer": "t1",
         "success": True, "rounds": 2, "frames": 4, "content": 1.0,
         "response_time": 1.5},
        {"ts": 1.0, "event": tr.TRANSFER_START, "transfer": "t2",
         "document": "b.xml", "m": 2, "n": 3},
        {"ts": 1.1, "event": tr.ROUND_START, "transfer": "t2", "round": 1},
        {"ts": 1.2, "event": tr.FRAME_SENT, "transfer": "t2", "size": 260, "outcome": "ok"},
        {"ts": 1.3, "event": tr.EARLY_STOP, "transfer": "t2", "content": 0.4},
        {"ts": 1.4, "event": tr.TRANSFER_COMPLETE, "transfer": "t2",
         "success": True, "rounds": 1, "frames": 1, "content": 0.4,
         "response_time": 0.3},
        {"ts": 1.5, "event": tr.TIMER, "name": "rs.decode", "seconds": 0.004},
        {"ts": 1.6, "event": tr.TIMER, "name": "rs.decode", "seconds": 0.006},
        {"ts": 1.7, "event": tr.METRICS_SNAPSHOT,
         "metrics": {"counters": {"transfer.started": 2.0}, "gauges": {},
                     "histograms": {"transfer.rounds": {
                         "count": 2, "sum": 3.0,
                         "buckets": [[1, 1], [2, 1], [None, 0]]}}},
         "prep": {"sc_hits": 1, "sc_misses": 2, "cooked_hits": 0,
                  "cooked_misses": 2, "evictions": 0}},
    ]


class TestTimelines:
    def test_grouping_and_counts(self):
        timelines = build_timelines(_synthetic_trace())
        assert [t.transfer for t in timelines] == ["t1", "t2"]
        first, second = timelines

        assert first.document == "a.xml"
        assert first.m == 2 and first.n == 3
        assert first.rounds == 2
        assert first.frames == 4
        assert first.frames_corrupt == 1
        assert first.frames_lost == 1
        assert first.crc_failures == 1
        assert first.decode_complete
        assert not first.early_stop
        assert first.rounds_list[0].outcome == "stalled"
        assert first.rounds_list[0].intact == 1
        assert first.rounds_list[1].outcome == "decode_complete"

        assert second.early_stop
        assert second.rounds == 1
        assert second.frames == 1

    def test_event_counts_consistent_with_reported(self):
        for timeline in build_timelines(_synthetic_trace()):
            assert len(timeline.rounds_list) == timeline.reported_rounds
            assert timeline.frames_sent == timeline.reported_frames

    def test_unfinished_transfer_counts_from_events(self):
        events = _synthetic_trace()[:6]  # no stall / complete records
        (timeline,) = build_timelines(events)
        assert timeline.success is None
        assert timeline.rounds == 1  # from the round_start event
        assert timeline.frames == 3  # from frame_sent events


class TestAggregates:
    def test_timer_aggregation(self):
        timers = aggregate_timers(_synthetic_trace())
        assert timers == {"rs.decode": [0.004, 0.006]}

    def test_metrics_snapshot_found(self):
        snapshot = find_metrics_snapshot(_synthetic_trace())
        assert snapshot["counters"]["transfer.started"] == 2.0

    def test_no_snapshot_returns_none(self):
        assert find_metrics_snapshot([{"event": "x", "ts": 0}]) is None

    def test_prep_stats_found(self):
        stats = find_prep_stats(_synthetic_trace())
        assert stats["sc_misses"] == 2
        assert stats["cooked_misses"] == 2

    def test_no_prep_stats_returns_none(self):
        assert find_prep_stats([{"event": "x", "ts": 0}]) is None
        # A snapshot without the prep key is fine too.
        events = [{"event": tr.METRICS_SNAPSHOT, "ts": 0, "metrics": {}}]
        assert find_prep_stats(events) is None


class TestFormatting:
    def test_full_report_sections(self):
        report = format_summary(_synthetic_trace())
        assert "== transfers ==" in report
        assert "transfer t1" in report
        assert "rounds=2 frames=4" in report
        assert "rounds=1 frames=1" in report
        assert "early-stop" in report
        assert "== aggregates ==" in report
        assert "transfers: 2" in report
        assert "== timers ==" in report
        assert "rs.decode" in report
        assert "== metrics ==" in report
        assert "transfer.rounds" in report
        assert "== prep ==" in report
        assert "sc_misses = 2" in report

    def test_empty_trace(self):
        report = format_summary([])
        assert "no transfer events" in report
