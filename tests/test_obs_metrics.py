"""Tests for the metrics registry (counters, gauges, histograms, labels)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_idempotent_creation(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("x")

    def test_labels_create_distinct_children(self):
        counter = Counter("frames_sent")
        counter.labels(outcome="ok").inc(3)
        counter.labels(outcome="corrupt").inc()
        assert counter.labels(outcome="ok").value == 3
        assert counter.labels(outcome="corrupt").value == 1
        assert counter.value == 0  # family row untouched
        assert counter.total == 4

    def test_labels_are_order_insensitive(self):
        counter = Counter("c")
        a = counter.labels(x="1", y="2")
        b = counter.labels(y="2", x="1")
        assert a is b

    def test_empty_labels_returns_self(self):
        counter = Counter("c")
        assert counter.labels() is counter


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("bytes")
        gauge.set(100)
        gauge.inc(10)
        gauge.dec(30)
        assert gauge.value == 80


class TestHistogram:
    def test_observation_lands_in_correct_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 5.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(1.0)  # inclusive upper bound
        histogram.observe(7.0)
        histogram.observe(99.0)  # overflow
        counts = dict(
            (bound, count) for bound, count in histogram.bucket_counts()
        )
        assert counts[1.0] == 2
        assert counts[5.0] == 0
        assert counts[10.0] == 1
        assert counts[None] == 1
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(107.5)
        assert histogram.mean == pytest.approx(107.5 / 4)

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_duplicate_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_registry_returns_same_histogram(self):
        registry = MetricsRegistry()
        a = registry.histogram("lat", buckets=DEFAULT_LATENCY_BUCKETS)
        b = registry.histogram("lat")
        assert a is b


class TestRegistry:
    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("b").observe(1)
        assert len(registry) == 2
        registry.reset()
        assert len(registry) == 0
        assert "a" not in registry

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("frames").labels(outcome="corrupt").inc(2)
        registry.gauge("used").set(7)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"frames{outcome=corrupt}": 2.0}
        assert snapshot["gauges"] == {"used": 7.0}
        hist = snapshot["histograms"]["lat"]
        assert hist["count"] == 1
        assert hist["sum"] == 0.5
        assert hist["buckets"] == [[1.0, 1], [None, 0]]

    def test_snapshot_skips_untouched_family_rows(self):
        registry = MetricsRegistry()
        counter = registry.counter("frames")
        counter.labels(outcome="ok").inc()
        assert "frames" not in registry.snapshot()["counters"]
        # ...but keeps a family row that was itself incremented.
        counter.inc()
        assert "frames" in registry.snapshot()["counters"]

    def test_render_table_mentions_children(self):
        registry = MetricsRegistry()
        registry.counter("frames").labels(outcome="ok").inc(3)
        table = registry.render_table()
        assert "frames{outcome=ok}  3" in table
