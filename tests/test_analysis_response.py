"""Tests for the analytic response-time models, validated against the
simulator."""

import random

import pytest

from repro.analysis.response import (
    caching_expected_time,
    expected_response_time,
    nocaching_expected_time,
)
from repro.simulation.runner import simulate_transfer

PACKET_TIME = 260 * 8 / 19200


def simulated_mean(m, n, alpha, caching, runs=600, max_rounds=50, seed=0):
    rng = random.Random(seed)
    total = 0.0
    for _ in range(runs):
        outcome = simulate_transfer(
            m=m, n=n, alpha=alpha, packet_time=PACKET_TIME,
            rng=rng, caching=caching, max_rounds=max_rounds,
        )
        total += outcome.response_time
    return total / runs


class TestDegenerateCases:
    def test_alpha_zero(self):
        assert nocaching_expected_time(40, 60, 0.0, 1.0) == 40.0
        assert caching_expected_time(40, 60, 0.0, 1.0) == 40.0

    def test_n_equals_m_alpha_zero(self):
        assert nocaching_expected_time(10, 10, 0.0, 2.0) == 20.0

    def test_impossible_configuration_infinite(self):
        # alpha=0.9 with n=m: q is astronomically small.
        value = nocaching_expected_time(20, 20, 0.9, 1.0, max_rounds=5)
        assert value == pytest.approx(5 * 20 * 1.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            nocaching_expected_time(10, 5, 0.1, 1.0)
        with pytest.raises(ValueError):
            caching_expected_time(10, 5, 0.1, 1.0)


class TestAgainstSimulator:
    @pytest.mark.parametrize(
        "m,n,alpha",
        [
            (40, 60, 0.1),
            (40, 60, 0.2),
            (40, 60, 0.3),
            (20, 40, 0.4),
        ],
    )
    def test_nocaching_matches(self, m, n, alpha):
        analytic = nocaching_expected_time(
            m, n, alpha, PACKET_TIME, max_rounds=50
        )
        simulated = simulated_mean(m, n, alpha, caching=False, seed=hash((m, n, alpha)) % 10_000)
        assert analytic == pytest.approx(simulated, rel=0.06)

    @pytest.mark.parametrize(
        "m,n,alpha",
        [
            (40, 60, 0.1),
            (40, 60, 0.3),
            (40, 60, 0.5),
            (20, 24, 0.4),
        ],
    )
    def test_caching_matches(self, m, n, alpha):
        analytic = caching_expected_time(m, n, alpha, PACKET_TIME)
        simulated = simulated_mean(m, n, alpha, caching=True, seed=hash((m, n, alpha, 1)) % 10_000)
        assert analytic == pytest.approx(simulated, rel=0.08)


class TestShapes:
    def test_caching_never_worse_than_nocaching(self):
        for alpha in (0.1, 0.3, 0.5):
            caching = caching_expected_time(40, 60, alpha, 1.0)
            nocaching = nocaching_expected_time(40, 60, alpha, 1.0, max_rounds=200)
            assert caching <= nocaching + 1e-9

    def test_monotone_in_alpha(self):
        values = [caching_expected_time(40, 60, a, 1.0) for a in (0.1, 0.2, 0.3, 0.4, 0.5)]
        assert values == sorted(values)

    def test_more_redundancy_helps_nocaching(self):
        tight = nocaching_expected_time(40, 48, 0.3, 1.0, max_rounds=100)
        loose = nocaching_expected_time(40, 80, 0.3, 1.0, max_rounds=100)
        assert loose < tight

    def test_dispatch(self):
        assert expected_response_time(40, 60, 0.1, 1.0, caching=True) == (
            caching_expected_time(40, 60, 0.1, 1.0)
        )
        assert expected_response_time(
            40, 60, 0.1, 1.0, caching=False, max_rounds=10
        ) == nocaching_expected_time(40, 60, 0.1, 1.0, max_rounds=10)

    def test_figure4_knee_reproduced_analytically(self):
        """The γ sweep's knee at α = 0.3 appears in the closed form."""
        times = {
            gamma: nocaching_expected_time(
                40, int(40 * gamma), 0.3, PACKET_TIME, max_rounds=50
            )
            for gamma in (1.1, 1.5, 2.0)
        }
        assert times[1.5] < times[1.1]
        assert abs(times[2.0] - times[1.5]) < times[1.1] - times[1.5]
