"""Tests for the minimal-N planner (Figures 2–3)."""

import pytest

from repro.analysis.negbinom import cdf
from repro.analysis.planner import (
    gamma_band,
    gamma_versus_alpha,
    minimal_cooked_packets,
    redundancy_ratio,
    stall_probability,
    sweep,
)


class TestMinimalN:
    def test_is_minimal(self):
        """N satisfies the target and N−1 does not."""
        for m, alpha, s in [(40, 0.1, 0.95), (50, 0.3, 0.99), (10, 0.5, 0.95)]:
            n = minimal_cooked_packets(m, alpha, s)
            assert cdf(n, m, alpha) >= s
            assert cdf(n - 1, m, alpha) < s

    def test_alpha_zero_needs_no_redundancy(self):
        assert minimal_cooked_packets(40, 0.0, 0.99) == 40

    def test_alpha_one_rejected(self):
        with pytest.raises(ValueError):
            minimal_cooked_packets(40, 1.0, 0.95)

    def test_monotone_in_alpha(self):
        values = [minimal_cooked_packets(40, a, 0.95) for a in (0.1, 0.2, 0.3, 0.4, 0.5)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_monotone_in_success(self):
        assert minimal_cooked_packets(40, 0.3, 0.99) >= minimal_cooked_packets(
            40, 0.3, 0.95
        )

    def test_monotone_in_m(self):
        values = [minimal_cooked_packets(m, 0.3, 0.95) for m in (10, 20, 50, 100)]
        assert values == sorted(values)


class TestFigure2Shape:
    def test_near_linear_in_m(self):
        """The paper observes N ≈ linear in M (Figure 2)."""
        ms = list(range(10, 101, 10))
        for alpha in (0.1, 0.3, 0.5):
            ns = [minimal_cooked_packets(m, alpha, 0.95) for m in ms]
            # Compare each N to the straight line through the endpoints.
            slope = (ns[-1] - ns[0]) / (ms[-1] - ms[0])
            for m, n in zip(ms, ns):
                predicted = ns[0] + slope * (m - ms[0])
                assert abs(n - predicted) / n < 0.10

    def test_sweep_covers_grid(self):
        points = sweep([10, 50], [0.1, 0.5], 0.95)
        assert len(points) == 4
        assert {(p.m, p.alpha) for p in points} == {
            (10, 0.1),
            (50, 0.1),
            (10, 0.5),
            (50, 0.5),
        }
        for point in points:
            assert point.n >= point.m
            assert point.gamma == point.n / point.m


class TestFigure3Shape:
    def test_gamma_grows_with_alpha(self):
        gammas = gamma_versus_alpha([0.1, 0.2, 0.3, 0.4, 0.5], 0.95, m=50)
        ordered = [gammas[a] for a in (0.1, 0.2, 0.3, 0.4, 0.5)]
        assert ordered == sorted(ordered)

    def test_99_above_95(self):
        g95 = gamma_versus_alpha([0.1, 0.3, 0.5], 0.95, m=50)
        g99 = gamma_versus_alpha([0.1, 0.3, 0.5], 0.99, m=50)
        for alpha in (0.1, 0.3, 0.5):
            assert g99[alpha] >= g95[alpha]

    def test_paper_magnitude(self):
        """γ ≈ 1.2 at α=0.1 and ≈ 2.3–2.6 at α=0.5 (Figure 3's range)."""
        gammas = gamma_versus_alpha([0.1, 0.5], 0.95, m=50)
        assert 1.1 <= gammas[0.1] <= 1.35
        assert 2.0 <= gammas[0.5] <= 2.8

    def test_band_weak_m_dependence(self):
        """The paper: "the range of γ for different values of M does not
        change too much"."""
        band = gamma_band([0.1, 0.3, 0.5], 0.95, ms=(10, 50, 100))
        for alpha, (low, high) in band.items():
            assert high - low < 0.75
            assert low <= gamma_versus_alpha([alpha], 0.95, m=50)[alpha] <= high


class TestStallProbability:
    def test_bounds(self):
        assert stall_probability(40, 39, 0.1) == 1.0
        assert 0.0 <= stall_probability(40, 60, 0.1) <= 1.0

    def test_decreases_with_n(self):
        values = [stall_probability(40, n, 0.3) for n in (40, 50, 60, 70, 80)]
        assert values == sorted(values, reverse=True)

    def test_matches_planner(self):
        n = minimal_cooked_packets(40, 0.3, 0.95)
        assert stall_probability(40, n, 0.3) <= 0.05
        assert stall_probability(40, n - 1, 0.3) > 0.05
