"""Tests for the tolerant HTML parser."""

from repro.htmlkit.parser import parse_html
from repro.xmlkit.dom import Text


class TestWellFormedHtml:
    def test_basic(self):
        doc = parse_html("<html><body><p>hi</p></body></html>")
        assert doc.root.tag == "html"
        assert doc.root.find("p").text_content() == "hi"

    def test_attributes_quoted_and_unquoted(self):
        doc = parse_html('<a href="x" target=_blank rel=\'nofollow\'>go</a>')
        a = doc.root.find("a")
        assert a.attributes == {"href": "x", "target": "_blank", "rel": "nofollow"}

    def test_boolean_attribute(self):
        doc = parse_html("<input disabled>")
        assert doc.root.find("input").get("disabled") == "disabled"


class TestTagSoup:
    def test_unclosed_p_auto_closes(self):
        doc = parse_html("<body><p>one<p>two</body>")
        paragraphs = doc.root.find_all("p")
        assert [p.text_content() for p in paragraphs] == ["one", "two"]
        # They are siblings, not nested.
        assert paragraphs[0].find("p") is None

    def test_unclosed_li(self):
        doc = parse_html("<ul><li>a<li>b<li>c</ul>")
        assert len(doc.root.find_all("li")) == 3

    def test_heading_closes_open_p(self):
        doc = parse_html("<p>text<h1>Head</h1>")
        p = doc.root.find("p")
        assert p.find("h1") is None

    def test_stray_end_tag_ignored(self):
        doc = parse_html("<p>ok</div></p>")
        assert doc.root.find("p").text_content() == "ok"

    def test_void_elements_take_no_children(self):
        doc = parse_html("<p>a<br>b</p>")
        p = doc.root.find("p")
        br = p.find("br")
        assert br is not None and not br.children
        assert p.text_content() == "ab"

    def test_outer_end_tag_closes_inner(self):
        doc = parse_html("<div><span>x</div>after")
        div = doc.root.find("div")
        assert div.text_content() == "x"

    def test_never_raises_on_garbage(self):
        for garbage in ("<<<>>>", "<a", "a < b > c", "</>", "<!bad", ""):
            parse_html(garbage)  # must not raise

    def test_bare_less_than_is_text(self):
        doc = parse_html("<p>1 < 2</p>")
        assert "<" in doc.root.find("p").text_content()


class TestSpecialContent:
    def test_comment_preserved(self):
        doc = parse_html("<p><!-- hidden -->shown</p>")
        assert doc.root.find("p").text_content() == "shown"

    def test_script_content_is_raw_text(self):
        doc = parse_html("<script>if (a < b) { x(); }</script><p>hi</p>")
        script = doc.root.find("script")
        assert "a < b" in script.text_content()
        assert doc.root.find("p").text_content() == "hi"

    def test_entities_lenient(self):
        doc = parse_html("<p>a&amp;b &bogus; &#65;</p>")
        text = doc.root.find("p").text_content()
        assert "a&b" in text
        assert "&bogus;" in text
        assert "A" in text

    def test_doctype_skipped(self):
        doc = parse_html("<!DOCTYPE html><p>x</p>")
        assert doc.root.find("p") is not None

    def test_html_root_detected(self):
        doc = parse_html("<html lang='en'><body/></html>")
        assert doc.root.get("lang") == "en"
