"""Tests for query-biased snippet generation."""

import pytest

from repro.core.information import annotate_sc
from repro.core.pipeline import build_sc
from repro.core.query import Query
from repro.search.snippets import best_paragraph, make_snippet
from repro.xmlkit.parser import parse_xml

LONG_TAIL = (
    "Filler prose continues for quite a while to make this paragraph "
    "considerably longer than any reasonable snippet window so that "
    "trimming and ellipsis placement are properly exercised end to end."
)

XML = f"""<paper>
  <title>T</title>
  <section>
    <title>Alpha</title>
    <paragraph>Opening paragraph about architecture and design. {LONG_TAIL}</paragraph>
  </section>
  <section>
    <title>Beta</title>
    <paragraph>{LONG_TAIL} The caching subsystem stores intact packets
    across stalled downloads for later reconstruction. {LONG_TAIL}</paragraph>
  </section>
</paper>"""


def annotated(query=None):
    sc = build_sc(parse_xml(XML))
    annotate_sc(sc, query=query)
    return sc


class TestBestParagraph:
    def test_without_query_uses_ic(self):
        sc = annotated()
        text = best_paragraph(sc, measure="ic")
        assert text is not None

    def test_query_selects_matching_paragraph(self):
        query = Query("caching packets")
        sc = annotated(query)
        text = best_paragraph(sc, measure="qic")
        assert "caching subsystem" in text

    def test_empty_document(self):
        sc = build_sc(parse_xml("<paper><title>T</title></paper>"))
        assert best_paragraph(sc) is None


class TestMakeSnippet:
    def test_width_respected(self):
        sc = annotated()
        snippet = make_snippet(sc, width=80)
        assert len(snippet) <= 80 + 6  # ellipses allowance

    def test_short_text_unmodified(self):
        sc = build_sc(parse_xml(
            "<paper><title>T</title><section><title>S</title>"
            "<paragraph>Tiny body.</paragraph></section></paper>"
        ))
        annotate_sc(sc)
        assert make_snippet(sc, width=200) == "Tiny body."

    def test_query_word_in_window(self):
        query = Query("caching")
        sc = annotated(query)
        snippet = make_snippet(sc, query=query, width=100)
        assert "caching" in snippet.lower()

    def test_ellipses_mark_trims(self):
        query = Query("caching")
        sc = annotated(query)
        snippet = make_snippet(sc, query=query, width=80)
        assert snippet.startswith("...") or snippet.endswith("...")

    def test_no_paragraphs(self):
        sc = build_sc(parse_xml("<paper><title>T</title></paper>"))
        assert make_snippet(sc) == ""

    def test_width_validation(self):
        sc = annotated()
        with pytest.raises(ValueError):
            make_snippet(sc, width=0)
