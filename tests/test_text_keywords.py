"""Tests for repro.text.keywords."""

from repro.text.keywords import KeywordExtractor
from repro.text.lemmatizer import Lemmatizer


class TestCandidateLemmas:
    def test_stopwords_removed(self):
        extractor = KeywordExtractor()
        lemmas = extractor.candidate_lemmas("the mobile web is weakly connected")
        assert "the" not in lemmas
        assert "is" not in lemmas

    def test_variants_conflate(self):
        extractor = KeywordExtractor()
        lemmas = extractor.candidate_lemmas("browsing browsers browse")
        assert lemmas[0] == lemmas[2]

    def test_short_tokens_dropped(self):
        extractor = KeywordExtractor(min_length=3)
        lemmas = extractor.candidate_lemmas("go to xy web")
        assert "xy" not in lemmas


class TestExtract:
    def test_counts(self):
        extractor = KeywordExtractor()
        counts = extractor.extract("web web web mobile")
        assert counts[extractor.lemmatizer.lemma("web")] == 3
        assert counts[extractor.lemmatizer.lemma("mobile")] == 1

    def test_min_count_filters(self):
        extractor = KeywordExtractor(min_count=2)
        counts = extractor.extract("web web mobile")
        lemma_mobile = extractor.lemmatizer.lemma("mobile")
        assert lemma_mobile not in counts

    def test_emphasized_overrides_min_count(self):
        """Specially formatted words qualify as keywords regardless of
        frequency (paper §3.3)."""
        extractor = KeywordExtractor(min_count=2)
        counts = extractor.extract("web web mobile", emphasized=["mobile"])
        assert counts[extractor.lemmatizer.lemma("mobile")] == 1

    def test_extra_stopwords(self):
        extractor = KeywordExtractor()
        counts = extractor.extract("section figure web", extra_stopwords=["section", "figure"])
        assert len(counts) == 1


class TestTopKeywords:
    def test_ordering(self):
        extractor = KeywordExtractor()
        top = extractor.top_keywords("web web web packet packet mobile")
        lemma = extractor.lemmatizer.lemma
        assert top[0] == lemma("web")
        assert top[1] == lemma("packet")

    def test_tie_broken_alphabetically(self):
        extractor = KeywordExtractor()
        top = extractor.top_keywords("zebra apple")
        assert top == sorted(top)

    def test_limit(self):
        extractor = KeywordExtractor()
        text = " ".join(f"word{i}" for i in range(20))
        assert len(extractor.top_keywords(text, limit=5)) == 5

    def test_shared_lemmatizer(self):
        shared = Lemmatizer()
        extractor = KeywordExtractor(lemmatizer=shared)
        assert extractor.lemmatizer is shared
