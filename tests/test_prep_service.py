"""Cache semantics of the on-demand PreparationService.

Tier-1: single-flight dedup (threads *and* asyncio), byte-budget LRU
eviction, digest invalidation, byte-identical hit-vs-miss output, and
the per-request parameters all landing in the cooked-tier key.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.pipeline import SCPipeline
from repro.prep import PrepRequest, PreparationService, prepare
from repro.prep.cache import MISS, ByteBudgetLRU
from repro.prep.service import UnknownDocumentError, content_digest

PAPER = """<paper>
  <title>Service Cache Paper</title>
  <abstract><paragraph>Weakly connected browsing of mobile web documents.</paragraph></abstract>
  <section>
    <title>Coding</title>
    <paragraph>Redundancy coding protects wireless packets so the mobile
    client reconstructs the document despite corruption on the channel.</paragraph>
  </section>
  <section>
    <title>Caching</title>
    <paragraph>Caching intact packets across stalls makes repeated
    transmissions cheaper for weakly connected clients.</paragraph>
  </section>
</paper>"""

OTHER = PAPER.replace("Service Cache Paper", "A Different Paper")


class CountingPipeline(SCPipeline):
    """SCPipeline that counts how many times the five modules run."""

    def __init__(self):
        super().__init__()
        self.runs = 0
        self._count_lock = threading.Lock()

    def run(self, document):
        with self._count_lock:
            self.runs += 1
        return super().run(document)


def make_service(**kwargs):
    pipeline = CountingPipeline()
    service = PreparationService(pipeline=pipeline, **kwargs)
    return service, pipeline


class TestByteBudgetLRU:
    def test_put_get_and_eviction_order(self):
        cache = ByteBudgetLRU(budget_bytes=100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        assert cache.get("a") == 1          # refresh a
        evicted = cache.put("c", 3, 40)     # over budget: b is LRU
        assert evicted == ["b"]
        assert cache.get("b") is MISS
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_oversized_entry_never_sticks(self):
        cache = ByteBudgetLRU(budget_bytes=10)
        evicted = cache.put("huge", "x", 1000)
        assert "huge" in evicted
        assert cache.get("huge") is MISS
        assert cache.bytes == 0

    def test_discard_where(self):
        cache = ByteBudgetLRU(budget_bytes=100)
        cache.put(("d1", "k1"), 1, 10)
        cache.put(("d1", "k2"), 2, 10)
        cache.put(("d2", "k1"), 3, 10)
        dropped = cache.discard_where(lambda key: key[0] == "d1")
        assert dropped == 2
        assert cache.get(("d2", "k1")) == 3


class TestCacheTiers:
    def test_cooked_hit_is_byte_identical_to_miss(self):
        service, pipeline = make_service()
        service.add_document("doc", PAPER)
        request = PrepRequest(query="mobile web")
        cold = service.prepare("doc", request)
        warm = service.prepare("doc", request)
        assert warm is cold
        assert service.stats["cooked_misses"] == 1
        assert service.stats["cooked_hits"] == 1
        # After eviction the rebuild is byte-identical.
        service._cooked_tier.clear()
        rebuilt = service.prepare("doc", request)
        assert rebuilt is not cold
        assert rebuilt.frames() == cold.frames()
        assert rebuilt.content_profile == cold.content_profile

    def test_sc_tier_shared_across_requests(self):
        service, pipeline = make_service()
        service.add_document("doc", PAPER)
        service.prepare("doc", PrepRequest(query="mobile"))
        service.prepare("doc", PrepRequest(query="caching packets"))
        service.prepare("doc", PrepRequest(lod="section"))
        assert pipeline.runs == 1
        assert service.stats["sc_misses"] == 1
        assert service.stats["cooked_misses"] == 3

    @pytest.mark.parametrize("change", [
        {"lod": "section"},
        {"query": "different words"},
        {"gamma": 2.0},
        {"packet_size": 128},
        {"measure": "proportional"},
    ])
    def test_each_parameter_lands_in_the_key(self, change):
        service, _ = make_service()
        service.add_document("doc", PAPER)
        base = PrepRequest(query="mobile web")
        service.prepare("doc", base)
        service.prepare("doc", base.replace(**change))
        assert service.stats["cooked_misses"] == 2

    def test_cooked_lru_eviction_and_rebuild(self):
        service, _ = make_service(cooked_budget_bytes=1)
        service.add_document("doc", PAPER)
        request = PrepRequest()
        first = service.prepare("doc", request)
        second = service.prepare("doc", request)
        assert second is not first
        assert second.frames() == first.frames()
        assert service.stats["evictions"] >= 2
        assert service.stats["cooked_hits"] == 0

    def test_unknown_document_raises(self):
        service, _ = make_service()
        with pytest.raises(UnknownDocumentError):
            service.prepare("nope")
        assert service.get("nope") is None


class TestInvalidation:
    def test_add_document_with_new_content_invalidates(self):
        service, pipeline = make_service()
        service.add_document("doc", PAPER)
        first = service.prepare("doc")
        service.add_document("doc", OTHER)
        second = service.prepare("doc")
        assert second is not first
        assert pipeline.runs == 2
        assert second.frames() != first.frames()  # new content, new bytes

    def test_same_content_is_idempotent(self):
        service, pipeline = make_service()
        service.add_document("doc", PAPER)
        first = service.prepare("doc")
        service.add_document("doc", PAPER)  # unchanged digest
        assert service.prepare("doc") is first
        assert pipeline.runs == 1

    def test_path_invalidation_on_file_change(self, tmp_path):
        target = tmp_path / "paper.xml"
        target.write_text(PAPER, encoding="utf-8")
        service, pipeline = make_service()
        document_id = service.add_path(target)
        assert document_id == "paper"
        old_digest = service.digest(document_id)
        service.prepare(document_id)
        target.write_text(OTHER, encoding="utf-8")
        dropped = service.invalidate(document_id)
        assert dropped >= 1  # both tiers held entries for the old digest
        assert service.digest(document_id) != old_digest
        service.prepare(document_id)
        assert pipeline.runs == 2

    def test_remove(self):
        service, _ = make_service()
        service.add_document("doc", PAPER)
        service.prepare("doc")
        service.remove("doc")
        assert "doc" not in service
        with pytest.raises(UnknownDocumentError):
            service.prepare("doc")


class TestSingleFlight:
    def test_threads_share_one_build(self):
        service, pipeline = make_service()
        service.add_document("doc", PAPER)
        barrier = threading.Barrier(16)

        def fetch():
            barrier.wait()
            return service.prepare("doc", PrepRequest(query="mobile"))

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(lambda _: fetch(), range(16)))

        assert pipeline.runs == 1
        assert service.stats["cooked_misses"] == 1
        assert all(result is results[0] for result in results)
        # Every follower is a cooked hit; a hit that had to block on
        # the leader's in-progress build is *additionally* counted as
        # an in-flight wait (how many wait is scheduling-dependent —
        # the coding kernel releases the GIL, so followers may run
        # mid-build).
        assert service.stats["cooked_hits"] == 15
        assert 0 <= service.stats["inflight_waits"] <= 15

    def test_asyncio_gather_shares_one_build(self):
        service, pipeline = make_service()
        service.add_document("doc", PAPER)

        async def go():
            return await asyncio.gather(
                *(service.prepare_async("doc") for _ in range(12))
            )

        results = asyncio.run(go())
        assert pipeline.runs == 1
        assert service.stats["cooked_misses"] == 1
        assert all(result is results[0] for result in results)

    def test_failed_build_does_not_poison(self):
        service, _ = make_service()
        service.add_document("doc", PAPER)
        bad = PrepRequest(measure="qic")  # qic needs a query
        with pytest.raises(ValueError):
            service.prepare("doc", bad)
        with pytest.raises(ValueError):
            service.prepare("doc", bad)  # still raises, not a cached poison
        assert service.prepare("doc", PrepRequest(query="mobile")).document_id == "doc"


class TestServiceConveniences:
    def test_warmup_counts_builds(self):
        service, pipeline = make_service()
        service.add_document("a", PAPER)
        service.add_document("b", OTHER)
        count = service.warmup()
        assert count == 2
        assert pipeline.runs == 2
        service.prepare("a")
        assert pipeline.runs == 2  # warm

    def test_content_digest_distinguishes_markup_kind(self):
        assert content_digest("<a/>", html=False) != content_digest("<a/>", html=True)

    def test_one_shot_prepare_facade(self, tmp_path):
        target = tmp_path / "facade.xml"
        target.write_text(PAPER, encoding="utf-8")
        by_path = prepare(target, query="mobile")
        assert by_path.document_id == "facade"
        inline = prepare(PAPER, query="mobile")
        assert inline.document_id.startswith("inline-")
        with pytest.raises(TypeError):
            prepare(PAPER, request=PrepRequest(), query="conflict")

    def test_cache_info(self):
        service, _ = make_service()
        service.add_document("doc", PAPER)
        service.prepare("doc")
        info = service.cache_info()
        assert info["cooked"]["entries"] == 1
        assert info["sc"]["entries"] == 1
        assert info["cooked"]["bytes"] > 0
