"""Tests for the round-based fault-tolerant transfer protocol."""

import random

import pytest

from repro.coding.packets import Packetizer
from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.sender import DocumentSender
from repro.transport.session import transfer_document

DOCUMENT = bytes(range(256)) * 20  # 5120 bytes


def prepare(gamma=1.5, packet_size=256):
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=gamma))
    return sender.prepare_raw("doc", DOCUMENT)


class TestCleanChannel:
    def test_transfer_without_errors(self):
        prepared = prepare()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = transfer_document(prepared, channel)
        assert result.success
        assert result.rounds == 1
        assert result.payload == DOCUMENT
        # Exactly M frames suffice: transmission stops at the M-th.
        assert result.frames_sent == prepared.m

    def test_response_time_matches_clock(self):
        prepared = prepare()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = transfer_document(prepared, channel)
        frame_bytes = 256 + 4
        expected = prepared.m * channel.transmission_time(frame_bytes)
        assert result.response_time == pytest.approx(expected)


class TestLossyChannel:
    def test_recovers_with_redundancy(self):
        prepared = prepare(gamma=2.0)
        channel = WirelessChannel(alpha=0.2, rng=random.Random(1))
        result = transfer_document(prepared, channel)
        assert result.success
        assert result.payload == DOCUMENT

    def test_caching_beats_nocaching_on_bad_channel(self):
        prepared = prepare(gamma=1.2)
        nocache_channel = WirelessChannel(alpha=0.4, rng=random.Random(2))
        nocache = transfer_document(
            prepared, nocache_channel, cache=None, max_rounds=300
        )
        cache_channel = WirelessChannel(alpha=0.4, rng=random.Random(2))
        cached = transfer_document(
            prepared, cache_channel, cache=PacketCache(), max_rounds=300
        )
        assert cached.success
        assert cached.response_time < nocache.response_time
        assert cached.rounds < nocache.rounds or not nocache.success

    def test_max_rounds_gives_up(self):
        prepared = prepare(gamma=1.0)  # no redundancy at all
        channel = WirelessChannel(alpha=0.9, rng=random.Random(3))
        result = transfer_document(prepared, channel, max_rounds=3)
        assert not result.success
        assert result.rounds == 3
        assert result.payload is None


class TestEarlyTermination:
    def test_relevance_threshold_stops_early(self):
        prepared = prepare()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = transfer_document(prepared, channel, relevance_threshold=0.25)
        assert result.success
        assert result.terminated_early
        assert result.payload is None
        # Uniform profile: ~25% of M packets needed.
        assert result.frames_sent <= prepared.m // 2

    def test_threshold_zero_sends_nothing(self):
        prepared = prepare()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = transfer_document(prepared, channel, relevance_threshold=0.0)
        assert result.terminated_early
        assert result.frames_sent == 0
        assert result.response_time == 0.0

    def test_threshold_one_downloads_fully(self):
        prepared = prepare()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = transfer_document(prepared, channel, relevance_threshold=1.0)
        assert result.success
        # Reaching content 1.0 needs all M clear packets — equivalent
        # to reconstruction.
        assert result.frames_sent == prepared.m


class TestCachePersistence:
    def test_failed_transfer_populates_cache(self):
        """A transfer interrupted by max_rounds leaves packets that a
        retry can reuse (the paper's retransmission scenario)."""
        prepared = prepare(gamma=1.0)
        cache = PacketCache()
        first_channel = WirelessChannel(alpha=0.5, rng=random.Random(4))
        first = transfer_document(prepared, first_channel, cache=cache, max_rounds=2)
        assert not first.success
        assert cache.packet_count("doc") > 0

    def test_cache_seeds_followup_transfer(self):
        """A retry with the tail already cached stops after receiving
        only the missing prefix packets."""
        prepared = prepare(gamma=1.0)
        cache = PacketCache()
        missing = 5
        for sequence in range(missing, prepared.n):
            cache.store("doc", sequence, prepared.cooked.cooked[sequence])

        channel = WirelessChannel(alpha=0.0, rng=random.Random(5))
        result = transfer_document(prepared, channel, cache=cache)
        assert result.success
        assert result.payload == DOCUMENT
        assert result.frames_sent == missing

    def test_cache_cleared_after_success(self):
        prepared = prepare(gamma=1.5)
        cache = PacketCache()
        channel = WirelessChannel(alpha=0.2, rng=random.Random(6))
        result = transfer_document(prepared, channel, cache=cache)
        assert result.success
        assert cache.packet_count("doc") == 0

    def test_validation(self):
        prepared = prepare()
        channel = WirelessChannel(alpha=0.0)
        with pytest.raises(ValueError):
            transfer_document(prepared, channel, max_rounds=0)
