"""Smoke tests for the print_* reproduction entry points.

These guard the presentation layer: every printer must produce the
figure's panels and series without touching the full-scale defaults.
"""

import pytest

import repro.figures as figures
from repro.simulation.parameters import Parameters

TINY = Parameters(documents_per_session=10, repetitions=2, max_rounds=8)


class TestAnalyticPrinters:
    def test_print_table1(self, capsys):
        figures.print_table1()
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "MQIC" in out
        assert "1.0.1" in out

    def test_print_table2(self, capsys):
        figures.print_table2()
        out = capsys.readouterr().out
        assert "M (raw packets)" in out

    def test_print_figure2(self, capsys):
        figures.print_figure2(ms=(10, 20), alphas=(0.1,), successes=(0.95,))
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "alpha=0.1" in out

    def test_print_figure3(self, capsys):
        figures.print_figure3(alphas=(0.1, 0.5), successes=(0.95,))
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "S=95%" in out


class TestSimulationPrinters:
    def test_print_figure4(self, capsys):
        figures.print_figure4(
            TINY, gammas=(1.2, 1.5), alphas=(0.1,), irrelevant_fractions=(0.0,)
        )
        out = capsys.readouterr().out
        assert "Figure 4 — caching (I = 0)" in out
        assert "Figure 4 — nocaching (I = 0)" in out

    def test_print_figure5(self, capsys):
        figures.print_figure5(TINY, fractions=(0.0, 0.5), alphas=(0.1,))
        out = capsys.readouterr().out
        assert "response time vs I" in out
        assert "response time vs F" in out

    def test_print_figure6(self, capsys):
        figures.print_figure6(TINY, thresholds=(0.2,), alphas=(0.1,))
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "paragraph" in out

    def test_print_figure7(self, capsys):
        figures.print_figure7(TINY, thresholds=(0.2,), deltas=(2.0,))
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "delta = 2" in out
