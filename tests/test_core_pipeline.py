"""Tests for the five-stage SC generation pipeline."""

import pytest

from repro.core.lod import LOD
from repro.core.pipeline import (
    DocumentRecognizer,
    KeywordExtractorStage,
    LemmatizerStage,
    SCPipeline,
    WordFilterStage,
    build_sc,
)
from repro.xmlkit.parser import parse_xml

XML = """<paper>
  <title>Mobile Web</title>
  <abstract><paragraph>Summary of browsing browsers.</paragraph></abstract>
  <section>
    <title>First Section</title>
    <paragraph>Loose paragraph one with packets.</paragraph>
    <paragraph>Loose paragraph two with <emph>dispersal</emph>.</paragraph>
    <subsection>
      <title>Real Subsection</title>
      <paragraph>Nested paragraph content about caching.</paragraph>
    </subsection>
  </section>
  <section>
    <title>Second Section</title>
    <subsection>
      <title>Sub A</title>
      <subsubsection>
        <title>Deep</title>
        <paragraph>Deep paragraph about channels.</paragraph>
      </subsubsection>
    </subsection>
  </section>
</paper>"""


class TestDocumentRecognizer:
    def recognize(self):
        return DocumentRecognizer().recognize(parse_xml(XML))

    def test_root_is_document(self):
        root = self.recognize()
        assert root.lod is LOD.DOCUMENT
        assert root.title == "Mobile Web"

    def test_abstract_is_section_zero(self):
        root = self.recognize()
        assert root.children[0].label == "0"
        assert root.children[0].lod is LOD.SECTION

    def test_sections_numbered(self):
        root = self.recognize()
        assert [child.label for child in root.children] == ["0", "1", "2"]

    def test_loose_paragraphs_grouped_in_virtual_subsection(self):
        root = self.recognize()
        section1 = root.children[1]
        virtual = section1.children[0]
        assert virtual.virtual
        assert virtual.label == "1.0"
        assert virtual.lod is LOD.SUBSECTION
        assert [p.label for p in virtual.children] == ["1.0.1", "1.0.2"]

    def test_real_subsection_follows_virtual(self):
        root = self.recognize()
        section1 = root.children[1]
        assert section1.children[1].label == "1.1"
        assert not section1.children[1].virtual

    def test_subsubsection_labels(self):
        root = self.recognize()
        deep = root.children[2].children[0].children[0]
        assert deep.lod is LOD.SUBSUBSECTION
        assert deep.label == "2.1.1"
        assert deep.children[0].label == "2.1.1.1"

    def test_emphasized_words_collected(self):
        root = self.recognize()
        paragraph = root.children[1].children[0].children[1]
        assert "dispersal" in paragraph.emphasized

    def test_rejects_non_paper_root(self):
        with pytest.raises(ValueError):
            DocumentRecognizer().recognize(parse_xml("<html/>"))


class TestStages:
    def test_lemmatizer_stage_produces_pairs(self):
        root = DocumentRecognizer().recognize(parse_xml(XML))
        LemmatizerStage().process(root)
        paragraph = root.children[0].children[0].children[0]
        assert paragraph.tokens
        originals = [orig for orig, _lemma in paragraph.tokens]
        assert "browsing" in originals

    def test_word_filter_removes_stopwords(self):
        root = DocumentRecognizer().recognize(parse_xml(XML))
        LemmatizerStage().process(root)
        WordFilterStage().process(root)
        for unit in root.walk():
            for original, _lemma in unit.tokens:
                assert original not in ("of", "with", "the", "about")

    def test_extractor_min_count(self):
        root = DocumentRecognizer().recognize(parse_xml(XML))
        LemmatizerStage().process(root)
        WordFilterStage().process(root)
        KeywordExtractorStage(min_count=3).process(root)
        # "caching" and "channels" appear once each, in paragraph
        # bodies only (not titles, not <emph>), so they are filtered;
        # "paragraph" occurs 4 times and stays.
        totals = {}
        for unit in root.walk():
            for lemma, count in unit.counts.items():
                totals[lemma] = totals.get(lemma, 0) + count
        assert "cach" not in totals
        assert "channel" not in totals
        assert totals["paragraph"] >= 3

    def test_emphasized_survives_min_count(self):
        root = DocumentRecognizer().recognize(parse_xml(XML))
        LemmatizerStage().process(root)
        WordFilterStage().process(root)
        KeywordExtractorStage(min_count=5).process(root)
        all_lemmas = set()
        for unit in root.walk():
            all_lemmas.update(unit.counts)
        assert "dispers" in all_lemmas  # <emph> keeps it


class TestFullPipeline:
    def test_build_sc(self):
        sc = build_sc(parse_xml(XML))
        assert sc.root.lod is LOD.DOCUMENT
        assert sc.size_bytes() > 0
        assert len(sc.vector) > 0

    def test_vector_matches_tree_counts(self):
        sc = build_sc(parse_xml(XML))
        assert dict(sc.vector.items()) == sc.root.counts()

    def test_units_carry_payload(self):
        sc = build_sc(parse_xml(XML))
        paragraph = sc.unit("1.0.1")
        assert b"packets" in paragraph.payload.lower()

    def test_shared_lemmatizer_exposed(self):
        pipeline = SCPipeline()
        assert pipeline.shared_lemmatizer is pipeline.lemmatizer.lemmatizer

    def test_table1_shape_on_draft_paper(self):
        """The bundled draft paper yields the Table 1 structure."""
        from repro.data import draft_paper_source

        sc = build_sc(parse_xml(draft_paper_source()))
        assert sc.unit("0") is not None       # abstract = section 0
        assert sc.unit("3.1") is not None     # real subsections in §3
        assert sc.unit("1.0.1") is not None   # virtual subsection paragraphs
