"""Unit tests for the sans-IO §4.2 transfer engine (repro.protocol)."""

import random
from pathlib import Path

import pytest

from repro import obs
from repro.obs import trace as tr
from repro.protocol import (
    DEFAULT_MAX_ROUNDS,
    Decoded,
    EarlyStop,
    Failed,
    FaultInjector,
    FrameCorrupt,
    FrameDelivered,
    FrameLost,
    RenderPrefix,
    RoundEnded,
    SendRound,
    Stalled,
    TERMINAL_EFFECTS,
    TelemetryBridge,
    TransferEngine,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def deliver_all(engine, n, skip=()):
    """Feed one round of intact frames, skipping *skip*; return terminal."""
    for seq in range(n):
        if seq in skip:
            terminal = engine.on_frame_lost(seq)
        else:
            terminal = engine.on_frame_intact(seq)
        if terminal is not None:
            return terminal
    return engine.on_round_ended()


class TestValidation:
    def test_m_must_be_positive(self):
        with pytest.raises(ValueError):
            TransferEngine(0, 4)

    def test_n_must_cover_m(self):
        with pytest.raises(ValueError):
            TransferEngine(5, 4)

    def test_max_rounds_must_be_positive(self):
        with pytest.raises(ValueError):
            TransferEngine(2, 4, max_rounds=0)

    def test_threshold_requires_profile(self):
        with pytest.raises(ValueError, match="content_profile"):
            TransferEngine(2, 4, relevance_threshold=0.5)

    def test_profile_length_must_match_m(self):
        with pytest.raises(ValueError, match="expected M"):
            TransferEngine(3, 4, content_profile=[0.5, 0.5])

    def test_sequence_out_of_range_rejected(self):
        engine = TransferEngine(2, 4)
        engine.start()
        with pytest.raises(ValueError, match="out of range"):
            engine.on_frame_intact(4)

    def test_start_twice_rejected(self):
        engine = TransferEngine(2, 4)
        engine.start()
        with pytest.raises(RuntimeError):
            engine.start()


class TestTermination:
    def test_decodes_at_m_intact(self):
        engine = TransferEngine(3, 5)
        assert engine.start() is None
        assert engine.on_frame_intact(0) is None
        assert engine.on_frame_intact(4) is None
        terminal = engine.on_frame_intact(2)
        assert terminal == Decoded(round=1, intact=3)
        assert engine.finished is terminal
        assert engine.can_reconstruct()

    def test_duplicates_do_not_advance(self):
        engine = TransferEngine(3, 5)
        engine.start()
        engine.on_frame_intact(0)
        assert engine.on_frame_intact(0) is None
        assert engine.intact_count == 1

    def test_threshold_checked_before_decode(self):
        """At the M-th packet an F ≤ total document is judged first."""
        engine = TransferEngine(
            2, 3, content_profile=[0.5, 0.5], relevance_threshold=1.0
        )
        engine.start()
        engine.on_frame_intact(0)
        terminal = engine.on_frame_intact(1)
        assert isinstance(terminal, EarlyStop)
        assert terminal.content == pytest.approx(1.0)

    def test_early_stop_on_partial_content(self):
        engine = TransferEngine(
            4, 6, content_profile=[0.4, 0.3, 0.2, 0.1], relevance_threshold=0.6
        )
        engine.start()
        assert engine.on_frame_intact(0) is None  # 0.4 < 0.6
        terminal = engine.on_frame_intact(1)      # 0.7 >= 0.6
        assert terminal == EarlyStop(round=1, content=pytest.approx(0.7))

    def test_redundancy_packets_carry_no_content(self):
        engine = TransferEngine(
            2, 4, content_profile=[0.5, 0.5], relevance_threshold=0.4
        )
        engine.start()
        assert engine.on_frame_intact(2) is None  # redundancy: no content
        assert engine.content_received == 0.0

    def test_failure_at_max_rounds(self):
        engine = TransferEngine(2, 3, max_rounds=2)
        assert engine.start() is None
        assert deliver_all(engine, 3, skip={0, 1, 2}) is None  # round 1 stalls
        terminal = deliver_all(engine, 3, skip={0, 1, 2})
        assert terminal == Failed(round=2, intact=0)

    def test_f_zero_discards_before_any_packet(self):
        engine = TransferEngine(
            2, 3, content_profile=[0.5, 0.5], relevance_threshold=0.0
        )
        assert engine.start() == EarlyStop(round=0, content=0.0)

    def test_preloaded_document_decodes_at_round_zero(self):
        engine = TransferEngine(2, 4, preloaded=[1, 3])
        assert engine.start() == Decoded(round=0, intact=2)

    def test_terminal_is_sticky(self):
        engine = TransferEngine(1, 2)
        engine.start()
        terminal = engine.on_frame_intact(0)
        assert isinstance(terminal, Decoded)
        assert engine.on_frame_intact(1) is terminal
        assert engine.on_round_ended() is terminal
        assert engine.handle(FrameDelivered(1)) == (terminal,)


class TestCachePolicy:
    def test_nocaching_restarts_from_zero(self):
        engine = TransferEngine(3, 4, caching=False)
        engine.start()
        engine.on_frame_intact(0)
        engine.on_frame_intact(1)
        assert engine.on_round_ended() is None
        assert engine.intact_count == 0
        assert engine.round == 2

    def test_caching_keeps_intact_set(self):
        engine = TransferEngine(3, 4, caching=True)
        engine.start()
        engine.on_frame_intact(0)
        engine.on_frame_intact(1)
        assert engine.on_round_ended() is None
        assert engine.intact_count == 2
        terminal = engine.on_frame_intact(2)
        assert terminal == Decoded(round=2, intact=3)

    def test_carried_overrides_policy(self):
        """A driver's cache can overrule the engine default (eviction)."""
        engine = TransferEngine(3, 4, caching=True)
        engine.start()
        engine.on_frame_intact(0)
        engine.on_round_ended(carried=False)
        assert engine.intact_count == 0

        engine = TransferEngine(3, 4, caching=False)
        engine.start()
        engine.on_frame_intact(0)
        engine.on_round_ended(carried=True)
        assert engine.intact_count == 1


class TestTypedEvents:
    def test_begin_emits_send_round(self):
        engine = TransferEngine(2, 3)
        assert engine.begin() == (SendRound(1),)

    def test_begin_emits_terminal_for_preloaded(self):
        engine = TransferEngine(2, 3, preloaded=[0, 1])
        assert engine.begin() == (Decoded(round=0, intact=2),)

    def test_round_ended_emits_stalled_then_send_round(self):
        engine = TransferEngine(2, 3)
        engine.begin()
        engine.handle(FrameDelivered(0))
        effects = engine.handle(RoundEnded())
        assert effects == (Stalled(round=1, intact=1), SendRound(2))

    def test_round_ended_at_bound_emits_stalled_then_failed(self):
        engine = TransferEngine(2, 3, max_rounds=1)
        engine.begin()
        effects = engine.handle(RoundEnded())
        assert effects == (Stalled(round=1, intact=0), Failed(round=1, intact=0))

    def test_corrupt_and_lost_leave_state_untouched(self):
        engine = TransferEngine(2, 3)
        engine.begin()
        assert engine.handle(FrameCorrupt(0)) == ()
        assert engine.handle(FrameLost(1)) == ()
        assert engine.intact_count == 0
        assert engine.corrupted_seen == 1
        assert engine.lost_seen == 1

    def test_unknown_event_rejected(self):
        engine = TransferEngine(2, 3)
        engine.begin()
        with pytest.raises(TypeError):
            engine.handle(object())

    def test_terminal_effects_union_is_exhaustive(self):
        assert TERMINAL_EFFECTS == (EarlyStop, Decoded, Failed)


class TestPrefixTracking:
    def test_render_prefix_emitted_as_prefix_grows(self):
        engine = TransferEngine(3, 4, track_prefix=True)
        engine.begin()
        assert engine.handle(FrameDelivered(1)) == ()  # gap at 0: no prefix
        effects = engine.handle(FrameDelivered(0))     # closes the gap: 0..1
        assert effects == (RenderPrefix(2),)
        effects = engine.handle(FrameDelivered(2))
        assert effects[0] == RenderPrefix(3)
        assert isinstance(effects[1], Decoded)

    def test_redundancy_never_extends_prefix(self):
        engine = TransferEngine(2, 4, track_prefix=True)
        engine.begin()
        assert engine.handle(FrameDelivered(3)) == ()
        assert engine.prefix_packets == 0

    def test_preloaded_prefix_emitted_at_begin(self):
        engine = TransferEngine(3, 5, track_prefix=True, preloaded=[0])
        effects = engine.begin()
        assert effects == (RenderPrefix(1), SendRound(1))

    def test_prefix_resets_with_nocaching_stall(self):
        engine = TransferEngine(3, 4, track_prefix=True, caching=False)
        engine.begin()
        engine.handle(FrameDelivered(0))
        engine.handle(RoundEnded())
        assert engine.prefix_packets == 0


class TestTelemetrySingleEmission:
    @pytest.fixture(autouse=True)
    def _clean_obs(self):
        obs.disable(reset=True)
        yield
        obs.disable(reset=True)

    def test_bridge_emits_each_protocol_event_once(self):
        obs.enable()
        bridge = TelemetryBridge("transfer")
        engine = TransferEngine(2, 3, max_rounds=3, bridge=bridge)
        engine.start()
        engine.on_round_ended()          # stall 1
        engine.on_frame_intact(0)
        engine.on_frame_intact(1)        # decode in round 2
        events = [e.event for e in obs.OBS.trace.events]
        assert events.count(tr.TRANSFER_START) == 1
        assert events.count(tr.ROUND_START) == 2
        assert events.count(tr.ROUND_STALLED) == 1
        assert events.count(tr.DECODE_COMPLETE) == 1
        assert events.count(tr.EARLY_STOP) == 0

    def test_unknown_namespace_rejected(self):
        with pytest.raises(ValueError, match="namespace"):
            TelemetryBridge("nope")

    def test_disabled_bridge_emits_nothing(self):
        bridge = TelemetryBridge("sim")
        engine = TransferEngine(2, 3, bridge=bridge)
        engine.start()
        engine.on_frame_intact(0)
        engine.on_frame_intact(1)
        bridge.complete(
            success=True, terminated_early=False, rounds=1, frames=2,
            content=1.0, response_time=0.1,
        )
        assert len(obs.OBS.trace) == 0
        assert len(obs.OBS.metrics) == 0

    def test_drivers_emit_no_protocol_events_directly(self):
        """Round/stall/decode/early-stop come from the bridge only."""
        protocol_event_names = (
            "ROUND_START", "ROUND_STALLED", "DECODE_COMPLETE", "EARLY_STOP",
        )
        drivers = [
            SRC / "transport" / "session.py",
            SRC / "simulation" / "runner.py",
            SRC / "prototype" / "client.py",
        ]
        for path in drivers:
            source = path.read_text(encoding="utf-8")
            for name in protocol_event_names:
                assert name not in source, f"{path.name} emits {name} directly"


class TestFaultInjector:
    def test_validation(self):
        engine = TransferEngine(2, 3)
        with pytest.raises(ValueError):
            FaultInjector(engine, drop=1.5)
        with pytest.raises(ValueError):
            FaultInjector(engine, outage_events=-1)

    def test_drop_converts_delivery_to_loss(self):
        engine = TransferEngine(2, 3)
        faulty = FaultInjector(engine, rng=random.Random(0), drop=1.0)
        faulty.begin()
        assert faulty.handle(FrameDelivered(0)) == ()
        assert engine.intact_count == 0
        assert engine.lost_seen == 1
        assert faulty.dropped == 1

    def test_corrupt_converts_delivery_to_crc_failure(self):
        engine = TransferEngine(2, 3)
        faulty = FaultInjector(engine, rng=random.Random(0), corrupt=1.0)
        faulty.begin()
        faulty.handle(FrameDelivered(0))
        assert engine.corrupted_seen == 1
        assert faulty.corrupted == 1

    def test_disconnect_opens_outage_window(self):
        engine = TransferEngine(2, 6)
        faulty = FaultInjector(
            engine, rng=random.Random(0), disconnect=1.0, outage_events=3
        )
        faulty.begin()
        for seq in range(3):
            faulty.handle(FrameDelivered(seq))
        assert faulty.outages == 1
        assert faulty.dropped == 3
        assert engine.intact_count == 0

    def test_round_ended_passes_through(self):
        engine = TransferEngine(2, 3)
        faulty = FaultInjector(engine, rng=random.Random(0), drop=1.0)
        faulty.begin()
        effects = faulty.handle(RoundEnded())
        assert effects == (Stalled(round=1, intact=0), SendRound(2))

    def test_seeded_schedule_is_deterministic(self):
        def run(seed):
            engine = TransferEngine(4, 8, max_rounds=20)
            faulty = FaultInjector(
                engine, rng=random.Random(seed), drop=0.3, corrupt=0.2,
                disconnect=0.05, outage_events=4,
            )
            faulty.begin()
            while engine.finished is None:
                for seq in range(8):
                    faulty.handle(FrameDelivered(seq))
                    if engine.finished is not None:
                        break
                else:
                    faulty.handle(RoundEnded())
            return engine.finished, faulty.dropped, faulty.corrupted, faulty.outages

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_injector_never_draws_from_engine_path(self):
        """The injector has its own RNG: no draw on pass-through events."""
        class CountingRandom(random.Random):
            calls = 0

            def random(self):
                CountingRandom.calls += 1
                return super().random()

        rng = CountingRandom(3)
        engine = TransferEngine(2, 3)
        faulty = FaultInjector(engine, rng=rng, drop=0.5)
        faulty.begin()
        faulty.handle(RoundEnded())
        assert CountingRandom.calls == 0  # RoundEnded costs no draw
        faulty.handle(FrameDelivered(0))
        assert CountingRandom.calls == 1  # exactly one per delivery


class TestDefaultMaxRounds:
    def test_one_constant_everywhere(self):
        import inspect

        from repro.prototype.client import SequenceManager
        from repro.transport.arq import selective_repeat, stop_and_wait
        from repro.transport.session import transfer_document

        assert DEFAULT_MAX_ROUNDS == 100
        sig = inspect.signature(transfer_document)
        assert sig.parameters["max_rounds"].default == DEFAULT_MAX_ROUNDS
        sig = inspect.signature(SequenceManager.__init__)
        assert sig.parameters["max_rounds"].default == DEFAULT_MAX_ROUNDS
        sig = inspect.signature(selective_repeat)
        assert sig.parameters["max_rounds"].default == DEFAULT_MAX_ROUNDS
        sig = inspect.signature(stop_and_wait)
        assert sig.parameters["max_attempts_per_packet"].default == DEFAULT_MAX_ROUNDS
        sig = inspect.signature(TransferEngine.__init__)
        assert sig.parameters["max_rounds"].default == DEFAULT_MAX_ROUNDS

    def test_disconnect_cumulative_cap(self):
        import inspect

        from repro.transport.disconnect import resumable_transfer

        sig = inspect.signature(resumable_transfer)
        assert sig.parameters["max_total_rounds"].default == DEFAULT_MAX_ROUNDS
