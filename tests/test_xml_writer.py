"""Tests for XML serialization, including parse/serialize round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.xmlkit.dom import Document, Element, Text
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.writer import escape_attribute, escape_text, serialize


class TestEscaping:
    def test_text(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_quotes(self):
        assert escape_attribute('say "hi" & go') == "say &quot;hi&quot; &amp; go"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Element("br")) == "<br/>"

    def test_attributes(self):
        el = Element("a", {"href": "x", "title": 'q"t'})
        assert serialize(el) == '<a href="x" title="q&quot;t"/>'

    def test_mixed_content_inline(self):
        doc = parse_xml("<p>one <em>two</em> three</p>")
        assert serialize(doc.root) == "<p>one <em>two</em> three</p>"

    def test_pretty_print_element_only_children(self):
        doc = parse_xml("<a><b/><c/></a>")
        expected = "<a>\n  <b/>\n  <c/>\n</a>"
        assert serialize(doc.root, indent=2) == expected

    def test_document_with_doctype(self):
        doc = parse_xml("<!DOCTYPE paper><paper/>")
        assert serialize(doc) == "<!DOCTYPE paper><paper/>"


class TestRoundTrip:
    CASES = [
        "<a/>",
        "<a>text</a>",
        "<a><b>x</b><b>y</b></a>",
        "<a>1 &lt; 2 &amp; 3</a>",
        '<a href="u?x=1&amp;y=2">link</a>',
        "<p>mixed <em>content</em> here</p>",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_fixed_cases(self, source):
        once = serialize(parse_xml(source))
        twice = serialize(parse_xml(once))
        assert once == twice

    @given(st.data())
    def test_random_trees_roundtrip(self, data):
        root = data.draw(_element_trees())
        source = serialize(Document(root))
        reparsed = parse_xml(source)
        assert serialize(reparsed) == source
        assert reparsed.root.text_content() == root.text_content()


# Random tree generator: tags from a small alphabet, text that includes
# markup characters so escaping is exercised too.
_TAGS = st.sampled_from(["a", "b", "c", "item"])
_TEXTS = st.text(alphabet=st.sampled_from("xyz <>&'\""), min_size=1, max_size=8)


@st.composite
def _element_trees(draw, depth: int = 0):
    element = Element(draw(_TAGS))
    if depth < 3:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            if draw(st.booleans()):
                element.append(Text(draw(_TEXTS)))
            else:
                element.append(draw(_element_trees(depth=depth + 1)))
    return element
