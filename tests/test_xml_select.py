"""Tests for the DOM path selector."""

import pytest

from repro.xmlkit.parser import parse_xml
from repro.xmlkit.select import SelectorError, select, select_one

DOC = parse_xml(
    """<paper>
  <title>Root Title</title>
  <section label="1">
    <title>Alpha</title>
    <paragraph>one</paragraph>
    <subsection label="1.1">
      <title>Alpha Sub</title>
      <paragraph>two</paragraph>
    </subsection>
  </section>
  <section label="2" starred="yes">
    <title>Beta</title>
    <paragraph>three</paragraph>
  </section>
</paper>"""
)


class TestSimpleSteps:
    def test_single_tag(self):
        assert len(select(DOC, "section")) == 2

    def test_root_can_match(self):
        assert select_one(DOC, "paper").tag == "paper"

    def test_wildcard(self):
        everything = select(DOC, "*")
        assert len(everything) == sum(1 for _ in DOC.root.iter()) + 1

    def test_no_match(self):
        assert select(DOC, "figure") == []
        assert select_one(DOC, "figure") is None


class TestCombinators:
    def test_descendant(self):
        titles = select(DOC, "section title")
        assert [t.text_content() for t in titles] == ["Alpha", "Alpha Sub", "Beta"]

    def test_child(self):
        titles = select(DOC, "section > title")
        assert [t.text_content() for t in titles] == ["Alpha", "Beta"]

    def test_chained(self):
        paragraphs = select(DOC, "paper > section > subsection > paragraph")
        assert [p.text_content() for p in paragraphs] == ["two"]

    def test_document_order_no_duplicates(self):
        paragraphs = select(DOC, "paper paragraph")
        assert [p.text_content() for p in paragraphs] == ["one", "two", "three"]


class TestPredicates:
    def test_attribute_presence(self):
        assert len(select(DOC, "section[starred]")) == 1

    def test_attribute_value(self):
        section = select_one(DOC, 'section[label="2"]')
        assert section.get("starred") == "yes"

    def test_attribute_value_mismatch(self):
        assert select(DOC, 'section[label="9"]') == []

    def test_combined_predicates(self):
        assert len(select(DOC, 'section[label="2"][starred="yes"]')) == 1
        assert select(DOC, 'section[label="1"][starred]') == []

    def test_predicate_with_descendant(self):
        paragraphs = select(DOC, 'section[label="1"] paragraph')
        assert [p.text_content() for p in paragraphs] == ["one", "two"]

    def test_wildcard_with_predicate(self):
        labelled = select(DOC, '*[label]')
        assert len(labelled) == 3


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "   ", ">", "> section", "section >", "section > > title",
         "section[", "section[label=2]"],
    )
    def test_malformed(self, bad):
        with pytest.raises(SelectorError):
            select(DOC, bad)


class TestElementRoot:
    def test_select_from_element(self):
        section = select_one(DOC, 'section[label="1"]')
        titles = select(section, "title")
        assert [t.text_content() for t in titles] == ["Alpha", "Alpha Sub"]
