"""Focused tests for TransferReceiver, including incremental decoding."""

import random

import pytest

from repro.coding.packets import Packetizer, encode_frame
from repro.transport.channel import Delivery, WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import DocumentSender

DOCUMENT = bytes(range(256)) * 8  # 2048 bytes


def prepare(gamma=1.5, packet_size=256):
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=gamma))
    return sender.prepare_raw("doc", DOCUMENT)


def deliver(receiver, prepared, sequence, corrupt=False):
    wire = encode_frame(sequence, prepared.cooked.cooked[sequence])
    if corrupt:
        wire = wire[:-1] + bytes([wire[-1] ^ 0xFF])
    receiver.offer(Delivery(time=0.0, wire=wire, corrupted=corrupt, lost=False))


class TestCrcDiscipline:
    def test_corrupted_frames_counted_not_stored(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0, corrupt=True)
        assert receiver.corrupted_seen == 1
        assert receiver.intact_count == 0

    def test_lost_frames_detected_by_gap(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 3)  # 1 and 2 never arrived
        assert receiver.lost_detected == 2

    def test_duplicates_idempotent(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 0)
        assert receiver.intact_count == 1
        assert receiver.content_received == pytest.approx(
            prepared.content_profile[0]
        )

    def test_offer_reports_intact_sequence(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        wire = encode_frame(2, prepared.cooked.cooked[2])
        delivery = Delivery(time=0.0, wire=wire, corrupted=False, lost=False)
        assert receiver.offer(delivery) == 2
        assert receiver.offer(delivery) == 2  # duplicates still report
        bad = wire[:-1] + bytes([wire[-1] ^ 0xFF])
        assert (
            receiver.offer(Delivery(time=0.0, wire=bad, corrupted=True, lost=False))
            is None
        )
        assert (
            receiver.offer(Delivery(time=0.0, wire=None, corrupted=False, lost=True))
            is None
        )

    def test_corrupt_frames_not_double_counted_as_lost(self):
        # FIFO: the corrupt frame occupies a slot inside the gap, so
        # only the genuinely absent frame counts as lost.
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 1, corrupt=True)  # position 1: damaged
        deliver(receiver, prepared, 3)                # position 2 truly lost
        assert receiver.corrupted_seen == 1
        assert receiver.lost_detected == 1


class TestReconcile:
    def test_trailing_losses_closed_at_round_end(self):
        """Frames lost after the highest sequence leave no gap; the
        round-end reconcile attributes them (the regression this API
        exists for)."""
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 1)
        # Frames 2 .. n-1 all lost: offer() alone never notices.
        assert receiver.lost_detected == 0
        newly = receiver.reconcile(prepared.n)
        assert newly == prepared.n - 2
        assert receiver.lost_detected == prepared.n - 2

    def test_reconcile_counts_trailing_corrupt_separately(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 1, corrupt=True)  # arrived, damaged
        # Everything after position 1 lost: n frames minus the intact
        # one at 0 and the corrupt (but delivered) one at 1.
        newly = receiver.reconcile(prepared.n)
        assert newly == prepared.n - 2
        assert receiver.corrupted_seen == 1

    def test_full_round_reconciles_to_zero(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        for sequence in range(prepared.n):
            deliver(receiver, prepared, sequence)
        assert receiver.reconcile(prepared.n) == 0
        assert receiver.lost_detected == 0

    def test_reconcile_resets_per_round_tracking(self):
        # Round numbering restarts at 0 each round: without the reset a
        # second-round gap at the stream head would go unnoticed.
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, prepared.n - 1)
        receiver.reconcile(prepared.n)
        lost_after_round1 = receiver.lost_detected
        assert lost_after_round1 == prepared.n - 1
        deliver(receiver, prepared, 1)  # round 2: frame 0 lost
        assert receiver.lost_detected == lost_after_round1 + 1


class TestContentAccrual:
    def test_clear_packets_accrue(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 1)
        expected = prepared.content_profile[0] + prepared.content_profile[1]
        assert receiver.content_received == pytest.approx(expected)

    def test_redundancy_packets_do_not_accrue(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, prepared.m)  # first redundancy packet
        assert receiver.content_received == 0.0

    def test_reconstruction_yields_full_content(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        for sequence in range(prepared.m):
            deliver(receiver, prepared, sequence)
        assert receiver.can_reconstruct()
        assert receiver.content_received == pytest.approx(1.0)

    def test_missing_clear_packets(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        missing = receiver.missing_clear_packets()
        assert 0 not in missing
        assert len(missing) == prepared.m - 1


class TestIncrementalMode:
    @pytest.mark.parametrize("incremental", [False, True])
    def test_reconstruction_equivalent(self, incremental):
        prepared = prepare()
        receiver = TransferReceiver(prepared, incremental=incremental)
        rng = random.Random(0)
        order = rng.sample(range(prepared.n), prepared.m)
        for sequence in order:
            deliver(receiver, prepared, sequence)
        assert receiver.can_reconstruct()
        assert receiver.reconstruct() == DOCUMENT

    def test_incremental_with_losses_and_duplicates(self):
        prepared = prepare(gamma=2.0)
        receiver = TransferReceiver(prepared, incremental=True)
        rng = random.Random(1)
        sequences = list(range(prepared.n)) + [0, 1, 2]
        rng.shuffle(sequences)
        for sequence in sequences:
            deliver(receiver, prepared, sequence, corrupt=rng.random() < 0.3)
            if receiver.can_reconstruct():
                break
        if receiver.can_reconstruct():
            assert receiver.reconstruct() == DOCUMENT

    def test_preload_feeds_decoder(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared, incremental=True)
        receiver.preload(
            {i: prepared.cooked.cooked[i] for i in range(prepared.m)}
        )
        assert receiver.can_reconstruct()
        assert receiver.reconstruct() == DOCUMENT


class TestClearPrefix:
    def test_prefix_grows_contiguously(self):
        prepared = prepare(packet_size=128)
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 1)
        assert receiver.clear_prefix() == b""  # gap at 0
        deliver(receiver, prepared, 0)
        assert receiver.clear_prefix() == DOCUMENT[:256]
