"""Focused tests for TransferReceiver, including incremental decoding."""

import random

import pytest

from repro.coding.packets import Packetizer, encode_frame
from repro.transport.channel import Delivery, WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import DocumentSender

DOCUMENT = bytes(range(256)) * 8  # 2048 bytes


def prepare(gamma=1.5, packet_size=256):
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=gamma))
    return sender.prepare_raw("doc", DOCUMENT)


def deliver(receiver, prepared, sequence, corrupt=False):
    wire = encode_frame(sequence, prepared.cooked.cooked[sequence])
    if corrupt:
        wire = wire[:-1] + bytes([wire[-1] ^ 0xFF])
    receiver.offer(Delivery(time=0.0, wire=wire, corrupted=corrupt, lost=False))


class TestCrcDiscipline:
    def test_corrupted_frames_counted_not_stored(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0, corrupt=True)
        assert receiver.corrupted_seen == 1
        assert receiver.intact_count == 0

    def test_lost_frames_detected_by_gap(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 3)  # 1 and 2 never arrived
        assert receiver.lost_detected == 2

    def test_duplicates_idempotent(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 0)
        assert receiver.intact_count == 1
        assert receiver.content_received == pytest.approx(
            prepared.content_profile[0]
        )


class TestContentAccrual:
    def test_clear_packets_accrue(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        deliver(receiver, prepared, 1)
        expected = prepared.content_profile[0] + prepared.content_profile[1]
        assert receiver.content_received == pytest.approx(expected)

    def test_redundancy_packets_do_not_accrue(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, prepared.m)  # first redundancy packet
        assert receiver.content_received == 0.0

    def test_reconstruction_yields_full_content(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        for sequence in range(prepared.m):
            deliver(receiver, prepared, sequence)
        assert receiver.can_reconstruct()
        assert receiver.content_received == pytest.approx(1.0)

    def test_missing_clear_packets(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 0)
        missing = receiver.missing_clear_packets()
        assert 0 not in missing
        assert len(missing) == prepared.m - 1


class TestIncrementalMode:
    @pytest.mark.parametrize("incremental", [False, True])
    def test_reconstruction_equivalent(self, incremental):
        prepared = prepare()
        receiver = TransferReceiver(prepared, incremental=incremental)
        rng = random.Random(0)
        order = rng.sample(range(prepared.n), prepared.m)
        for sequence in order:
            deliver(receiver, prepared, sequence)
        assert receiver.can_reconstruct()
        assert receiver.reconstruct() == DOCUMENT

    def test_incremental_with_losses_and_duplicates(self):
        prepared = prepare(gamma=2.0)
        receiver = TransferReceiver(prepared, incremental=True)
        rng = random.Random(1)
        sequences = list(range(prepared.n)) + [0, 1, 2]
        rng.shuffle(sequences)
        for sequence in sequences:
            deliver(receiver, prepared, sequence, corrupt=rng.random() < 0.3)
            if receiver.can_reconstruct():
                break
        if receiver.can_reconstruct():
            assert receiver.reconstruct() == DOCUMENT

    def test_preload_feeds_decoder(self):
        prepared = prepare()
        receiver = TransferReceiver(prepared, incremental=True)
        receiver.preload(
            {i: prepared.cooked.cooked[i] for i in range(prepared.m)}
        )
        assert receiver.can_reconstruct()
        assert receiver.reconstruct() == DOCUMENT


class TestClearPrefix:
    def test_prefix_grows_contiguously(self):
        prepared = prepare(packet_size=128)
        receiver = TransferReceiver(prepared)
        deliver(receiver, prepared, 1)
        assert receiver.clear_prefix() == b""  # gap at 0
        deliver(receiver, prepared, 0)
        assert receiver.clear_prefix() == DOCUMENT[:256]
