"""Flight-recorder behaviour of the net server (net-marked).

The contract under test: an *abnormal* close — here a chaos-killed
connection the server sees as ``client_gone`` — dumps exactly one
bounded ring record; a clean transfer dumps nothing.
"""

import asyncio

import pytest

from repro.net import ChaosProxy, DocumentStore, NetClient, NetServer
from repro.transport.cache import PacketCache

from tests.netutil import assert_no_leaked_tasks, make_prepared

pytestmark = pytest.mark.net


def test_clean_close_dumps_nothing():
    async def go():
        prepared, payload = make_prepared(size=2048, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        async with NetServer(store) as server:
            result = await NetClient(
                server.host, server.port, cache=PacketCache()
            ).fetch("doc")
            assert result.status == "decoded"
            assert result.payload == payload
            assert server.stats["flight_dumps"] == 0
            assert list(server.flight_dumps) == []
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_killed_connection_dumps_exactly_one_record():
    async def go():
        prepared, payload = make_prepared(size=4096, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        async with NetServer(store) as server:
            async with ChaosProxy(
                server.host, server.port, cut_after_frames=max(1, prepared.m // 2)
            ) as proxy:
                client = NetClient(
                    proxy.host,
                    proxy.port,
                    cache=PacketCache(),
                    reconnect_delay=0.01,
                )
                result = await client.fetch("doc")
            assert result.status == "decoded"
            assert result.reconnects == 1

            # Give the server a beat to notice the severed first link.
            for _ in range(50):
                if server.stats["flight_dumps"]:
                    break
                await asyncio.sleep(0.01)

            # One cut connection -> exactly one dump; the clean resumed
            # connection contributed none.
            assert server.stats["flight_dumps"] == 1
            assert len(server.flight_dumps) == 1
            dump = server.flight_dumps[0]
            assert dump["reason"] == "client_gone"
            assert dump["document"] == "doc"
            assert dump["recorded"] >= 1
            events = [record["event"] for record in dump["events"]]
            assert events[0] == "hello"
            assert "client_gone" in events
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_dump_ring_is_bounded():
    """A tiny ring drops old events but the dump still accounts for them."""

    async def go():
        prepared, _payload = make_prepared(size=4096, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        async with NetServer(store, flight_events=2) as server:
            async with ChaosProxy(
                server.host, server.port, cut_after_frames=max(1, prepared.m // 2)
            ) as proxy:
                client = NetClient(
                    proxy.host,
                    proxy.port,
                    cache=PacketCache(),
                    reconnect_delay=0.01,
                )
                result = await client.fetch("doc")
            assert result.status == "decoded"
            for _ in range(50):
                if server.stats["flight_dumps"]:
                    break
                await asyncio.sleep(0.01)
            dump = server.flight_dumps[0]
            assert len(dump["events"]) <= 2
            assert dump["recorded"] == dump["dropped"] + len(dump["events"])
        await assert_no_leaked_tasks()

    asyncio.run(go())
