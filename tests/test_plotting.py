"""Tests for the ASCII chart renderer."""

import pytest

from repro.plotting import GLYPHS, ascii_chart, chart_series_points
from repro.simulation.metrics import SeriesPoint


class TestAsciiChart:
    def test_basic_structure(self):
        chart = ascii_chart({"line": [(0, 0), (1, 1), (2, 2)]}, width=20, height=5)
        lines = chart.splitlines()
        assert len(lines) == 5 + 3  # grid + axis + x labels + legend
        assert "*=line" in lines[-1]

    def test_points_plotted_at_extremes(self):
        chart = ascii_chart({"s": [(0, 0), (10, 100)]}, width=21, height=7)
        lines = chart.splitlines()
        # max y at top row, min y at bottom row.
        assert "*" in lines[0]
        assert "*" in lines[6]

    def test_monotone_series_descends_visually(self):
        points = [(x, x) for x in range(10)]
        chart = ascii_chart({"up": points}, width=30, height=10)
        rows = chart.splitlines()[:10]
        first_glyph_row = [r for r, line in enumerate(rows) if "*" in line]
        # Increasing series: glyphs appear from bottom rows to top rows.
        assert first_glyph_row[0] == 0
        assert first_glyph_row[-1] == 9

    def test_multiple_series_glyphs(self):
        chart = ascii_chart(
            {"a": [(0, 1)], "b": [(1, 2)], "c": [(2, 3)]}, width=20, height=5
        )
        legend = chart.splitlines()[-1]
        for index, name in enumerate(("a", "b", "c")):
            assert f"{GLYPHS[index]}={name}" in legend

    def test_axis_labels(self):
        chart = ascii_chart({"s": [(2, 5), (8, 9)]}, width=20, height=5)
        assert "2" in chart and "8" in chart
        assert "5" in chart and "9" in chart

    def test_constant_series(self):
        chart = ascii_chart({"flat": [(0, 3), (1, 3)]}, width=10, height=4)
        assert "*" in chart  # no division-by-zero blank chart

    def test_explicit_y_range_clamps(self):
        chart = ascii_chart(
            {"s": [(0, 0), (1, 100)]}, width=10, height=4, y_min=0, y_max=10
        )
        assert "100" not in chart.splitlines()[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"empty": []})
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 0)]}, width=0)


class TestSeriesPointAdapter:
    def test_experiment_curves(self):
        curves = {
            0.1: [SeriesPoint(1.1, [4.0]), SeriesPoint(1.5, [3.5])],
            0.5: [SeriesPoint(1.1, [15.0]), SeriesPoint(1.5, [10.0])],
        }
        chart = chart_series_points(curves, x_label="gamma")
        assert "0.1" in chart
        assert "gamma" in chart
