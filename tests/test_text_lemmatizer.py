"""Tests for repro.text.lemmatizer."""

from repro.text.lemmatizer import Lemmatizer


class TestIrregulars:
    def test_verbs(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemma("went") == lemmatizer.lemma("go")
        assert lemmatizer.lemma("was") == lemmatizer.lemma("be")
        assert lemmatizer.lemma("taken") == lemmatizer.lemma("take")

    def test_nouns(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemma("children") == lemmatizer.lemma("child")
        assert lemmatizer.lemma("matrices") == lemmatizer.lemma("matrix")
        assert lemmatizer.lemma("indices") == lemmatizer.lemma("index")

    def test_case_insensitive(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemma("Went") == lemmatizer.lemma("went")


class TestRegularConflation:
    def test_morphological_variants_pool(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemma("browsing") == lemmatizer.lemma("browse")
        assert lemmatizer.lemma("transmitted") == lemmatizer.lemma("transmitting")
        assert lemmatizer.lemma("documents") == lemmatizer.lemma("document")

    def test_distinct_words_stay_distinct(self):
        lemmatizer = Lemmatizer()
        assert lemmatizer.lemma("mobile") != lemmatizer.lemma("network")

    def test_lemmatize_stream(self):
        lemmatizer = Lemmatizer()
        result = lemmatizer.lemmatize(["browsing", "browsers", "browse"])
        assert len(result) == 3
        assert result[0] == result[2]


class TestExtension:
    def test_extra_irregulars(self):
        lemmatizer = Lemmatizer(extra_irregulars={"wwws": "web"})
        assert lemmatizer.lemma("wwws") == lemmatizer.lemma("web")

    def test_cache_consistency(self):
        lemmatizer = Lemmatizer()
        first = lemmatizer.lemma("browsing")
        second = lemmatizer.lemma("browsing")
        assert first == second
