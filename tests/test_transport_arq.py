"""Tests for the ARQ baselines."""

import random

import pytest

from repro.transport.arq import selective_repeat, stop_and_wait
from repro.transport.channel import WirelessChannel

PAYLOAD = b"The quick brown fox jumps over the lazy dog. " * 30  # 1350 bytes


class TestStopAndWait:
    def test_clean_channel(self):
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = stop_and_wait(PAYLOAD, channel, packet_size=128)
        assert result.success
        assert result.payload == PAYLOAD
        expected_frames = -(-len(PAYLOAD) // 128)
        assert result.frames_sent == expected_frames
        assert result.acks_sent == expected_frames

    def test_lossy_channel_retransmits(self):
        channel = WirelessChannel(alpha=0.3, rng=random.Random(1))
        result = stop_and_wait(PAYLOAD, channel, packet_size=128)
        assert result.success
        assert result.payload == PAYLOAD
        assert result.frames_sent > -(-len(PAYLOAD) // 128)

    def test_gives_up_on_dead_channel(self):
        channel = WirelessChannel(alpha=1.0, rng=random.Random(2))
        result = stop_and_wait(
            PAYLOAD, channel, packet_size=128, max_attempts_per_packet=5
        )
        assert not result.success
        assert result.payload is None

    def test_handles_loss(self):
        channel = WirelessChannel(
            alpha=0.0, loss_probability=0.3, rng=random.Random(3)
        )
        result = stop_and_wait(PAYLOAD, channel, packet_size=128)
        assert result.success
        assert result.payload == PAYLOAD


class TestSelectiveRepeat:
    def test_clean_channel_single_round(self):
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = selective_repeat(PAYLOAD, channel, packet_size=128)
        assert result.success
        assert result.payload == PAYLOAD
        assert result.acks_sent == 1  # one status frame per round

    def test_lossy_channel(self):
        channel = WirelessChannel(alpha=0.4, rng=random.Random(4))
        result = selective_repeat(PAYLOAD, channel, packet_size=128)
        assert result.success
        assert result.payload == PAYLOAD

    def test_retransmits_only_missing(self):
        channel = WirelessChannel(alpha=0.5, rng=random.Random(5))
        result = selective_repeat(PAYLOAD, channel, packet_size=128)
        packets = -(-len(PAYLOAD) // 128)
        # Total frames < stop-and-wait on the same channel would need;
        # in particular, far fewer than packets * rounds.
        assert result.success
        assert result.frames_sent < packets * 10

    def test_gives_up(self):
        channel = WirelessChannel(alpha=1.0, rng=random.Random(6))
        result = selective_repeat(PAYLOAD, channel, packet_size=128, max_rounds=4)
        assert not result.success


class TestComparison:
    def test_selective_repeat_cheaper_than_stop_and_wait(self):
        """Per-round feedback beats per-packet feedback in air time."""
        sw_channel = WirelessChannel(alpha=0.3, rng=random.Random(7))
        sw = stop_and_wait(PAYLOAD, sw_channel, packet_size=128)
        sr_channel = WirelessChannel(alpha=0.3, rng=random.Random(7))
        sr = selective_repeat(PAYLOAD, sr_channel, packet_size=128)
        assert sw.success and sr.success
        assert sr.response_time < sw.response_time

    def test_validation(self):
        channel = WirelessChannel()
        with pytest.raises(ValueError):
            stop_and_wait(PAYLOAD, channel, packet_size=0)
        with pytest.raises(ValueError):
            selective_repeat(PAYLOAD, channel, max_rounds=0)
