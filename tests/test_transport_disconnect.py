"""Tests for outage modeling and resumable transfers."""

import random

import pytest

from repro.coding.packets import Packetizer
from repro.transport.cache import NullCache, PacketCache
from repro.transport.disconnect import OutageChannel, resumable_transfer
from repro.transport.sender import DocumentSender

DOCUMENT = b"r" * 5120


def prepare(gamma=1.5):
    sender = DocumentSender(Packetizer(packet_size=256, redundancy_ratio=gamma))
    return sender.prepare_raw("doc", DOCUMENT)


class TestOutageChannel:
    def test_frames_lost_inside_window(self):
        channel = OutageChannel(outages=[(0.0, 100.0)], alpha=0.0)
        delivery = channel.send(b"x" * 100)
        assert delivery.lost
        assert channel.frames_lost == 1

    def test_frames_flow_outside_window(self):
        channel = OutageChannel(
            outages=[(100.0, 200.0)], alpha=0.0, rng=random.Random(0)
        )
        delivery = channel.send(b"x" * 100)
        assert not delivery.lost and not delivery.corrupted

    def test_in_outage_query(self):
        channel = OutageChannel(outages=[(1.0, 2.0)])
        assert not channel.in_outage(0.5)
        assert channel.in_outage(1.5)
        assert not channel.in_outage(2.0)  # half-open interval

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            OutageChannel(outages=[(2.0, 1.0)])

    def test_corruption_still_applies_outside(self):
        channel = OutageChannel(outages=[], alpha=1.0, rng=random.Random(1))
        assert channel.send(b"y" * 50).corrupted


class TestResumableTransfer:
    def test_clean_channel_single_attempt(self):
        channel = OutageChannel(outages=[], alpha=0.0, rng=random.Random(0))
        result = resumable_transfer(prepare(), channel)
        assert result.success
        assert result.attempts == 1
        assert result.payload == DOCUMENT

    def test_survives_outage_with_cache(self):
        """An outage swallowing the middle of the transfer: attempts
        before and after the gap combine through the cache."""
        prepared = prepare(gamma=1.2)
        # Transfer needs ~20 packets * 0.108s ≈ 2.2s; outage 1s..60s
        # kills most of the early attempts.
        channel = OutageChannel(
            outages=[(1.0, 60.0)], alpha=0.05, rng=random.Random(1)
        )
        result = resumable_transfer(
            prepared, channel, max_attempts=30, rounds_per_attempt=1
        )
        assert result.success
        assert result.attempts > 1
        assert result.payload == DOCUMENT
        # The pre-outage packets were banked: the winning attempt needed
        # fewer frames than a cold start would.
        assert result.attempt_results[-1].frames_sent < prepared.n

    def test_cache_makes_progress_monotone(self):
        prepared = prepare(gamma=1.0)
        cache = PacketCache()
        channel = OutageChannel(outages=[], alpha=0.5, rng=random.Random(2))
        counts = []
        for _ in range(3):
            resumable_transfer(
                prepared, channel, cache=cache, max_attempts=1, rounds_per_attempt=1
            )
            counts.append(cache.packet_count("doc"))
            if counts[-1] == 0:
                break  # success cleared the cache
        nonzero = [c for c in counts if c > 0]
        assert nonzero == sorted(nonzero)

    def test_null_cache_no_progress(self):
        """Without the cache, attempts cannot combine: each one starts
        from zero (the NoCaching pathology across disconnections)."""
        prepared = prepare(gamma=1.0)
        channel = OutageChannel(outages=[], alpha=0.6, rng=random.Random(3))
        result = resumable_transfer(
            prepared,
            channel,
            cache=NullCache(),
            max_attempts=4,
            rounds_per_attempt=1,
        )
        assert not result.success

    def test_gives_up_cleanly(self):
        prepared = prepare(gamma=1.0)
        channel = OutageChannel(outages=[(0.0, 10_000.0)], alpha=0.0)
        result = resumable_transfer(prepared, channel, max_attempts=2)
        assert not result.success
        assert result.attempts == 2
        assert len(result.attempt_results) == 2

    def test_relevance_threshold_respected(self):
        prepared = prepare()
        channel = OutageChannel(outages=[], alpha=0.0, rng=random.Random(4))
        result = resumable_transfer(
            prepared, channel, relevance_threshold=0.25
        )
        assert result.success
        assert result.attempt_results[0].terminated_early

    def test_validation(self):
        channel = OutageChannel(outages=[])
        with pytest.raises(ValueError):
            resumable_transfer(prepare(), channel, max_attempts=0)
