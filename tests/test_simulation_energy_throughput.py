"""Tests for energy accounting and the effective-throughput experiment."""

import random

import pytest

from repro.core.lod import LOD
from repro.simulation.energy import (
    EnergyModel,
    energy_saving,
    session_energy,
    transfer_energy,
)
from repro.simulation.parameters import Parameters
from repro.simulation.runner import TransferOutcome, simulate_session
from repro.simulation.throughput import session_throughput, throughput_comparison

QUICK = Parameters(documents_per_session=40, max_rounds=10)


def outcome(response_time=2.0, early=False, success=True, packets=20):
    return TransferOutcome(
        response_time=response_time,
        rounds=1,
        packets_sent=packets,
        success=success,
        terminated_early=early,
    )


class TestTransferEnergy:
    def test_receive_energy_linear_in_time(self):
        model = EnergyModel(rx_power=2.0)
        assert transfer_energy(outcome(response_time=3.0), model) == pytest.approx(6.0)

    def test_decode_surcharge(self):
        model = EnergyModel(rx_power=1.0, decode_energy=0.5)
        plain = transfer_energy(outcome(), model, needed_matrix_decode=False)
        decoded = transfer_energy(outcome(), model, needed_matrix_decode=True)
        assert decoded == pytest.approx(plain + 0.5)

    def test_early_termination_never_decodes(self):
        model = EnergyModel(decode_energy=0.5)
        early = transfer_energy(outcome(early=True), model, needed_matrix_decode=True)
        assert early == pytest.approx(model.rx_power * 2.0)


class TestSessionEnergy:
    def test_breakdown(self):
        model = EnergyModel(rx_power=1.0, idle_power=0.1, decode_energy=0.0)
        outcomes = [outcome(response_time=2.0), outcome(response_time=4.0, early=True)]
        energy = session_energy(outcomes, think_time_per_document=10.0, model=model)
        assert energy.receive_joules == pytest.approx(6.0)
        assert energy.idle_joules == pytest.approx(2.0)
        assert energy.total_joules == pytest.approx(8.0)

    def test_decode_counted_for_full_downloads_only(self):
        model = EnergyModel(decode_energy=1.0)
        outcomes = [outcome(), outcome(early=True), outcome(success=False)]
        energy = session_energy(outcomes, model=model)
        assert energy.decode_joules == pytest.approx(1.0)

    def test_early_termination_saves_energy(self):
        """The motivation claim: multi-resolution saves battery by
        discarding irrelevant documents early."""
        params = QUICK.replace(irrelevant=1.0, threshold=0.3)
        sequential = simulate_session(
            params, random.Random(0), caching=True, lod=LOD.DOCUMENT,
            collect_outcomes=True,
        )
        ranked = simulate_session(
            params, random.Random(0), caching=True, lod=LOD.PARAGRAPH,
            collect_outcomes=True,
        )
        baseline = session_energy(sequential.outcomes)
        candidate = session_energy(ranked.outcomes)
        saving = energy_saving(baseline, candidate)
        assert saving > 0.02  # measurable battery win

    def test_energy_saving_validation(self):
        zero = session_energy([], model=EnergyModel())
        with pytest.raises(ValueError):
            energy_saving(zero, zero)

    def test_think_time_validation(self):
        with pytest.raises(ValueError):
            session_energy([outcome()], think_time_per_document=0.0)


class TestThroughput:
    def test_single_session(self):
        result = session_throughput(QUICK, LOD.PARAGRAPH, seed=1)
        assert result.useful_bytes > 0
        assert result.air_seconds > 0
        assert 0 < result.effective_kbps < QUICK.bandwidth_kbps

    def test_zero_air_time_guard(self):
        from repro.simulation.throughput import ThroughputResult

        empty = ThroughputResult(lod=LOD.DOCUMENT, useful_bytes=0.0, air_seconds=0.0)
        assert empty.effective_kbps == 0.0

    def test_multiresolution_raises_effective_throughput(self):
        """The §6 throughput claim: finer LOD ordering wastes less air
        time on documents the user discards."""
        params = QUICK.replace(irrelevant=0.5, threshold=0.3)
        comparison = throughput_comparison(
            params, lods=(LOD.DOCUMENT, LOD.PARAGRAPH), repetitions=3, seed=2
        )
        assert comparison[LOD.PARAGRAPH] > comparison[LOD.DOCUMENT]

    def test_all_relevant_no_gain(self):
        """With nothing to discard, ordering cannot help throughput."""
        params = QUICK.replace(irrelevant=0.0)
        comparison = throughput_comparison(
            params, lods=(LOD.DOCUMENT, LOD.PARAGRAPH), repetitions=2, seed=3
        )
        assert comparison[LOD.PARAGRAPH] == pytest.approx(
            comparison[LOD.DOCUMENT], rel=0.05
        )
