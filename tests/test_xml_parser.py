"""Tests for the XML tree builder."""

import pytest

from repro.xmlkit.dom import Comment, Element, Text
from repro.xmlkit.errors import XmlSyntaxError
from repro.xmlkit.parser import parse_fragment, parse_xml


class TestWellFormed:
    def test_simple_document(self):
        doc = parse_xml("<paper><title>Hi</title></paper>")
        assert doc.root.tag == "paper"
        title = doc.root.find("title")
        assert title is not None
        assert title.text_content() == "Hi"

    def test_nesting(self):
        doc = parse_xml("<a><b><c/></b><b/></a>")
        assert [child.tag for child in doc.root.child_elements()] == ["b", "b"]
        assert doc.root.find("c") is not None

    def test_mixed_content(self):
        doc = parse_xml("<p>one <em>two</em> three</p>")
        kinds = [type(node).__name__ for node in doc.root.children]
        assert kinds == ["Text", "Element", "Text"]
        assert doc.root.text_content() == "one two three"

    def test_prolog_comment_and_doctype(self):
        doc = parse_xml("<!DOCTYPE paper><!-- top --><paper/>")
        assert doc.doctype == "DOCTYPE paper"
        assert len(doc.prolog) == 1
        assert doc.prolog[0].data == " top "

    def test_whitespace_outside_root_ok(self):
        doc = parse_xml("\n  <a/>\n")
        assert doc.root.tag == "a"

    def test_attributes_survive(self):
        doc = parse_xml('<a id="root"><b class="x"/></a>')
        assert doc.root.get("id") == "root"
        assert doc.root.find("b").get("class") == "x"

    def test_comments_inside_elements(self):
        doc = parse_xml("<a><!-- inner --><b/></a>")
        assert any(isinstance(child, Comment) for child in doc.root.children)


class TestViolations:
    @pytest.mark.parametrize(
        "source",
        [
            "<a><b></a></b>",       # mismatched nesting
            "<a>",                  # unclosed
            "<a/><b/>",             # two roots
            "text<a/>",             # data before root
            "<a/>trailing",         # data after root
            "</a>",                 # stray end tag
            "",                     # empty
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(XmlSyntaxError):
            parse_xml(source)


class TestFragment:
    def test_multiple_top_level_nodes(self):
        nodes = parse_fragment("<a/>text<b/>")
        assert len(nodes) == 3
        assert isinstance(nodes[0], Element)
        assert isinstance(nodes[1], Text)
        assert all(node.parent is None for node in nodes)


class TestNavigation:
    def test_iter_depth_first(self):
        doc = parse_xml("<a><b><c/></b><d/></a>")
        assert [el.tag for el in doc.root.iter()] == ["b", "c", "d"]

    def test_find_all(self):
        doc = parse_xml("<a><b/><c><b/></c></a>")
        assert len(doc.root.find_all("b")) == 2

    def test_document_find_includes_root(self):
        doc = parse_xml("<a><b/></a>")
        assert doc.find("a") is doc.root
        assert doc.find_all("a") == [doc.root]

    def test_ancestors(self):
        doc = parse_xml("<a><b><c/></b></a>")
        c = doc.root.find("c")
        assert [el.tag for el in c.ancestors()] == ["b", "a"]

    def test_direct_text(self):
        doc = parse_xml("<p>own <em>nested</em> text</p>")
        assert doc.root.direct_text() == "own  text"
