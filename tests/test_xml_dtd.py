"""Tests for the DTD validator and the research-paper document type."""

import pytest

from repro.xmlkit.dtd import RESEARCH_PAPER, DocumentType, ElementDecl
from repro.xmlkit.errors import XmlValidationError
from repro.xmlkit.parser import parse_xml

VALID_PAPER = """<paper>
  <title>T</title>
  <author>A</author>
  <abstract><paragraph>Summary.</paragraph></abstract>
  <section>
    <title>S1</title>
    <paragraph>Body with <emph>emphasis</emph> and <keyword>terms</keyword>.</paragraph>
    <subsection>
      <title>S1.1</title>
      <paragraph>More.</paragraph>
      <subsubsection><title>S1.1.1</title><paragraph>Deep.</paragraph></subsubsection>
    </subsection>
  </section>
</paper>"""


class TestResearchPaperDtd:
    def test_valid_document_passes(self):
        RESEARCH_PAPER.validate(parse_xml(VALID_PAPER))

    def test_is_valid_boolean(self):
        assert RESEARCH_PAPER.is_valid(parse_xml(VALID_PAPER))
        assert not RESEARCH_PAPER.is_valid(parse_xml("<html/>"))

    def test_wrong_root_rejected(self):
        with pytest.raises(XmlValidationError, match="root"):
            RESEARCH_PAPER.validate(parse_xml("<article/>"))

    def test_undeclared_element_rejected(self):
        doc = parse_xml("<paper><figure/></paper>")
        with pytest.raises(XmlValidationError, match="figure"):
            RESEARCH_PAPER.validate(doc)

    def test_misplaced_element_rejected(self):
        # subsection directly under paper is not allowed.
        doc = parse_xml("<paper><subsection/></paper>")
        with pytest.raises(XmlValidationError):
            RESEARCH_PAPER.validate(doc)

    def test_character_data_in_structural_element_rejected(self):
        doc = parse_xml("<paper>loose text</paper>")
        with pytest.raises(XmlValidationError, match="character data"):
            RESEARCH_PAPER.validate(doc)

    def test_whitespace_in_structural_element_ok(self):
        doc = parse_xml("<paper>\n  <title>T</title>\n</paper>")
        RESEARCH_PAPER.validate(doc)

    def test_comments_allowed_everywhere(self):
        doc = parse_xml("<paper><!-- note --><title>T</title></paper>")
        RESEARCH_PAPER.validate(doc)


class TestCustomDocumentType:
    def test_required_attributes(self):
        dtd = DocumentType(
            "memo",
            root="memo",
            declarations={
                "memo": ElementDecl(
                    "memo", allows_text=True, required_attributes=("id",)
                )
            },
        )
        dtd.validate(parse_xml('<memo id="1">x</memo>'))
        with pytest.raises(XmlValidationError, match="id"):
            dtd.validate(parse_xml("<memo>x</memo>"))

    def test_root_must_be_declared(self):
        with pytest.raises(ValueError):
            DocumentType("broken", root="missing", declarations={})

    def test_error_path_reported(self):
        doc = parse_xml("<paper><section><title>t</title><abstract/></section></paper>")
        with pytest.raises(XmlValidationError, match="paper/section"):
            RESEARCH_PAPER.validate(doc)
