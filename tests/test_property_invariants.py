"""Cross-cutting property-based tests for the system's core invariants.

Each class pins one invariant the design depends on, over randomized
inputs: the multi-resolution dominance property, profile normalization,
coding round-trips through the frame layer, simulator accounting, and
the analytic model's monotonicities.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.negbinom import cdf
from repro.coding.packets import Packetizer, decode_frame, encode_frame
from repro.core.lod import LOD
from repro.simulation.parameters import Parameters
from repro.simulation.runner import simulate_transfer
from repro.simulation.workload import SyntheticDocument


def make_document(seed: int, delta: float) -> SyntheticDocument:
    params = Parameters(delta=delta)
    return SyntheticDocument(params, random.Random(seed))


class TestMultiResolutionDominance:
    """The dominance properties the design actually guarantees.

    (a) Paragraph-LOD ordering dominates *every* other ordering at
        every packet prefix: with equal-size units, descending sort
        maximizes all prefix sums.
    (b) Each coarser LOD dominates sequential (document) order at its
        own unit boundaries: the greedy top-k units maximize any
        k-unit total.

    Note the stronger claim — pointwise dominance between *adjacent*
    LODs — is false in general (a coarse unit can front-load content
    mid-unit), which is why only (a) and (b) are asserted.
    """

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_paragraph_order_dominates_everything(self, seed, delta):
        document = make_document(seed, delta)
        profiles = {lod: document.content_profile(lod) for lod in LOD}
        paragraph = profiles[LOD.PARAGRAPH]
        m = len(paragraph)
        for other in (LOD.DOCUMENT, LOD.SECTION, LOD.SUBSECTION):
            cumulative_fine = 0.0
            cumulative_other = 0.0
            for packet in range(m):
                cumulative_fine += paragraph[packet]
                cumulative_other += profiles[other][packet]
                assert cumulative_fine >= cumulative_other - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_unit_boundary_dominance_over_sequential(self, seed, delta):
        document = make_document(seed, delta)
        sequential = document.content_profile(LOD.DOCUMENT)
        params = document.params
        boundaries = {
            LOD.SECTION: params.m // params.sections,
            LOD.SUBSECTION: params.m // (params.sections * params.subsections_per_section),
        }
        for lod, stride in boundaries.items():
            ranked = document.content_profile(lod)
            for cut in range(stride, params.m + 1, stride):
                assert (
                    sum(ranked[:cut]) >= sum(sequential[:cut]) - 1e-9
                )

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=1.0, max_value=10.0),
    )
    def test_profiles_normalized(self, seed, delta):
        document = make_document(seed, delta)
        for lod in LOD:
            profile = document.content_profile(lod)
            assert sum(profile) == pytest.approx(1.0)
            assert all(value >= -1e-12 for value in profile)


class TestCodingThroughFrames:
    """Document → cooked packets → frames → (subset) → document."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=600),
        st.floats(min_value=1.0, max_value=2.5),
    )
    def test_roundtrip_any_m_subset(self, seed, size, gamma):
        rng = random.Random(seed)
        document = bytes(rng.randrange(256) for _ in range(size))
        packetizer = Packetizer(packet_size=64, redundancy_ratio=gamma)
        cooked = packetizer.cook(document)
        frames = cooked.frames()
        keep = rng.sample(range(cooked.n), cooked.m)
        received = {}
        for index in keep:
            frame = decode_frame(frames[index])
            assert frame.intact
            received[frame.sequence] = frame.payload
        assert cooked.reassemble(received) == document

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_corrupted_frames_never_validate(self, seed):
        rng = random.Random(seed)
        payload = bytes(rng.randrange(256) for _ in range(32))
        wire = bytearray(encode_frame(rng.randrange(100), payload))
        position = rng.randrange(len(wire))
        flip = rng.randrange(1, 256)
        wire[position] ^= flip
        frame = decode_frame(bytes(wire))
        # Either the CRC catches it, or (flip in the seq field moved
        # the damage outside the payload) the payload is untouched.
        assert not frame.intact or frame.payload == payload


class TestSimulatorAccounting:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=0, max_value=20),
        st.floats(min_value=0.0, max_value=0.7),
        st.booleans(),
    )
    def test_time_equals_packets_times_packet_time(
        self, seed, m, extra, alpha, caching
    ):
        packet_time = 0.1
        outcome = simulate_transfer(
            m=m,
            n=m + extra,
            alpha=alpha,
            packet_time=packet_time,
            rng=random.Random(seed),
            caching=caching,
            max_rounds=10,
        )
        assert outcome.response_time == pytest.approx(
            outcome.packets_sent * packet_time
        )
        assert outcome.packets_sent <= 10 * (m + extra)
        if outcome.success:
            assert outcome.packets_sent >= m

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_caching_never_slower_same_draws(self, seed):
        """With identical corruption draws, Caching terminates no later
        than NoCaching."""
        kwargs = dict(m=20, n=24, alpha=0.4, packet_time=1.0, max_rounds=12)
        caching = simulate_transfer(rng=random.Random(seed), caching=True, **kwargs)
        nocaching = simulate_transfer(rng=random.Random(seed), caching=False, **kwargs)
        if nocaching.success:
            assert caching.response_time <= nocaching.response_time + 1e-9


class TestAnalyticMonotonicity:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.05, max_value=0.9),
        st.integers(min_value=0, max_value=40),
    )
    def test_cdf_monotone_in_x(self, m, alpha, extra):
        x = m + extra
        assert cdf(x + 1, m, alpha) >= cdf(x, m, alpha) - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=60),
        st.floats(min_value=0.05, max_value=0.8),
        st.integers(min_value=0, max_value=40),
    )
    def test_cdf_antitone_in_alpha(self, m, alpha, extra):
        x = m + extra
        worse = min(0.95, alpha + 0.1)
        assert cdf(x, m, worse) <= cdf(x, m, alpha) + 1e-12
