"""Every example script must run cleanly — they are living documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

SCRIPTS = [
    "quickstart.py",
    "search_and_browse.py",
    "faulty_channel_recovery.py",
    "html_extraction.py",
    "adaptive_redundancy.py",
    "cluster_prefetching.py",
    "disconnected_browsing.py",
]


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_reproduce_evaluation_fast_artifacts():
    """The evaluation driver handles artifact selection and the quick
    analytic figures end-to-end."""
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "reproduce_evaluation.py"),
            "table1",
            "table2",
            "fig3",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "Table 1" in result.stdout
    assert "Figure 3" in result.stdout


def test_reproduce_evaluation_rejects_unknown():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "reproduce_evaluation.py"), "fig99"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 2
    assert "unknown artifact" in result.stdout
