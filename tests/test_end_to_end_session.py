"""Capstone integration test: a realistic mobile browsing session.

One scenario exercising most of the system together, end to end:

1. a corpus of generated research papers is served by the prototype
   (gateway + transmitter + search service over the broker);
2. the client searches, reads snippets, and prefetches the runner-up
   hits over idle bandwidth;
3. it browses the top hit with query-ordered multi-resolution
   transmission over a *bursty* channel, rendering incrementally;
4. a second hit is judged irrelevant and abandoned early;
5. a third is fetched during an outage and completes via the resumable
   path after reconnection — all through the same packet cache.
"""

import random

import pytest

from repro.coding.packets import Packetizer
from repro.prototype import (
    DatabaseGateway,
    DocumentTransmitterService,
    MobileBrowser,
    ObjectRequestBroker,
    SearchService,
)
from repro.simulation.textgen import CorpusGenerator
from repro.transport import PacketCache, Prefetcher, PrefetchCandidate, WirelessChannel
from repro.transport.disconnect import OutageChannel, resumable_transfer
from repro.transport.gilbert import matched_to_alpha
from repro.transport.sender import DocumentSender


@pytest.fixture(scope="module")
def stack():
    generator = CorpusGenerator(topic_count=4, seed=21)
    corpus = generator.corpus(8, sections=3, subsections=2, paragraphs=2)
    gateway = DatabaseGateway()
    search = SearchService(gateway)
    for doc_id, (xml, _topic) in corpus.items():
        gateway.put(doc_id, xml)
        search.index(doc_id)
    broker = ObjectRequestBroker()
    broker.register("transmitter", DocumentTransmitterService(gateway))
    broker.register("search", search)
    return generator, corpus, gateway, broker


def test_full_session(stack):
    generator, corpus, gateway, broker = stack
    cache = PacketCache(capacity_bytes=1 << 22)
    channel = matched_to_alpha(0.2, burst_length=6.0, rng=random.Random(99))
    browser = MobileBrowser(broker, channel, cache=cache)
    query = generator.topic_query(1)

    # 1-2. Search; snippets present; prefetch the runner-up hits.
    results = browser.search(query, limit=3)
    assert len(results) >= 2
    assert all(r.snippet for r in results)

    sender = DocumentSender(Packetizer(packet_size=256, redundancy_ratio=1.5))
    runner_ups = [
        PrefetchCandidate(
            prepared=sender.prepare_raw(
                r.document_id, gateway.sc(r.document_id).root.subtree_payload()
            ),
            score=r.score,
        )
        for r in results[1:]
    ]
    report = Prefetcher(cache).run_idle_window(runner_ups, channel, idle_seconds=60.0)
    assert report.fetched or report.partial

    # 3. Browse the top hit with query-ordered transmission.
    top = results[0]
    outcome = browser.browse(
        top.document_id, query_text=query, lod_name="paragraph", gamma=2.0
    )
    assert outcome.success
    assert outcome.rendered, "incremental rendering must have fired"
    render_times = [event.time for event in outcome.rendered]
    assert render_times == sorted(render_times)

    # 4. A low-ranked document is abandoned once content 0.3 arrives.
    any_other = next(doc_id for doc_id in corpus if doc_id != top.document_id)
    abandoned = browser.browse(
        any_other, query_text=query, relevance_threshold=0.3, gamma=1.5
    )
    assert abandoned.terminated_early
    assert abandoned.response_time < outcome.response_time

    # 5. A fetch that collides with an outage completes on resume,
    #    reusing whatever the pre-outage rounds banked in the cache.
    third = sender.prepare_raw(
        "outage-doc", gateway.sc(any_other).root.subtree_payload()
    )
    outage_channel = OutageChannel(
        outages=[(1.0, 25.0)], alpha=0.15, rng=random.Random(5)
    )
    resumed = resumable_transfer(
        third, outage_channel, cache=cache, max_attempts=30, rounds_per_attempt=1
    )
    assert resumed.success
    assert resumed.attempts > 1
    assert resumed.payload == gateway.sc(any_other).root.subtree_payload()


def test_session_budget_accounting(stack):
    """The same stack, instrumented: air time equals the channel clock
    and every frame is accounted for."""
    generator, corpus, gateway, broker = stack
    channel = WirelessChannel(alpha=0.1, rng=random.Random(3))
    browser = MobileBrowser(broker, channel, cache=PacketCache())
    query = generator.topic_query(0)
    results = browser.search(query, limit=1)
    outcome = browser.browse(results[0].document_id, query_text=query, gamma=1.5)
    assert outcome.success
    assert channel.clock == pytest.approx(outcome.response_time)
    assert channel.frames_sent > 0
    assert channel.frames_corrupted <= channel.frames_sent
