"""Fuzz tests: the HTML pipeline must never crash on arbitrary input.

The tolerant parser and the structure extractor sit on the open web's
worst markup; any input string must produce *some* DOM and *some*
valid research-paper document.
"""

from hypothesis import given, settings, strategies as st

from repro.htmlkit.extract import html_to_research_paper
from repro.htmlkit.links import extract_links
from repro.htmlkit.parser import parse_html
from repro.xmlkit.dtd import RESEARCH_PAPER

# Markup-ish soup: plenty of angle brackets, quotes, slashes, entities.
soup = st.text(
    alphabet=st.sampled_from(list("<>/=\"'& abcdefghp123!-[]")),
    max_size=200,
)

# Structured-ish soup: random nesting of plausible tags.
tags = st.sampled_from(
    ["p", "div", "h1", "h2", "b", "i", "li", "ul", "br", "a", "script", "title"]
)


@st.composite
def tag_soup(draw, depth=0):
    parts = []
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        choice = draw(st.integers(min_value=0, max_value=3))
        if choice == 0:
            parts.append(draw(st.text(alphabet="xyz <&", max_size=10)))
        elif choice == 1:
            tag = draw(tags)
            parts.append(f"<{tag}>")  # unclosed on purpose
        elif choice == 2 and depth < 3:
            tag = draw(tags)
            inner = draw(tag_soup(depth=depth + 1))
            parts.append(f"<{tag}>{inner}</{tag}>")
        else:
            parts.append(f"</{draw(tags)}>")  # stray close
    return "".join(parts)


class TestParserNeverCrashes:
    @settings(max_examples=150, deadline=None)
    @given(soup)
    def test_random_soup(self, source):
        document = parse_html(source)
        assert document.root.tag == "html"
        document.root.text_content()  # traversal must work too

    @settings(max_examples=100, deadline=None)
    @given(tag_soup())
    def test_structured_soup(self, source):
        document = parse_html(source)
        for element in document.root.iter():
            assert element.tag


class TestExtractorAlwaysValid:
    @settings(max_examples=100, deadline=None)
    @given(tag_soup())
    def test_extraction_validates(self, source):
        paper = html_to_research_paper(source)
        RESEARCH_PAPER.validate(paper)

    @settings(max_examples=100, deadline=None)
    @given(soup)
    def test_links_never_crash(self, source):
        links = extract_links(source, base_url="http://fuzz/")
        assert isinstance(links, list)
