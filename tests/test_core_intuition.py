"""Tests for the intuition-level transmission ordering (§6)."""

import pytest

from repro.core.information import annotate_sc
from repro.core.intuition import IntuitionModel, annotate_intuition
from repro.core.lod import LOD
from repro.core.multires import TransmissionSchedule
from repro.core.pipeline import build_sc
from repro.xmlkit.parser import parse_xml

XML = """<paper>
  <title>T</title>
  <abstract><paragraph>High level summary of the whole system design.</paragraph></abstract>
  <section>
    <title>Introduction</title>
    <paragraph>Opening paragraph stating the problem and approach.</paragraph>
    <paragraph>Second paragraph with additional motivating detail.</paragraph>
  </section>
  <section>
    <title>Methodology Details</title>
    <paragraph>Dense methodological material with derivations galore.</paragraph>
    <paragraph>More methodological material continuing the derivations.</paragraph>
  </section>
  <section>
    <title>References</title>
    <paragraph>Citation citation citation citation citation citation.</paragraph>
  </section>
</paper>"""


def annotated():
    sc = build_sc(parse_xml(XML))
    annotate_sc(sc)
    return sc


class TestIntuitionModel:
    def test_title_priors(self):
        model = IntuitionModel()
        assert model.title_prior("Introduction") > 1.0
        assert model.title_prior("Abstract") > model.title_prior("Introduction") - 0.5
        assert model.title_prior("References") < 1.0
        assert model.title_prior("Methodology Details") == 1.0

    def test_title_prior_case_insensitive(self):
        model = IntuitionModel()
        assert model.title_prior("INTRODUCTION") == model.title_prior("introduction")

    def test_custom_weights(self):
        model = IntuitionModel(title_weights={"methodology details": 3.0})
        assert model.title_prior("Methodology Details") == 3.0

    def test_lead_paragraph_boost(self):
        sc = annotated()
        model = IntuitionModel()
        intro = sc.unit("1")
        paragraphs = [u for u in intro.walk() if u.lod is LOD.PARAGRAPH]
        first, second = paragraphs[0], paragraphs[1]
        assert model.unit_prior(first) > model.unit_prior(second)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntuitionModel(lead_paragraph_boost=0.0)
        with pytest.raises(ValueError):
            IntuitionModel(depth_decay=1.5)


class TestAnnotateIntuition:
    def test_requires_base_measure(self):
        sc = build_sc(parse_xml(XML))
        with pytest.raises(ValueError, match="annotate_sc"):
            annotate_intuition(sc)

    def test_document_total_preserved(self):
        sc = annotated()
        annotate_intuition(sc)
        assert sc.root.content["intuition"] == pytest.approx(sc.root.content["ic"])

    def test_additive_rule_holds(self):
        sc = annotated()
        annotate_intuition(sc)
        for unit in sc.root.walk():
            if unit.children:
                total = unit.own_content["intuition"] + sum(
                    child.content["intuition"] for child in unit.children
                )
                assert unit.content["intuition"] == pytest.approx(total)

    def test_references_demoted(self):
        sc = annotated()
        annotate_intuition(sc)
        references = sc.unit("3")
        methodology = sc.unit("2")
        ratio_intuition = references.content["intuition"] / methodology.content["intuition"]
        ratio_ic = references.content["ic"] / methodology.content["ic"]
        assert ratio_intuition < ratio_ic

    def test_introduction_promoted(self):
        sc = annotated()
        annotate_intuition(sc)
        intro = sc.unit("1")
        assert intro.content["intuition"] / intro.content["ic"] > 1.0

    def test_schedulable(self):
        sc = annotated()
        name = annotate_intuition(sc)
        schedule = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure=name)
        values = [unit.content[name] for unit in schedule.units]
        assert values == sorted(values, reverse=True)
        assert sum(s.content for s in schedule.segments()) == pytest.approx(1.0)

    def test_changes_order_versus_plain_ic(self):
        sc = annotated()
        annotate_intuition(sc)
        by_ic = TransmissionSchedule(sc, lod=LOD.SECTION, measure="ic")
        by_intuition = TransmissionSchedule(sc, lod=LOD.SECTION, measure="intuition")
        labels_ic = [u.label for u in by_ic.units]
        labels_intuition = [u.label for u in by_intuition.units]
        assert labels_ic != labels_intuition
        # References drop toward the end under intuition ordering.
        assert labels_intuition.index("3") >= labels_ic.index("3")
