"""Tests for the summary-first baseline vs multi-resolution browsing."""

import random

import pytest

from repro.core.information import annotate_sc
from repro.core.pipeline import build_sc
from repro.core.summarize import (
    build_summary,
    multiresolution_browse,
    summary_first_browse,
)
from repro.transport.channel import WirelessChannel
from repro.xmlkit.parser import parse_xml


def paper_sc():
    paragraphs = []
    for index in range(8):
        paragraphs.append(
            f"<paragraph>Lead sentence number {index} summarizes this part. "
            f"The remainder of paragraph {index} elaborates at length with "
            f"supporting detail, derivations and measurements that pad the "
            f"body well beyond the lead-in sentence.</paragraph>"
        )
    body = "".join(paragraphs)
    sc = build_sc(
        parse_xml(
            f"<paper><title>Summary Study</title>"
            f"<section><title>One</title>{body[:len(body)//2]}</section>"
            f"<section><title>Two</title>{body[len(body)//2:]}</section></paper>"
        )
    )
    annotate_sc(sc)
    return sc


class TestBuildSummary:
    def test_lead_sentences_extracted(self):
        summary = build_summary(paper_sc())
        assert "Summary Study" in summary
        assert "Lead sentence number 0 summarizes this part." in summary
        assert "elaborates at length" not in summary

    def test_summary_much_smaller(self):
        sc = paper_sc()
        summary = build_summary(sc)
        assert len(summary.encode()) < sc.size_bytes() / 2

    def test_max_sentences(self):
        summary = build_summary(paper_sc(), max_sentences=3)
        assert summary.count("summarizes this part") <= 3


class TestSummaryFirstBrowse:
    def test_irrelevant_costs_summary_only(self):
        sc = paper_sc()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = summary_first_browse(sc, channel, relevant=False)
        assert result.document_result is None
        assert result.bytes_transferred_twice == 0
        assert result.response_time == result.summary_result.response_time

    def test_relevant_pays_summary_twice(self):
        """The paper's criticism: the full document is not a refinement
        of the summary, so relevant documents transfer summary bytes
        twice."""
        sc = paper_sc()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        result = summary_first_browse(sc, channel, relevant=True)
        assert result.document_result is not None
        assert result.bytes_transferred_twice > 0
        assert result.response_time > result.summary_result.response_time

    def test_multiresolution_relevant_single_phase(self):
        sc = paper_sc()
        channel_sf = WirelessChannel(alpha=0.0, rng=random.Random(1))
        summary_first = summary_first_browse(sc, channel_sf, relevant=True)
        channel_mr = WirelessChannel(alpha=0.0, rng=random.Random(1))
        multires = multiresolution_browse(sc, channel_mr, relevant=True)
        assert multires.success
        # One stream beats summary + full document.
        assert multires.response_time < summary_first.response_time

    def test_multiresolution_irrelevant_early_stop(self):
        sc = paper_sc()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(2))
        result = multiresolution_browse(sc, channel, relevant=False, threshold=0.3)
        assert result.terminated_early

    def test_lossy_channel_summary_first_still_works(self):
        sc = paper_sc()
        channel = WirelessChannel(alpha=0.25, rng=random.Random(3))
        result = summary_first_browse(sc, channel, relevant=True)
        assert result.summary_result.success
        assert result.document_result.success
