"""Tests for PMI collocation extraction."""

import pytest

from repro.text.phrases import JOINER, CollocationExtractor

# "information content" always adjacent; "packet"/"channel" scattered.
TEXT = (
    "The information content of each unit guides transmission. "
    "Information content determines ordering, and information content "
    "is additive. A packet crosses the channel; another channel carries "
    "a different packet. Sometimes a packet waits while the channel "
    "recovers. Units with high information content transmit first."
)


class TestScoring:
    def test_adjacent_pair_scores_high(self):
        extractor = CollocationExtractor(min_count=2)
        scores = extractor.score_bigrams(TEXT)
        info_content = next(
            (pair for pair in scores if pair[0].startswith("inform")), None
        )
        assert info_content is not None
        assert scores[info_content] > 0

    def test_rare_bigrams_skipped(self):
        extractor = CollocationExtractor(min_count=3)
        scores = extractor.score_bigrams("one two. three four. five six.")
        assert scores == {}

    def test_stopwords_break_adjacency(self):
        extractor = CollocationExtractor(min_count=1)
        scores = extractor.score_bigrams("packet of channel packet of channel")
        # "packet of" and "of channel" never form bigrams.
        assert all("of" not in pair for pair in scores)

    def test_empty_text(self):
        assert CollocationExtractor().score_bigrams("") == {}
        assert CollocationExtractor().collocations("the of and") == []


class TestCollocations:
    def test_information_content_detected(self):
        extractor = CollocationExtractor(min_count=2, min_pmi=0.5)
        pairs = extractor.collocations(TEXT)
        assert any(
            left.startswith("inform") and right.startswith("content")
            for left, right in pairs
        )

    def test_ordering_strongest_first(self):
        extractor = CollocationExtractor(min_count=2, min_pmi=-10.0)
        pairs = extractor.collocations(TEXT)
        scores = extractor.score_bigrams(TEXT)
        values = [scores[pair] for pair in pairs]
        assert values == sorted(values, reverse=True)


class TestPhraseCounts:
    def test_counts_match_occurrences(self):
        extractor = CollocationExtractor(min_count=2, min_pmi=0.5)
        counts = extractor.phrase_counts(TEXT)
        phrase = next((k for k in counts if k.startswith("inform")), None)
        assert phrase is not None
        assert JOINER in phrase
        assert counts[phrase] == 4  # "information content" appears 4×

    def test_augment_preserves_unigrams(self):
        extractor = CollocationExtractor(min_count=2, min_pmi=0.5)
        base = {"packet": 3}
        merged = extractor.augment_counts(TEXT, base)
        assert merged["packet"] == 3
        assert any(JOINER in key for key in merged)
        assert base == {"packet": 3}  # input untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            CollocationExtractor(min_count=0)
