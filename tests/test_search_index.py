"""Tests for the inverted index."""

import pytest

from repro.search.index import InvertedIndex


def build_index():
    index = InvertedIndex()
    index.add_document("d1", {"mobile": 3, "web": 2})
    index.add_document("d2", {"web": 5, "cache": 1})
    index.add_document("d3", {"disk": 4})
    return index


class TestAddRemove:
    def test_document_count(self):
        assert build_index().document_count == 3

    def test_readd_replaces(self):
        index = build_index()
        index.add_document("d1", {"fresh": 1})
        assert index.term_frequency("mobile", "d1") == 0
        assert index.term_frequency("fresh", "d1") == 1
        assert index.document_count == 3

    def test_remove(self):
        index = build_index()
        index.remove_document("d2")
        assert index.document_count == 2
        assert index.document_frequency("cache") == 0
        assert index.document_frequency("web") == 1

    def test_remove_unknown_noop(self):
        index = build_index()
        index.remove_document("ghost")
        assert index.document_count == 3

    def test_rejects_nonpositive_counts(self):
        index = InvertedIndex()
        with pytest.raises(ValueError):
            index.add_document("bad", {"term": 0})


class TestStatistics:
    def test_document_frequency(self):
        index = build_index()
        assert index.document_frequency("web") == 2
        assert index.document_frequency("disk") == 1
        assert index.document_frequency("absent") == 0

    def test_term_frequency(self):
        index = build_index()
        assert index.term_frequency("mobile", "d1") == 3
        assert index.term_frequency("mobile", "d3") == 0

    def test_document_length(self):
        index = build_index()
        assert index.document_length("d1") == 5
        assert index.document_length("nope") is None

    def test_vocabulary(self):
        assert build_index().vocabulary() == {"mobile", "web", "cache", "disk"}

    def test_document_frequencies_dict(self):
        df = build_index().document_frequencies()
        assert df["web"] == 2


class TestRetrieval:
    def test_postings_sorted(self):
        postings = build_index().postings("web")
        assert [p.document_id for p in postings] == ["d1", "d2"]
        assert [p.frequency for p in postings] == [2, 5]

    def test_candidates_or(self):
        index = build_index()
        assert index.candidates(["mobile", "disk"]) == {"d1", "d3"}

    def test_candidates_and(self):
        index = build_index()
        assert index.candidates_all(["mobile", "web"]) == {"d1"}
        assert index.candidates_all(["mobile", "disk"]) == set()
        assert index.candidates_all([]) == set()

    def test_contains(self):
        index = build_index()
        assert "d1" in index
        assert "dx" not in index
