"""Tests for the Huffman compression interceptor."""

import pytest
from hypothesis import given, strategies as st

from repro.transport.compress import (
    CompressionError,
    CompressionInterceptor,
    compress,
    decompress,
)


class TestRoundTrip:
    @given(st.binary(max_size=2000))
    def test_any_input_roundtrips(self, data):
        assert decompress(compress(data)) == data

    def test_empty(self):
        assert decompress(compress(b"")) == b""

    def test_single_symbol(self):
        assert decompress(compress(b"aaaaaaaa")) == b"aaaaaaaa"

    def test_two_symbols(self):
        data = b"ababababab" * 10
        assert decompress(compress(data)) == data

    def test_all_256_symbols(self):
        data = bytes(range(256)) * 3
        assert decompress(compress(data)) == data


class TestEffectiveness:
    def test_text_compresses(self):
        text = (b"the multi-resolution transmission paradigm transmits the "
                b"higher content-bearing portions earlier ") * 20
        blob = compress(text)
        assert len(blob) < len(text)

    def test_skewed_distribution_compresses_well(self):
        data = b"a" * 900 + b"b" * 90 + b"c" * 10
        blob = compress(data)
        # The 256-entry code-length header costs ~264 bytes, so the
        # win shows net of it.
        assert len(blob) < len(data) // 2

    def test_random_data_stored_raw(self):
        import random

        rng = random.Random(0)
        data = bytes(rng.randrange(256) for _ in range(500))
        blob = compress(data)
        # Raw fallback: bounded overhead, never a blow-up.
        assert len(blob) <= len(data) + 8


class TestErrors:
    def test_truncated_blob(self):
        with pytest.raises(CompressionError):
            decompress(b"HU")

    def test_bad_magic(self):
        with pytest.raises(CompressionError):
            decompress(b"XXXX\x00\x00\x00\x01a")

    def test_truncated_raw(self):
        blob = compress(bytes(range(256)))  # stored raw
        with pytest.raises(CompressionError):
            decompress(blob[:-5])


class TestInterceptor:
    def test_outbound_inbound_pair(self):
        interceptor = CompressionInterceptor()
        payload = b"compressible compressible compressible" * 10
        assert interceptor.inbound(interceptor.outbound(payload)) == payload

    def test_ratio_tracking(self):
        interceptor = CompressionInterceptor()
        assert interceptor.ratio == 1.0
        interceptor.outbound(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" * 32)
        assert interceptor.ratio < 1.0
