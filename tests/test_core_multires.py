"""Tests for multi-resolution transmission scheduling."""

import pytest

from repro.core.information import annotate_sc
from repro.core.lod import LOD
from repro.core.multires import (
    TransmissionSchedule,
    best_first_schedule,
    conventional_schedule,
)
from repro.core.pipeline import build_sc
from repro.core.query import Query
from repro.xmlkit.parser import parse_xml

XML = """<paper>
  <title>T</title>
  <section>
    <title>Alpha</title>
    <paragraph>web web web web web browsing mobile wireless packet unit</paragraph>
  </section>
  <section>
    <title>Beta</title>
    <paragraph>one two</paragraph>
  </section>
  <section>
    <title>Gamma</title>
    <paragraph>caching caching caching storage cache memory disk</paragraph>
  </section>
</paper>"""


def annotated_sc():
    sc = build_sc(parse_xml(XML))
    annotate_sc(sc, query=Query("caching storage"))
    return sc


class TestRanking:
    def test_document_lod_keeps_document_order(self):
        sc = annotated_sc()
        schedule = conventional_schedule(sc)
        assert schedule.units == [sc.root]

    def test_descending_measure_order(self):
        sc = annotated_sc()
        schedule = TransmissionSchedule(sc, lod=LOD.SECTION, measure="ic")
        values = [unit.content["ic"] for unit in schedule.units]
        assert values == sorted(values, reverse=True)

    def test_query_measure_changes_order(self):
        sc = annotated_sc()
        by_ic = TransmissionSchedule(sc, lod=LOD.SECTION, measure="ic")
        by_qic = TransmissionSchedule(sc, lod=LOD.SECTION, measure="qic")
        first_ic = by_ic.units[0].label
        first_qic = by_qic.units[0].label
        assert first_ic != first_qic
        assert first_qic == "3"  # the caching section wins under the query

    def test_missing_measure_raises(self):
        sc = build_sc(parse_xml(XML))  # not annotated
        with pytest.raises(ValueError, match="annotate_sc"):
            TransmissionSchedule(sc, lod=LOD.SECTION, measure="ic")

    def test_best_first_default_paragraph(self):
        sc = annotated_sc()
        schedule = best_first_schedule(sc)
        assert schedule.lod is LOD.PARAGRAPH


class TestStream:
    def test_payload_is_permutation_of_bytes(self):
        sc = annotated_sc()
        conventional = conventional_schedule(sc).payload()
        ranked = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic").payload()
        assert len(conventional) == len(ranked)
        assert sorted(conventional) == sorted(ranked)

    def test_segments_cover_total_bytes(self):
        sc = annotated_sc()
        schedule = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic")
        assert sum(s.size for s in schedule.segments()) == schedule.total_bytes()
        assert schedule.total_bytes() == sc.size_bytes()

    def test_segment_content_sums_to_one(self):
        sc = annotated_sc()
        schedule = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic")
        assert sum(s.content for s in schedule.segments()) == pytest.approx(1.0)


class TestContentPrefix:
    def test_zero_bytes(self):
        sc = annotated_sc()
        schedule = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic")
        assert schedule.content_prefix(0) == 0.0
        assert schedule.content_prefix(-5) == 0.0

    def test_full_stream_yields_total(self):
        sc = annotated_sc()
        schedule = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic")
        assert schedule.content_prefix(schedule.total_bytes()) == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        sc = annotated_sc()
        schedule = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic")
        total = schedule.total_bytes()
        previous = 0.0
        for cut in range(0, total + 1, 37):
            value = schedule.content_prefix(cut)
            assert value >= previous - 1e-12
            previous = value

    def test_linear_within_unit(self):
        sc = annotated_sc()
        schedule = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic")
        first = schedule.segments()[0]
        half = schedule.content_prefix(first.size // 2)
        assert half == pytest.approx(first.content * (first.size // 2) / first.size)

    def test_ranked_prefix_dominates_conventional(self):
        """The multi-resolution promise: at any cut, ranked order has
        delivered at least as much content as document order."""
        sc = annotated_sc()
        ranked = TransmissionSchedule(sc, lod=LOD.PARAGRAPH, measure="ic")
        sequential = conventional_schedule(sc)
        # Conventional schedule has one unit; its prefix content is
        # linear in bytes.  Compare at several cuts.
        total = ranked.total_bytes()
        for fraction in (0.1, 0.25, 0.5, 0.75):
            cut = int(total * fraction)
            assert ranked.content_prefix(cut) >= cut / total - 0.15
