"""End-to-end carousel delivery over real sockets.  Marked ``net``.

The acceptance criteria this file pins:

* a client selecting ``DeliveryMode.CAROUSEL`` (via the request or the
  settings object) subscribes to the shared broadcast channel and
  reconstructs bytes identical to a unicast fetch;
* the shared stream really is shared — N subscribers ride the same
  cycles instead of multiplying the server's airtime;
* a server without a carousel refuses carousel requests through the
  ordinary bad-parameter wire-error path;
* loss between server and subscriber (chaos proxy) costs extra
  cycles, never correctness.
"""

import asyncio
import random

import pytest

from repro.broadcast import CarouselScheduler
from repro.coding.packets import Packetizer
from repro.net import ChaosProxy, DocumentStore, NetClient, NetServer, WireError
from repro.net.loadgen import run_loadgen
from repro.prep.prepare import DocumentSender
from repro.prep.request import DeliveryMode, PrepRequest, TransferSettings

from tests.netutil import assert_no_leaked_tasks

pytestmark = [pytest.mark.net]

CAROUSEL = PrepRequest(delivery=DeliveryMode.CAROUSEL)


def make_store(size=2048, packet_size=64, seed=5):
    payload = bytes(random.Random(seed).randrange(256) for _ in range(size))
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=1.5))
    prepared = sender.prepare_raw("doc", payload)
    store = DocumentStore()
    store.add(prepared)
    return store, prepared, payload


def make_carousel(*prepared_docs):
    scheduler = CarouselScheduler()
    for hotness, prepared in enumerate(reversed(prepared_docs), start=1):
        scheduler.add_document(prepared, hotness)
    return scheduler


class TestCarouselFetch:
    def test_request_mode_decodes_byte_identical_to_unicast(self):
        store, prepared, payload = make_store()

        async def go():
            async with NetServer(store, carousel=make_carousel(prepared)) as server:
                client = NetClient(server.host, server.port)
                unicast = await client.fetch("doc")
                carousel = await client.fetch("doc", request=CAROUSEL)
            await assert_no_leaked_tasks()
            return unicast, carousel

        unicast, carousel = asyncio.run(go())
        assert unicast.status == "decoded"
        assert carousel.status == "decoded"
        assert carousel.payload == unicast.payload == payload

    def test_settings_mode_promotes_the_request(self):
        store, prepared, payload = make_store()

        async def go():
            async with NetServer(store, carousel=make_carousel(prepared)) as server:
                client = NetClient(
                    server.host,
                    server.port,
                    settings=TransferSettings(delivery=DeliveryMode.CAROUSEL),
                )
                return await client.fetch("doc")

        result = asyncio.run(go())
        assert result.status == "decoded"
        assert result.payload == payload

    def test_subscribers_share_one_stream(self):
        store, prepared, payload = make_store()

        async def go():
            async with NetServer(store, carousel=make_carousel(prepared)) as server:
                report, results = await run_loadgen(
                    server.host, server.port, "doc",
                    clients=8, request=CAROUSEL,
                )
                # Server-side teardown trails the clients' returns by a
                # few scheduler ticks; wait for the gauge to drain.
                for _ in range(100):
                    stats = server.stats_snapshot()
                    if stats["broadcast"]["subscribers"] == 0:
                        break
                    await asyncio.sleep(0.01)
            await assert_no_leaked_tasks()
            return report, results, stats

        report, results, stats = asyncio.run(go())
        assert report.decoded == 8
        assert all(r is not None and r.payload == payload for r in results)
        broadcast = stats["broadcast"]
        assert broadcast["enabled"] is True
        assert broadcast["subscriptions"] == 8
        assert broadcast["subscribers"] == 0      # all done and gone
        # One shared stream: eight clean-channel subscribers cost a
        # few cycles, nowhere near 8x a lone subscriber's airtime.
        assert broadcast["cycles_aired"] <= 8

    def test_lossy_subscription_still_decodes(self):
        store, prepared, payload = make_store()

        async def go():
            async with NetServer(store, carousel=make_carousel(prepared)) as server:
                async with ChaosProxy(
                    server.host,
                    server.port,
                    rng=random.Random(17),
                    corrupt=0.2,
                ) as proxy:
                    client = NetClient(proxy.host, proxy.port)
                    result = await client.fetch("doc", request=CAROUSEL)
                stats = server.stats_snapshot()
            await assert_no_leaked_tasks()
            return result, stats

        result, stats = asyncio.run(go())
        assert result.status == "decoded"
        assert result.payload == payload
        # Corruption costs cycles (rounds), never correctness.
        assert result.rounds >= 1


class TestCarouselRefusals:
    def test_unicast_only_server_refuses_carousel_requests(self):
        store, _prepared, _payload = make_store()

        async def go():
            async with NetServer(store) as server:
                client = NetClient(server.host, server.port)
                with pytest.raises(WireError, match="carousel"):
                    await client.fetch("doc", request=CAROUSEL)
                # The refusal is the bad-parameter path, not a hang:
                # the same client immediately fetches unicast.
                return await client.fetch("doc")

        result = asyncio.run(go())
        assert result.status == "decoded"

    def test_document_missing_from_carousel_is_a_wire_error(self):
        store, prepared, _payload = make_store()
        other = DocumentSender(
            Packetizer(packet_size=64, redundancy_ratio=1.5)
        ).prepare_raw("other", b"y" * 512)
        store.add(other)

        async def go():
            # Carousel airs only "doc"; "other" is served unicast-only.
            async with NetServer(store, carousel=make_carousel(prepared)) as server:
                client = NetClient(server.host, server.port)
                with pytest.raises(WireError, match="not on the carousel"):
                    await client.fetch("other", request=CAROUSEL)
                return await client.fetch("other")

        result = asyncio.run(go())
        assert result.status == "decoded"
