"""Tests for user profiles with relevance feedback."""

import pytest

from repro.search.profile import UserProfile


class TestFeedback:
    def test_accept_raises_interest(self):
        profile = UserProfile()
        profile.accept({"mobile": 3, "web": 1})
        assert profile.weight("mobile") > 0
        assert profile.weight("mobile") > profile.weight("web")

    def test_reject_lowers_interest(self):
        profile = UserProfile()
        profile.accept({"spam": 5})
        before = profile.weight("spam")
        profile.reject({"spam": 5})
        assert profile.weight("spam") < before

    def test_decay_fades_stale_interests(self):
        profile = UserProfile(decay=0.5)
        profile.accept({"old": 10})
        initial = profile.weight("old")
        for _ in range(10):
            profile.accept({"new": 10})
        assert profile.weight("old") < initial

    def test_empty_feedback_ignored(self):
        profile = UserProfile()
        profile.accept({})
        assert len(profile) == 0

    def test_negligible_weights_pruned(self):
        profile = UserProfile(decay=0.01)
        profile.accept({"term": 1})
        for _ in range(20):
            profile.accept({"other": 1})
        assert profile.weight("term") == 0.0


class TestUse:
    def test_top_terms_ordering(self):
        profile = UserProfile()
        for _ in range(3):
            profile.accept({"mobile": 5, "web": 1})
        top = profile.top_terms(limit=2)
        assert top[0][0] == "mobile"

    def test_standing_query(self):
        profile = UserProfile()
        profile.accept({"mobile": 4, "caching": 2})
        query = profile.standing_query()
        assert "mobile" in query

    def test_score_prefers_interesting_documents(self):
        profile = UserProfile()
        profile.accept({"mobile": 5, "web": 3})
        profile.reject({"sports": 5})
        interesting = profile.score({"mobile": 3, "web": 1})
        boring = profile.score({"sports": 4})
        assert interesting > 0 > boring

    def test_score_empty_document(self):
        assert UserProfile().score({}) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            UserProfile(learning_rate=0.0)
        with pytest.raises(ValueError):
            UserProfile(decay=1.5)
