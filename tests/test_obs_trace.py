"""Tests for the trace recorder, runtime switch, and scoped timers."""

import json

import pytest

from repro import obs
from repro.obs import trace as tr
from repro.obs.timing import _NOOP, timed


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test leaves the process-global switch off and empty."""
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)


class TestRecorder:
    def test_emit_records_monotonic_timestamps(self):
        recorder = tr.TraceRecorder()
        first = recorder.emit("a")
        second = recorder.emit("b")
        assert second.ts >= first.ts >= 0.0
        assert [e.event for e in recorder.events] == ["a", "b"]

    def test_transfer_scope_stamps_events(self):
        recorder = tr.TraceRecorder()
        tid = recorder.begin_transfer("doc", m=4, n=6)
        assert tid == "t1"
        recorder.emit(tr.FRAME_SENT, size=10)
        recorder.end_transfer(success=True, rounds=1, frames=5)
        recorder.emit("outside")
        transfers = [e.transfer for e in recorder.events]
        assert transfers == ["t1", "t1", "t1", None]
        assert recorder.new_transfer_id() == "t2"

    def test_reset(self):
        recorder = tr.TraceRecorder()
        recorder.begin_transfer("doc")
        recorder.reset()
        assert len(recorder) == 0
        assert recorder.current_transfer is None
        assert recorder.new_transfer_id() == "t1"

    def test_reserved_field_names_are_prefixed(self):
        recorder = tr.TraceRecorder()
        event = recorder.emit("weird", ts=123, transfer="zzz")
        record = event.to_dict()
        assert record["event"] == "weird"
        assert record["field_ts"] == 123
        assert record["field_transfer"] == "zzz"
        assert "transfer" not in record  # no ambient transfer scope


class TestJsonlRoundTrip:
    def test_export_and_load(self, tmp_path):
        recorder = tr.TraceRecorder()
        recorder.begin_transfer("doc", m=2, n=3)
        recorder.emit(tr.FRAME_SENT, size=260, outcome="ok")
        recorder.end_transfer(success=True, rounds=1, frames=3)
        path = tmp_path / "trace.jsonl"
        lines = recorder.export_jsonl(str(path), extra=[{"event": "custom"}])
        assert lines == 4
        events = tr.load_jsonl(str(path))
        assert [e["event"] for e in events] == [
            tr.TRANSFER_START,
            tr.FRAME_SENT,
            tr.TRANSFER_COMPLETE,
            "custom",
        ]
        assert events[1]["size"] == 260
        assert events[1]["transfer"] == "t1"

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            tr.load_jsonl(str(path))

    def test_load_rejects_non_objects(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="expected a JSON object"):
            tr.load_jsonl(str(path))

    def test_exported_lines_are_plain_json(self, tmp_path):
        recorder = tr.TraceRecorder()
        recorder.emit("x", value=1.5)
        path = tmp_path / "t.jsonl"
        recorder.export_jsonl(str(path))
        record = json.loads(path.read_text().strip())
        assert record["value"] == 1.5


class TestRuntimeSwitch:
    def test_disabled_by_default(self):
        assert not obs.OBS.enabled
        assert not obs.enabled()
        assert not bool(obs.OBS)

    def test_enable_disable_cycle(self):
        obs.enable()
        assert obs.enabled()
        obs.OBS.metrics.counter("x").inc()
        obs.OBS.trace.emit("e")
        obs.disable(reset=True)
        assert not obs.enabled()
        assert len(obs.OBS.metrics) == 0
        assert len(obs.OBS.trace) == 0

    def test_enable_fresh_clears_previous_state(self):
        obs.enable()
        obs.OBS.metrics.counter("x").inc()
        obs.enable(fresh=True)
        assert len(obs.OBS.metrics) == 0


class TestTimed:
    def test_disabled_returns_shared_noop(self):
        assert timed("anything") is _NOOP
        assert timed("something.else") is _NOOP  # same object every call

    def test_enabled_records_histogram_and_event(self):
        obs.enable()
        with timed("unit.work"):
            pass
        histogram = obs.OBS.metrics.get("unit.work.seconds")
        assert histogram is not None
        assert histogram.count == 1
        timer_events = [e for e in obs.OBS.trace.events if e.event == tr.TIMER]
        assert len(timer_events) == 1
        assert timer_events[0].fields["name"] == "unit.work"
        assert timer_events[0].fields["seconds"] >= 0.0

    def test_exception_inside_scope_still_propagates(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with timed("failing"):
                raise RuntimeError("boom")
        assert obs.OBS.metrics.get("failing.seconds").count == 1
