"""Stats exposition tests (net-marked): STATS frame + HTTP listener.

Covers the in-band admin frame (``fetch_stats`` against a live
server), the snapshot contents after real traffic, and the
``StatsHTTP`` routes driven by raw HTTP/1.0 requests.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.net import (
    DocumentStore,
    NetClient,
    NetServer,
    StatsHTTP,
    fetch_stats,
)
from repro.transport.cache import PacketCache

from tests.netutil import assert_no_leaked_tasks, make_prepared

pytestmark = pytest.mark.net


async def http_get(host, port, path):
    """One raw HTTP/1.0 GET; returns (status_line, body_str)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.0\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode(), body.decode()


class TestStatsFrame:
    def test_snapshot_after_traffic(self):
        async def go():
            prepared, _payload = make_prepared(size=2048, packet_size=64)
            store = DocumentStore()
            store.add(prepared)
            async with NetServer(store) as server:
                result = await NetClient(
                    server.host, server.port, cache=PacketCache()
                ).fetch("doc")
                assert result.status == "decoded"
                snapshot = await fetch_stats(server.host, server.port)

            assert snapshot["server"]["completed"] == 1
            assert snapshot["server"]["frames_sent"] > 0
            assert snapshot["server"]["stats_requests"] == 1
            assert snapshot["server"]["flight_dumps"] == 0
            slo = snapshot["slo"]
            assert slo["count"] == 1
            assert slo["errors"] == 0
            assert slo["error_budget_remaining"] == 1.0
            assert slo["p95_seconds"] > 0.0
            assert snapshot["flight"] == {"dumps": 0, "kept": 0, "recent": []}
            await assert_no_leaked_tasks()

        asyncio.run(go())

    def test_stats_connection_does_not_skew_slo(self):
        async def go():
            store = DocumentStore()
            async with NetServer(store) as server:
                first = await fetch_stats(server.host, server.port)
                second = await fetch_stats(server.host, server.port)
            assert first["slo"]["count"] == 0
            assert second["slo"]["count"] == 0
            assert second["server"]["stats_requests"] == 2
            assert second["server"]["completed"] == 0
            await assert_no_leaked_tasks()

        asyncio.run(go())

    def test_snapshot_is_json_safe(self):
        async def go():
            store = DocumentStore()
            async with NetServer(store) as server:
                snapshot = await fetch_stats(server.host, server.port)
            json.dumps(snapshot)  # would raise on non-JSON-safe values
            await assert_no_leaked_tasks()

        asyncio.run(go())


class TestStatsHTTP:
    def test_routes(self):
        async def go():
            prepared, _payload = make_prepared(size=2048, packet_size=64)
            store = DocumentStore()
            store.add(prepared)
            async with NetServer(store) as server:
                async with StatsHTTP(server.stats_snapshot) as http:
                    result = await NetClient(
                        server.host, server.port, cache=PacketCache()
                    ).fetch("doc")
                    assert result.status == "decoded"

                    status, body = await http_get(http.host, http.port, "/healthz")
                    assert status.endswith("200 OK")
                    assert body == "ok\n"

                    status, body = await http_get(
                        http.host, http.port, "/stats.json"
                    )
                    assert status.endswith("200 OK")
                    snapshot = json.loads(body)
                    assert snapshot["server"]["completed"] == 1

                    status, body = await http_get(http.host, http.port, "/metrics")
                    assert status.endswith("200 OK")
                    # Always-on counters flatten into samples even with
                    # telemetry disabled.
                    assert "repro_server_completed 1" in body
                    assert "repro_slo_error_budget_remaining 1" in body

                    status, _body = await http_get(http.host, http.port, "/nope")
                    assert status.endswith("404 Not Found")
            await assert_no_leaked_tasks()

        asyncio.run(go())

    def test_metrics_includes_obs_registry_when_enabled(self):
        async def go():
            prepared, _payload = make_prepared(size=2048, packet_size=64)
            store = DocumentStore()
            store.add(prepared)
            async with NetServer(store) as server:
                async with StatsHTTP(server.stats_snapshot) as http:
                    result = await NetClient(
                        server.host, server.port, cache=PacketCache()
                    ).fetch("doc")
                    assert result.status == "decoded"
                    _status, body = await http_get(
                        http.host, http.port, "/metrics"
                    )
                    assert "# TYPE repro_net_frames_sent counter" in body
                    assert "# TYPE repro_net_fetch_seconds histogram" in body
                    assert 'le="+Inf"' in body
            await assert_no_leaked_tasks()

        obs.enable()
        try:
            asyncio.run(go())
        finally:
            obs.disable(reset=True)

    def test_non_get_rejected(self):
        async def go():
            async with StatsHTTP(lambda: {"server": {}}) as http:
                reader, writer = await asyncio.open_connection(
                    http.host, http.port
                )
                writer.write(b"POST /metrics HTTP/1.0\r\n\r\n")
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                await writer.wait_closed()
                assert b"405" in raw.split(b"\r\n")[0]
            await assert_no_leaked_tasks()

        asyncio.run(go())
