"""Load-generation acceptance: 50 concurrent clients through chaos.

The issue's acceptance criterion: a loadgen run with 50 concurrent
clients through the ChaosProxy at alpha=0.2 completes with zero hung
tasks.  Marked ``net`` and ``slow``.
"""

import asyncio

import pytest

from repro.net import ChaosProxy, DocumentStore, NetServer, run_loadgen

from tests.netutil import assert_no_leaked_tasks, chaos_model, make_prepared

pytestmark = [pytest.mark.net, pytest.mark.slow]


def test_fifty_clients_through_chaos_at_alpha_02():
    async def go():
        prepared, payload = make_prepared(size=2048, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        async with NetServer(store) as server:
            async with ChaosProxy(
                server.host,
                server.port,
                # The paper's alpha=0.2 on live bytes; REPRO_CHAOS_MODEL
                # swaps the i.i.d. channel for a matched bursty one.
                model=chaos_model(0.2, 42),
            ) as proxy:
                report, results = await run_loadgen(
                    proxy.host, proxy.port, "doc", clients=50
                )
            assert proxy.stats["corrupted"] > 0

        assert report.clients == 50
        assert report.failed == 0
        assert report.succeeded == 50
        assert report.decoded == 50
        for result in results:
            assert result is not None
            assert result.payload == payload
        assert report.payload_bytes == 50 * len(payload)
        assert 0.0 < report.p50_seconds <= report.p90_seconds <= report.p99_seconds
        assert report.fetches_per_second > 0
        # Zero hung tasks after servers, proxy, and 50 clients wind down.
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_loadgen_counts_unreachable_server_as_failed():
    async def go():
        prepared, _ = make_prepared()
        store = DocumentStore()
        store.add(prepared)
        server = NetServer(store)
        await server.start()
        port = server.port
        await server.stop()
        report, results = await run_loadgen(
            "127.0.0.1", port, "doc", clients=3, max_reconnects=0
        )
        assert report.failed == 3
        assert report.succeeded == 0
        assert results == [None, None, None]
        await assert_no_leaked_tasks()

    asyncio.run(go())
