"""Tests for occurrence vectors and the paper's keyword-weight formula."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.text.vector import OccurrenceVector

count_dicts = st.dictionaries(
    st.text(alphabet="abcdefghij", min_size=1, max_size=5),
    st.integers(min_value=1, max_value=50),
    min_size=1,
    max_size=10,
)


class TestConstruction:
    def test_from_tokens(self):
        vector = OccurrenceVector.from_tokens(["web", "web", "mobile"])
        assert vector.count("web") == 2
        assert vector.count("mobile") == 1
        assert vector.count("absent") == 0

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            OccurrenceVector({"a": 0})
        with pytest.raises(ValueError):
            OccurrenceVector({"a": -3})

    def test_rejects_noninteger_counts(self):
        with pytest.raises(TypeError):
            OccurrenceVector({"a": 1.5})

    def test_rejects_unknown_norm(self):
        with pytest.raises(ValueError):
            OccurrenceVector({"a": 1}, norm="l3")


class TestNorms:
    def test_infinity_norm_is_max(self):
        vector = OccurrenceVector({"a": 3, "b": 7, "c": 1})
        assert vector.norm == 7.0

    def test_l1_norm(self):
        vector = OccurrenceVector({"a": 3, "b": 7}, norm="l1")
        assert vector.norm == 10.0

    def test_l2_norm(self):
        vector = OccurrenceVector({"a": 3, "b": 4}, norm="l2")
        assert vector.norm == 5.0


class TestWeights:
    def test_most_frequent_keyword_has_weight_one(self):
        """ω_a = 1 − log2(|a|/‖V‖∞) = 1 when |a| equals the max count."""
        vector = OccurrenceVector({"common": 8, "rare": 1})
        assert vector.weight("common") == pytest.approx(1.0)

    def test_rare_keywords_weigh_more(self):
        vector = OccurrenceVector({"common": 8, "rare": 1})
        assert vector.weight("rare") == pytest.approx(1.0 + math.log2(8))

    def test_absent_keyword_weight_zero(self):
        vector = OccurrenceVector({"a": 2})
        assert vector.weight("missing") == 0.0

    def test_formula_exactly(self):
        vector = OccurrenceVector({"a": 4, "b": 2, "c": 1})
        for keyword, count in vector.items():
            expected = 1.0 - math.log2(count / 4)
            assert vector.weight(keyword) == pytest.approx(expected)

    @given(count_dicts)
    def test_weights_at_least_one_for_present_keywords(self, counts):
        """With the infinity norm, |a|/‖V‖ ≤ 1 so every weight ≥ 1."""
        vector = OccurrenceVector(counts)
        for keyword in counts:
            assert vector.weight(keyword) >= 1.0 - 1e-12

    @given(count_dicts)
    def test_weighted_total_consistency(self, counts):
        vector = OccurrenceVector(counts)
        manual = sum(c * vector.weight(k) for k, c in counts.items())
        assert vector.weighted_total() == pytest.approx(manual)


class TestMappingProtocol:
    def test_len_iter_contains(self):
        vector = OccurrenceVector({"a": 1, "b": 2})
        assert len(vector) == 2
        assert set(vector) == {"a", "b"}
        assert "a" in vector
        assert "z" not in vector

    def test_total(self):
        assert OccurrenceVector({"a": 1, "b": 2}).total == 3

    def test_keywords_frozen(self):
        assert OccurrenceVector({"a": 1}).keywords() == frozenset({"a"})
