"""Shape tests for Experiments #1–#4 (the paper's qualitative claims).

These run scaled-down configurations (short sessions, few repetitions)
and assert the *trends* the paper reports, not absolute values.
"""

import pytest

from repro.core.lod import LOD
from repro.simulation.experiments import (
    experiment1,
    experiment2,
    experiment3,
    experiment4,
)
from repro.simulation.parameters import Parameters

QUICK = Parameters(documents_per_session=40, repetitions=3, max_rounds=15)


@pytest.fixture(scope="module")
def exp1_panels():
    return experiment1(
        QUICK,
        gammas=(1.1, 1.5, 2.0),
        alphas=(0.1, 0.5),
        irrelevant_fractions=(0.0, 0.5),
        seed=1,
    )


class TestExperiment1:
    def test_panel_keys(self, exp1_panels):
        assert set(exp1_panels) == {
            ("nocaching", 0.0),
            ("caching", 0.0),
            ("nocaching", 0.5),
            ("caching", 0.5),
        }

    def test_caching_dominates_at_high_alpha(self, exp1_panels):
        """Figure 4's headline: the cache matters most when α is high."""
        for irrelevant in (0.0, 0.5):
            nocaching = exp1_panels[("nocaching", irrelevant)][0.5]
            caching = exp1_panels[("caching", irrelevant)][0.5]
            for nc_point, c_point in zip(nocaching, caching):
                assert c_point.mean <= nc_point.mean

    def test_higher_alpha_is_slower(self, exp1_panels):
        curves = exp1_panels[("caching", 0.0)]
        for low, high in zip(curves[0.1], curves[0.5]):
            assert high.mean > low.mean

    def test_nocaching_improves_with_gamma_at_high_alpha(self, exp1_panels):
        points = exp1_panels[("nocaching", 0.0)][0.5]
        assert points[-1].mean < points[0].mean

    def test_gamma15_reasonable_for_low_alpha(self, exp1_panels):
        """The paper adopts γ = 1.5 as the default: at α = 0.1 the γ
        sweep is nearly flat beyond 1.5 (no stall pressure)."""
        points = exp1_panels[("caching", 0.0)][0.1]
        by_gamma = {p.x: p.mean for p in points}
        assert by_gamma[2.0] == pytest.approx(by_gamma[1.5], rel=0.15)


class TestExperiment2:
    @pytest.fixture(scope="class")
    def panels(self):
        return experiment2(
            QUICK, fractions=(0.0, 0.5, 1.0), alphas=(0.1,), seed=2
        )

    def test_response_decreases_with_irrelevance(self, panels):
        points = panels[("vary_i", "caching")][0.1]
        means = [p.mean for p in points]
        assert means[0] > means[-1]

    def test_roughly_linear_in_i(self, panels):
        """The paper: response time is a weighted average of relevant
        and irrelevant documents, hence linear in I."""
        points = panels[("vary_i", "caching")][0.1]
        by_x = {p.x: p.mean for p in points}
        midpoint = (by_x[0.0] + by_x[1.0]) / 2
        assert by_x[0.5] == pytest.approx(midpoint, rel=0.15)

    def test_response_increases_with_f(self, panels):
        points = panels[("vary_f", "caching")][0.1]
        means = [p.mean for p in points]
        assert means[0] < means[-1]

    def test_f_zero_cheapest(self, panels):
        points = panels[("vary_f", "caching")][0.1]
        assert points[0].x == 0.0
        assert points[0].mean == min(p.mean for p in points)


class TestExperiment3:
    @pytest.fixture(scope="class")
    def results(self):
        return experiment3(
            QUICK, thresholds=(0.1, 0.3, 0.5), alphas=(0.1,), seed=3
        )

    def test_document_lod_baseline_is_one(self, results):
        for point in results[0.1][LOD.DOCUMENT]:
            assert point.mean == pytest.approx(1.0)

    def test_paragraph_lod_best(self, results):
        """Figure 6: paragraph LOD gives the largest improvement."""
        per_lod = results[0.1]
        for index in range(3):
            paragraph = per_lod[LOD.PARAGRAPH][index].mean
            section = per_lod[LOD.SECTION][index].mean
            assert paragraph >= section >= 0.95

    def test_paper_magnitude_at_low_f(self, results):
        """At F ∈ [0.1, 0.3] the paragraph improvement is ≈ 1.3–1.5."""
        paragraph = results[0.1][LOD.PARAGRAPH]
        by_f = {p.x: p.mean for p in paragraph}
        assert 1.2 <= by_f[0.1] <= 1.7
        assert 1.15 <= by_f[0.3] <= 1.6


class TestExperiment4:
    @pytest.fixture(scope="class")
    def results(self):
        return experiment4(
            QUICK, thresholds=(0.1, 0.2), deltas=(2.0, 5.0), seed=4
        )

    def test_keyed_by_delta(self, results):
        assert set(results) == {2.0, 5.0}

    def test_higher_skew_more_improvement(self, results):
        """Figure 7: the higher the skew factor δ, the more the
        multi-resolution approach gains."""
        low = results[2.0][LOD.PARAGRAPH][0].mean
        high = results[5.0][LOD.PARAGRAPH][0].mean
        assert high > low

    def test_document_baseline_unaffected(self, results):
        for delta in (2.0, 5.0):
            for point in results[delta][LOD.DOCUMENT]:
                assert point.mean == pytest.approx(1.0)
