"""Networked acceptance for the preparation service (issue criterion).

A ``NetServer`` fronted directly by a :class:`PreparationService`:
50 concurrent loadgen clients sharing one request must trigger exactly
one pipeline run and one cooked build (``prep.misses`` tier=cooked
== 1, ``prep.hits`` >= 49); per-request ``prep`` parameters in HELLO
change what is served; junk parameters come back as a wire error, not
a hang.  Marked ``net``.
"""

import asyncio

import pytest

import repro.obs as obs
from repro.net import NetClient, NetServer, WireError, run_loadgen
from repro.prep import PrepRequest, PreparationService

from tests.netutil import assert_no_leaked_tasks
from tests.test_prep_service import OTHER, PAPER, make_service

pytestmark = [pytest.mark.net]


@pytest.fixture
def telemetry():
    obs.enable()
    yield obs.OBS
    obs.disable(reset=True)


def make_store():
    service, pipeline = make_service()
    service.add_document("doc", PAPER)
    service.add_document("other", OTHER)
    return service, pipeline


class TestLoadgenSharesOneBuild:
    def test_fifty_clients_one_pipeline_run(self, telemetry):
        service, pipeline = make_store()

        async def go():
            async with NetServer(service) as server:
                report, results = await run_loadgen(
                    server.host,
                    server.port,
                    "doc",
                    clients=50,
                    request=PrepRequest(query="mobile web", packet_size=64),
                )
            await assert_no_leaked_tasks()
            return report, results

        report, results = asyncio.run(go())
        assert report.succeeded == 50
        assert report.failed == 0
        payloads = {result.payload for result in results}
        assert len(payloads) == 1  # every client decoded the same bytes

        # The acceptance criterion: one cook, everyone else hits.
        assert pipeline.runs == 1
        assert service.stats["cooked_misses"] == 1
        assert service.stats["cooked_hits"] >= 49
        misses = obs.OBS.metrics.get("prep.misses")
        hits = obs.OBS.metrics.get("prep.hits")
        assert misses.labels(tier="cooked").value == 1
        assert hits.labels(tier="cooked").value >= 49


class TestPerRequestParameters:
    def test_prep_field_changes_served_bytes(self):
        service, _ = make_store()

        async def fetch(request):
            async with NetServer(service) as server:
                client = NetClient(server.host, server.port, request=request)
                return await client.fetch("doc")

        async def go():
            everything = await fetch(PrepRequest(query="caching packets"))
            headline = await fetch(
                PrepRequest(query="caching packets", lod="section")
            )
            await assert_no_leaked_tasks()
            return everything, headline

        everything, headline = asyncio.run(go())
        # Same document, but the section-level schedule orders (and
        # frames) the stream differently than the paragraph-level one.
        assert everything.payload != headline.payload
        # Distinct parameter sets are distinct cooked-tier entries.
        assert service.stats["cooked_misses"] == 2

    def test_absent_prep_field_uses_server_default(self):
        service, _ = make_store()
        service.default_request = PrepRequest(query="mobile web")

        async def go():
            async with NetServer(service) as server:
                no_field = NetClient(server.host, server.port)
                explicit = NetClient(
                    server.host, server.port, request=PrepRequest(query="mobile web")
                )
                first = await no_field.fetch("doc")
                second = await explicit.fetch("doc")
            await assert_no_leaked_tasks()
            return first, second

        first, second = asyncio.run(go())
        assert first.payload == second.payload
        assert service.stats["cooked_misses"] == 1
        assert service.stats["cooked_hits"] == 1

    def test_bad_prep_parameters_is_a_clean_wire_error(self):
        service, _ = make_store()

        async def go():
            async with NetServer(service) as server:
                client = NetClient(
                    server.host,
                    server.port,
                    # qic needs a query; the server rejects the combination.
                    request=PrepRequest(measure="qic"),
                )
                with pytest.raises(WireError, match="bad prep parameters"):
                    await client.fetch("doc")
                assert server.stats["errors"] >= 1
                # The connection slot is released; a good fetch still works.
                ok = NetClient(server.host, server.port)
                result = await ok.fetch("doc")
                assert result.payload
            await assert_no_leaked_tasks()

        asyncio.run(go())


class TestCrossWorkerParity:
    """N worker processes × M driver processes: still exactly one cook.

    The multi-worker acceptance criterion of the disk-tier issue: the
    shared :class:`~repro.prep.diskstore.DiskCookedStore` plus its
    per-bundle file locks must make a fleet behave like one process —
    a single pipeline run cluster-wide and byte-identical decodes on
    every client, whichever worker served it.
    """

    def test_workers_times_clients_share_one_cook(self, tmp_path):
        from repro.net import run_loadgen_mp
        from repro.net.workers import WorkerConfig, WorkerPool

        request = PrepRequest(query="mobile web", packet_size=64)
        config = WorkerConfig(
            documents=(("doc", PAPER, False),),
            default_request=request,
            disk_root=str(tmp_path / "cache"),
            round_timeout=5.0,
        )
        with WorkerPool(config, workers=3) as pool:
            report, outcomes = run_loadgen_mp(
                pool.host,
                pool.port,
                "doc",
                clients=24,
                processes=2,
                request=request,
            )
            assert report.succeeded == 24
            assert report.failed == 0
            # Byte identity across worker and driver processes alike:
            # one sha256 for every successful payload.
            digests = {outcome.payload_sha256 for outcome in outcomes}
            assert len(digests) == 1 and "" not in digests

            # Server-side bookkeeping trails client-side success (a
            # handler only notices the departed client on its next
            # socket op), so poll until the fleet has accounted all 24
            # before reading the merged counters.  completed vs
            # client_gone is itself a shutdown race; the sum is stable.
            import time as _time

            deadline = _time.monotonic() + 10.0
            while True:
                merged = pool.stats_snapshot(timeout=10.0)
                served = (
                    merged["server"]["completed"]
                    + merged["server"]["client_gone"]
                )
                if served >= 24 or _time.monotonic() >= deadline:
                    break
                _time.sleep(0.05)
            assert merged["prep"]["cooked_misses"] == 1
            assert merged["prep"]["disk_writes"] == 1
            assert served == 24
            assert len(merged["workers"]) == 3
        # Leak check: the pool reaped every worker process.
        assert pool.alive() == 0
        for pid in pool.pids:
            assert not any(
                process.pid == pid and process.is_alive()
                for process in pool._processes
            )
