"""Tests for document clusters and cluster prefetching."""

import random

import pytest

from repro.coding.packets import Packetizer
from repro.core.cluster import ClusterError, DocumentCluster
from repro.core.pipeline import build_sc
from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.prefetch import Prefetcher
from repro.transport.sender import DocumentSender
from repro.xmlkit.parser import parse_xml


def make_sc(words: str, repeats: int = 5):
    body = " ".join([words] * repeats)
    return build_sc(
        parse_xml(
            f"<paper><title>Page</title><section><title>S</title>"
            f"<paragraph>{body}</paragraph></section></paper>"
        )
    )


def build_cluster():
    """index → {overview, details}; details → appendix; orphan floats."""
    cluster = DocumentCluster(entry_page="index")
    cluster.add_page("index", make_sc("mobile web browsing portal entry"), links=["overview", "details"])
    cluster.add_page("overview", make_sc("overview of the architecture and design decisions", repeats=8))
    cluster.add_page("details", make_sc("detailed treatment", repeats=3), links=["appendix"])
    cluster.add_page("appendix", make_sc("appendix tables", repeats=2))
    cluster.add_page("orphan", make_sc("unlinked page"))
    return cluster


class TestStructure:
    def test_membership(self):
        cluster = build_cluster()
        assert "index" in cluster
        assert len(cluster) == 5

    def test_unknown_page_raises(self):
        cluster = build_cluster()
        with pytest.raises(ClusterError):
            cluster.page("nope")
        with pytest.raises(ClusterError):
            cluster.links("nope")

    def test_dangling_links_skipped(self):
        cluster = DocumentCluster(entry_page="a")
        cluster.add_page("a", make_sc("words"), links=["ghost", "b"])
        cluster.add_page("b", make_sc("more words"))
        assert cluster.links("a") == ["b"]

    def test_distances(self):
        cluster = build_cluster()
        distances = cluster.distances()
        assert distances == {"index": 0, "overview": 1, "details": 1, "appendix": 2}

    def test_orphans_detected(self):
        assert build_cluster().unreachable_pages() == {"orphan"}


class TestScoring:
    def test_scores_normalized_over_reachable(self):
        cluster = build_cluster()
        scores = cluster.content_scores()
        assert set(scores) == {"index", "overview", "details", "appendix"}
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_distance_decay(self):
        """The appendix has less mass AND more hops: lowest score."""
        cluster = build_cluster()
        scores = cluster.content_scores()
        assert scores["appendix"] == min(
            scores[p] for p in ("overview", "details", "appendix")
        )

    def test_bigger_pages_score_higher_at_same_distance(self):
        cluster = build_cluster()
        scores = cluster.content_scores()
        assert scores["overview"] > scores["details"]

    def test_prefetch_order_excludes_origin(self):
        cluster = build_cluster()
        order = cluster.prefetch_order()
        assert "index" not in order
        assert order[0] == "overview"

    def test_origin_override(self):
        cluster = build_cluster()
        order = cluster.prefetch_order(origin="details")
        assert order == ["appendix"]


class TestPrefetchIntegration:
    def test_candidates_ranked_and_fetchable(self):
        cluster = build_cluster()
        sender = DocumentSender(Packetizer(packet_size=64, redundancy_ratio=1.5))
        candidates = cluster.prefetch_candidates(sender)
        assert [c.prepared.document_id for c in candidates][:1] == ["overview"]
        scores = [c.score for c in candidates]
        assert scores == sorted(scores, reverse=True)

        cache = PacketCache()
        channel = WirelessChannel(alpha=0.1, rng=random.Random(0))
        report = Prefetcher(cache).run_idle_window(candidates, channel, 120.0)
        assert "overview" in report.fetched

    def test_prefetched_page_browses_free(self):
        from repro.transport.session import transfer_document

        cluster = build_cluster()
        sender = DocumentSender(Packetizer(packet_size=64, redundancy_ratio=1.5))
        candidates = cluster.prefetch_candidates(sender)
        cache = PacketCache()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(1))
        Prefetcher(cache).run_idle_window(candidates, channel, 300.0)

        overview = next(c.prepared for c in candidates if c.prepared.document_id == "overview")
        result = transfer_document(overview, channel, cache=cache)
        assert result.success
        assert result.frames_sent == 0
