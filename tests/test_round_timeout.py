"""The shared round-timeout constant and driver abort semantics.

One ``DEFAULT_ROUND_TIMEOUT`` lives in :mod:`repro.protocol`; the
simulated drivers guard rounds in channel time, the net layer in
wall-clock, and every driver funnels expiry through
``TransferEngine.abort()``.  Tier-1: no sockets, no sleeps.
"""

import inspect
import random

import pytest

import repro
from repro.protocol import (
    DEFAULT_ROUND_TIMEOUT,
    Failed,
    TransferEngine,
)
from repro.protocol.engine import DEFAULT_ROUND_TIMEOUT as ENGINE_CONSTANT
from repro.simulation.runner import simulate_transfer
from repro.transport.channel import WirelessChannel
from repro.transport.sender import DocumentSender
from repro.transport.session import transfer_document
from repro.coding.packets import Packetizer


def prepared_doc(payload=b"x" * 1024, packet_size=64, gamma=1.5):
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=gamma))
    return sender.prepare_raw("doc", payload)


class TestConstant:
    def test_single_source_of_truth(self):
        assert DEFAULT_ROUND_TIMEOUT is ENGINE_CONSTANT
        assert repro.DEFAULT_ROUND_TIMEOUT is ENGINE_CONSTANT

    def test_value_clears_the_longest_legal_round(self):
        # The slowest simulated round is 255 frames at 19.2 kbps
        # (~27.6 s of channel time); the default must never clip it.
        worst_round = 255 * (258 * 8) / (19.2 * 1000)
        assert DEFAULT_ROUND_TIMEOUT > worst_round

    @pytest.mark.parametrize(
        "func, parameter",
        [
            (transfer_document, "round_timeout"),
            (simulate_transfer, "round_timeout"),
        ],
    )
    def test_driver_defaults(self, func, parameter):
        signature = inspect.signature(func)
        assert signature.parameters[parameter].default is DEFAULT_ROUND_TIMEOUT

    def test_prototype_and_net_defaults(self):
        from repro.net.client import NetClient
        from repro.net.server import NetServer
        from repro.prototype.client import SequenceManager

        for cls in (NetClient, NetServer, SequenceManager):
            signature = inspect.signature(cls.__init__)
            assert (
                signature.parameters["round_timeout"].default
                is DEFAULT_ROUND_TIMEOUT
            ), cls

    def test_non_positive_timeout_rejected(self):
        prepared = prepared_doc()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        with pytest.raises(ValueError):
            transfer_document(prepared, channel, round_timeout=0.0)
        from repro.net.client import NetClient
        from repro.net.server import NetServer

        with pytest.raises(ValueError):
            NetClient("127.0.0.1", 1, round_timeout=-1.0)
        with pytest.raises(ValueError):
            NetServer(object(), round_timeout=0.0)


class TestAbort:
    def test_abort_fails_the_transfer(self):
        engine = TransferEngine(4, 6)
        engine.start()
        terminal = engine.abort()
        assert isinstance(terminal, Failed)
        assert terminal.round == 1
        assert engine.finished is terminal

    def test_abort_counts_intact(self):
        engine = TransferEngine(4, 6)
        engine.start()
        engine.on_frame_intact(0)
        engine.on_frame_intact(3)
        terminal = engine.abort()
        assert terminal == Failed(1, 2)

    def test_abort_after_terminal_is_idempotent(self):
        engine = TransferEngine(2, 3)
        engine.start()
        for sequence in range(2):
            terminal = engine.on_frame_intact(sequence)
        assert terminal is not None  # decoded
        assert engine.abort() is terminal

    def test_abort_emits_stall_then_failure_telemetry(self):
        from repro import obs
        from repro.protocol import TelemetryBridge

        obs.enable()
        try:
            bridge = TelemetryBridge("transfer")
            engine = TransferEngine(4, 6, document_id="d", bridge=bridge)
            engine.start()
            engine.abort()
            events = [record.event for record in obs.OBS.trace.events]
        finally:
            obs.disable(reset=True)
        assert "round_stalled" in events


class TestSessionTimeout:
    def test_session_aborts_on_expired_round(self):
        # alpha=1 corrupts every frame: without a timeout the session
        # would stall for max_rounds; a timeout shorter than one round
        # of channel time fails it on the first stall.
        prepared = prepared_doc()
        channel = WirelessChannel(alpha=1.0, rng=random.Random(7))
        result = transfer_document(
            prepared, channel, max_rounds=50, round_timeout=1e-6
        )
        assert not result.success
        assert result.rounds == 1

    def test_session_default_is_not_hit(self):
        prepared = prepared_doc()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(7))
        result = transfer_document(prepared, channel)
        assert result.success

    def test_runner_aborts_on_expired_round(self):
        result = simulate_transfer(
            m=8,
            n=12,
            alpha=1.0,
            packet_time=0.1,
            rng=random.Random(3),
            caching=True,
            max_rounds=50,
            round_timeout=1e-6,
        )
        assert not result.success
        assert result.rounds == 1

    def test_runner_matches_session_when_timeout_is_default(self):
        result = simulate_transfer(
            m=8,
            n=12,
            alpha=0.2,
            packet_time=0.1,
            rng=random.Random(3),
            caching=True,
        )
        assert result.success
