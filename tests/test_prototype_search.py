"""Tests for the prototype's search servant + end-to-end search→browse."""

import random

import pytest

from repro.prototype import (
    DatabaseGateway,
    DocumentTransmitterService,
    MobileBrowser,
    ObjectRequestBroker,
    SearchService,
)
from repro.transport import PacketCache, WirelessChannel

CORPUS = {
    "browsing": (
        "<paper><title>Mobile Browsing</title><section><title>Main</title>"
        "<paragraph>Mobile web browsing over weak wireless channels benefits "
        "from content ordering and fault tolerant packet coding.</paragraph>"
        "</section></paper>"
    ),
    "caching": (
        "<paper><title>Cache Design</title><section><title>Main</title>"
        "<paragraph>Cache management for mobile databases keeps hot items "
        "in client storage for disconnected operation.</paragraph>"
        "</section></paper>"
    ),
    "energy": (
        "<paper><title>Energy</title><section><title>Main</title>"
        "<paragraph>Battery energy budgets constrain portable computing "
        "through disk spin down policies.</paragraph></section></paper>"
    ),
}


def build_stack(alpha=0.0, seed=0):
    gateway = DatabaseGateway()
    service = SearchService(gateway)
    for doc_id, source in CORPUS.items():
        gateway.put(doc_id, source)
        service.index(doc_id)
    broker = ObjectRequestBroker()
    broker.register("transmitter", DocumentTransmitterService(gateway))
    broker.register("search", service)
    channel = WirelessChannel(alpha=alpha, rng=random.Random(seed))
    browser = MobileBrowser(broker, channel, cache=PacketCache())
    return browser, service


class TestSearchService:
    def test_corpus_size(self):
        _browser, service = build_stack()
        assert service.corpus_size == 3

    def test_ranked_results_with_snippets(self):
        _browser, service = build_stack()
        results = service.search("mobile web browsing")
        assert results[0].document_id == "browsing"
        assert results[0].snippet
        assert results[0].size_bytes > 0
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_snippet_biased_to_query(self):
        _browser, service = build_stack()
        (top, *_rest) = service.search("cache management")
        assert "cache" in top.snippet.lower()

    def test_boolean_search(self):
        _browser, service = build_stack()
        results = service.search_boolean("mobile AND NOT database")
        assert [r.document_id for r in results] == ["browsing"]

    def test_no_results(self):
        _browser, service = build_stack()
        assert service.search("nonexistent gibberish") == []

    def test_index_all(self):
        gateway = DatabaseGateway()
        for doc_id, source in CORPUS.items():
            gateway.put(doc_id, source)
        service = SearchService(gateway)
        service.index_all(CORPUS)
        assert service.corpus_size == 3


class TestSearchThenBrowse:
    def test_full_loop_through_broker(self):
        browser, _service = build_stack(alpha=0.1, seed=3)
        results = browser.search("mobile web browsing")
        assert results
        top = results[0]
        outcome = browser.browse(
            top.document_id, query_text="mobile web browsing", gamma=2.0
        )
        assert outcome.success
        assert "browsing" in outcome.document_text.lower()

    def test_search_via_broker_counts_invocations(self):
        browser, _service = build_stack()
        before = browser.broker.invocations
        browser.search("energy")
        assert browser.broker.invocations == before + 1
