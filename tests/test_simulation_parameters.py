"""Tests for the Table 2 parameter record."""

import pytest

from repro.simulation.parameters import Parameters, from_environment, quick, table2_defaults


class TestTable2Defaults:
    def test_values(self):
        p = table2_defaults()
        assert p.sp == 256
        assert p.sd == 10240
        assert p.overhead == 4
        assert p.bandwidth_kbps == 19.2
        assert p.delta == 3.0
        assert p.irrelevant == 0.5
        assert p.threshold == 0.5
        assert p.alpha == 0.1
        assert p.gamma == 1.5
        assert p.documents_per_session == 200
        assert p.repetitions == 50

    def test_derived_m_n(self):
        p = table2_defaults()
        assert p.m == 40
        assert p.n == 60

    def test_paragraph_geometry(self):
        p = table2_defaults()
        assert p.sections == 5
        assert p.paragraphs == 20

    def test_packet_time(self):
        p = table2_defaults()
        assert p.packet_time == pytest.approx((256 + 4) * 8 / 19200)


class TestDerivations:
    def test_m_rounds_up(self):
        assert Parameters(sd=10241).m == 41

    def test_n_clamped_to_field(self):
        assert Parameters(sd=51200, gamma=1.5).n == 255

    def test_n_at_least_m(self):
        p = Parameters(gamma=1.0)
        assert p.n == p.m

    def test_replace(self):
        p = table2_defaults().replace(alpha=0.3)
        assert p.alpha == 0.3
        assert p.gamma == 1.5  # untouched
        assert table2_defaults().alpha == 0.1  # original frozen


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 1.5},
            {"gamma": 0.5},
            {"delta": 0.5},
            {"sp": 0},
            {"irrelevant": -0.1},
            {"threshold": 1.5},
            {"documents_per_session": 0},
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            Parameters(**kwargs)

    def test_frozen(self):
        p = table2_defaults()
        with pytest.raises(Exception):
            p.alpha = 0.9


class TestScaledConfigs:
    def test_quick_is_smaller(self):
        p = quick()
        assert p.documents_per_session < 200
        assert p.repetitions < 50
        # Everything else stays at Table 2 values.
        assert p.m == 40 and p.n == 60

    def test_from_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert from_environment().documents_per_session < 200
        monkeypatch.setenv("REPRO_FULL", "1")
        assert from_environment().documents_per_session == 200
