"""Tests for the Gilbert–Elliott bursty channel."""

import random

import pytest

from repro.transport.gilbert import GilbertElliottChannel, matched_to_alpha


class TestStationaryBehaviour:
    def test_stationary_alpha_formula(self):
        channel = GilbertElliottChannel(
            good_alpha=0.0, bad_alpha=1.0, good_to_bad=0.1, bad_to_good=0.4
        )
        assert channel.stationary_bad_probability == pytest.approx(0.2)
        assert channel.alpha == pytest.approx(0.2)

    def test_observed_rate_converges(self):
        channel = GilbertElliottChannel(
            good_alpha=0.02,
            bad_alpha=0.95,
            good_to_bad=0.05,
            bad_to_good=0.3,
            rng=random.Random(0),
        )
        for _ in range(30_000):
            channel.send(b"x" * 50)
        assert channel.observed_corruption_rate() == pytest.approx(
            channel.alpha, abs=0.02
        )

    def test_bad_state_fraction_converges(self):
        channel = GilbertElliottChannel(
            good_to_bad=0.1, bad_to_good=0.4, rng=random.Random(1)
        )
        for _ in range(30_000):
            channel.send(b"x")
        fraction = channel.bad_state_frames / channel.frames_sent
        assert fraction == pytest.approx(channel.stationary_bad_probability, abs=0.02)


class TestBurstiness:
    def test_errors_cluster(self):
        """Runs of consecutive corruptions are longer than i.i.d."""
        rng = random.Random(2)
        channel = GilbertElliottChannel(
            good_alpha=0.0,
            bad_alpha=1.0,
            good_to_bad=0.02,
            bad_to_good=0.2,
            rng=rng,
        )
        runs = []
        current = 0
        for _ in range(20_000):
            if channel.send(b"x").corrupted:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        mean_run = sum(runs) / len(runs)
        # i.i.d. at the same stationary alpha (~0.09) would give runs
        # of mean 1/(1-alpha) ≈ 1.1; the burst channel gives ≈ 5.
        assert mean_run > 3.0

    def test_expected_burst_length(self):
        channel = GilbertElliottChannel(bad_to_good=0.25)
        assert channel.expected_burst_length() == pytest.approx(4.0)


class TestMatching:
    def test_matched_alpha(self):
        channel = matched_to_alpha(0.3, burst_length=5.0, rng=random.Random(3))
        assert channel.alpha == pytest.approx(0.3, abs=1e-9)
        for _ in range(30_000):
            channel.send(b"x")
        assert channel.observed_corruption_rate() == pytest.approx(0.3, abs=0.02)

    def test_matched_burst_length(self):
        channel = matched_to_alpha(0.3, burst_length=8.0)
        assert channel.expected_burst_length() == pytest.approx(8.0)

    def test_alpha_out_of_achievable_range(self):
        with pytest.raises(ValueError):
            matched_to_alpha(0.01, good_alpha=0.02)
        with pytest.raises(ValueError):
            matched_to_alpha(0.99, bad_alpha=0.95)

    def test_too_short_burst_rejected(self):
        with pytest.raises(ValueError):
            matched_to_alpha(0.9, burst_length=1.0, bad_alpha=0.95, good_alpha=0.0)


class TestProtocolInteraction:
    def test_transfer_still_recovers(self):
        from repro.coding.packets import Packetizer
        from repro.transport.cache import PacketCache
        from repro.transport.sender import DocumentSender
        from repro.transport.session import transfer_document

        payload = b"q" * 5120
        sender = DocumentSender(Packetizer(packet_size=256, redundancy_ratio=2.0))
        prepared = sender.prepare_raw("doc", payload)
        channel = matched_to_alpha(0.2, burst_length=6.0, rng=random.Random(4))
        result = transfer_document(prepared, channel, cache=PacketCache(), max_rounds=100)
        assert result.success
        assert result.payload == payload

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(good_to_bad=0.0, bad_to_good=0.0)
        with pytest.raises(ValueError):
            GilbertElliottChannel(bad_alpha=1.5)
