"""Wire-codec tests: socket-free, tier-1.

The envelope grammar is exercised against in-memory
``asyncio.StreamReader`` objects — no listening sockets, so these run
in the default (unmarked) suite.
"""

import asyncio

import pytest

from repro.net.wire import (
    ENVELOPE_OVERHEAD,
    MAX_MESSAGE_SIZE,
    MESSAGE_NAMES,
    MSG_AIR_INDEX,
    MSG_BCAST_FRAME,
    MSG_DONE,
    MSG_ERROR,
    MSG_FRAME,
    MSG_HELLO,
    MSG_MANIFEST,
    MSG_NEXT_ROUND,
    MSG_ROUND_END,
    MSG_STATS,
    ConnectionLost,
    WireError,
    decode_json,
    encode_json,
    encode_message,
    read_expected,
    read_message,
)


def run(coro):
    return asyncio.run(coro)


def reader_with(data: bytes) -> asyncio.StreamReader:
    # Must be called from inside a running loop (StreamReader binds
    # the current event loop at construction time).
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def read_from(data: bytes):
    """Run read_message against an in-memory stream holding *data*."""

    async def go():
        return await read_message(reader_with(data))

    return run(go())


def read_expected_from(data: bytes, *expected: int):
    async def go():
        return await read_expected(reader_with(data), *expected)

    return run(go())


ALL_TYPES = [
    MSG_HELLO,
    MSG_MANIFEST,
    MSG_FRAME,
    MSG_ROUND_END,
    MSG_NEXT_ROUND,
    MSG_DONE,
    MSG_ERROR,
    MSG_STATS,
    MSG_AIR_INDEX,
    MSG_BCAST_FRAME,
]


class TestEncode:
    def test_envelope_layout(self):
        wire = encode_message(MSG_FRAME, b"abc")
        assert wire == (4).to_bytes(4, "big") + bytes([MSG_FRAME]) + b"abc"
        assert len(wire) == ENVELOPE_OVERHEAD + 3

    @pytest.mark.parametrize("msg_type", ALL_TYPES)
    def test_roundtrip_every_type(self, msg_type):
        async def check():
            reader = reader_with(encode_message(msg_type, b"\x00\xffbody"))
            got_type, body = await read_message(reader)
            assert got_type == msg_type
            assert body == b"\x00\xffbody"

        run(check())

    def test_empty_body(self):
        async def check():
            got_type, body = await read_message(reader_with(encode_message(MSG_DONE)))
            assert (got_type, body) == (MSG_DONE, b"")

        run(check())

    def test_unknown_type_rejected_at_encode(self):
        with pytest.raises(WireError):
            encode_message(0x42, b"")

    def test_oversized_body_rejected(self):
        with pytest.raises(WireError):
            encode_message(MSG_FRAME, b"x" * MAX_MESSAGE_SIZE)

    def test_every_type_named(self):
        assert sorted(MESSAGE_NAMES) == sorted(ALL_TYPES)

    def test_broadcast_constants_match_wire(self):
        # repro.broadcast may not import repro.net (layering), so it
        # duplicates the two message types and the envelope overhead;
        # this is the one place that pins the copies to the originals.
        from repro.broadcast import airindex

        assert airindex.AIR_INDEX_MSG_TYPE == MSG_AIR_INDEX
        assert airindex.BCAST_FRAME_MSG_TYPE == MSG_BCAST_FRAME
        assert airindex.ENVELOPE_OVERHEAD == ENVELOPE_OVERHEAD
        assert airindex.BCAST_FRAME_OVERHEAD == ENVELOPE_OVERHEAD + 1

    def test_broadcast_frame_envelope_parses_as_wire_message(self):
        from repro.broadcast import encode_broadcast_frame

        wire = bytes(encode_broadcast_frame(7, b"frame-bytes"))
        got_type, body = read_from(wire)
        assert got_type == MSG_BCAST_FRAME
        assert body[0] == 7
        assert body[1:] == b"frame-bytes"


class TestJson:
    def test_roundtrip(self):
        async def check():
            wire = encode_json(MSG_HELLO, {"doc": "d", "have": [0, 2]})
            got_type, body = await read_message(reader_with(wire))
            assert got_type == MSG_HELLO
            assert decode_json(body) == {"doc": "d", "have": [0, 2]}

        run(check())

    def test_malformed_json_is_wire_error(self):
        with pytest.raises(WireError):
            decode_json(b"{not json")

    def test_non_object_is_wire_error(self):
        with pytest.raises(WireError):
            decode_json(b"[1,2]")

    def test_non_utf8_is_wire_error(self):
        with pytest.raises(WireError):
            decode_json(b"\xff\xfe")


class TestReadMessage:
    def test_eof_before_header_is_connection_lost(self):
        with pytest.raises(ConnectionLost):
            read_from(b"")

    def test_eof_inside_header_is_connection_lost(self):
        with pytest.raises(ConnectionLost):
            read_from(b"\x00\x00")

    def test_eof_inside_body_is_connection_lost(self):
        truncated = encode_message(MSG_FRAME, b"abcdef")[:-3]
        with pytest.raises(ConnectionLost):
            read_from(truncated)

    def test_zero_length_is_wire_error(self):
        with pytest.raises(WireError):
            read_from(b"\x00\x00\x00\x00")

    def test_huge_length_is_wire_error(self):
        header = (MAX_MESSAGE_SIZE + 1).to_bytes(4, "big")
        with pytest.raises(WireError):
            read_from(header)

    def test_unknown_type_is_wire_error(self):
        wire = (1).to_bytes(4, "big") + bytes([0x42])
        with pytest.raises(WireError):
            read_from(wire)

    def test_back_to_back_messages_stay_in_sync(self):
        async def check():
            stream = (
                encode_message(MSG_FRAME, b"one")
                + encode_json(MSG_ROUND_END, {"round": 1, "sent": 3})
                + encode_message(MSG_FRAME, b"two")
            )
            reader = reader_with(stream)
            assert await read_message(reader) == (MSG_FRAME, b"one")
            got_type, body = await read_message(reader)
            assert got_type == MSG_ROUND_END
            assert decode_json(body)["sent"] == 3
            assert await read_message(reader) == (MSG_FRAME, b"two")

        run(check())

    def test_connection_lost_is_a_wire_error(self):
        # Callers catching WireError also see drops; the net layer
        # relies on the subclass relationship to split the two.
        assert issubclass(ConnectionLost, WireError)


class TestEnvelopeParity:
    """The prep layer duplicates the MSG_FRAME envelope constants
    (layering forbids prep -> net); this pins the two byte-identical."""

    def test_prep_wire_frames_match_encode_message(self):
        import importlib

        prep_module = importlib.import_module("repro.prep.prepare")
        from tests.netutil import make_prepared

        assert prep_module._FRAME_MSG_TYPE == MSG_FRAME
        assert prep_module._ENVELOPE_OVERHEAD == ENVELOPE_OVERHEAD

        prepared, _payload = make_prepared(size=777, packet_size=64)
        envelopes = prepared.wire_frames()
        frames = prepared.frames()
        assert len(envelopes) == len(frames) == prepared.n
        for envelope, frame in zip(envelopes, frames):
            assert envelope.tobytes() == encode_message(MSG_FRAME, frame)

    def test_wire_frames_cached_and_shared_across_aliases(self):
        from tests.netutil import make_prepared

        prepared, _payload = make_prepared(size=512, packet_size=64)
        first = prepared.wire_frames()
        assert prepared.wire_frames() is first
        assert prepared.wire_bytes == sum(len(view) for view in first)


class TestReadExpected:
    def test_accepts_expected(self):
        async def check():
            reader = reader_with(encode_json(MSG_MANIFEST, {"m": 1}))
            got_type, _ = await read_expected(reader, MSG_MANIFEST)
            assert got_type == MSG_MANIFEST

        run(check())

    def test_unexpected_type_is_wire_error(self):
        with pytest.raises(WireError, match="expected"):
            read_expected_from(encode_message(MSG_FRAME, b"x"), MSG_MANIFEST)

    def test_peer_error_is_surfaced(self):
        with pytest.raises(WireError, match="no such doc"):
            read_expected_from(
                encode_json(MSG_ERROR, {"message": "no such doc"}), MSG_MANIFEST
            )

    def test_error_can_be_expected_explicitly(self):
        async def check():
            reader = reader_with(encode_json(MSG_ERROR, {"message": "m"}))
            got_type, _ = await read_expected(reader, MSG_MANIFEST, MSG_ERROR)
            assert got_type == MSG_ERROR

        run(check())
