"""Tests for packet framing and the document packetizer."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.packets import (
    FRAME_OVERHEAD,
    Packetizer,
    decode_frame,
    encode_frame,
)


class TestFrames:
    def test_roundtrip(self):
        wire = encode_frame(17, b"payload")
        frame = decode_frame(wire)
        assert frame.intact
        assert frame.sequence == 17
        assert frame.payload == b"payload"

    def test_overhead_is_table2_value(self):
        """Table 2: overhead O = 4 bytes (CRC + sequence number)."""
        assert FRAME_OVERHEAD == 4
        wire = encode_frame(0, b"x" * 256)
        assert len(wire) == 260

    def test_sequence_range(self):
        encode_frame(0, b"")
        encode_frame(0xFFFF, b"")
        with pytest.raises(ValueError):
            encode_frame(-1, b"")
        with pytest.raises(ValueError):
            encode_frame(0x10000, b"")

    @given(st.binary(min_size=5, max_size=64), st.integers(min_value=0, max_value=60))
    def test_corruption_detected(self, payload, position):
        wire = bytearray(encode_frame(3, payload))
        position %= len(wire)
        wire[position] ^= 0x55
        frame = decode_frame(bytes(wire))
        assert not frame.intact or frame.payload == payload

    def test_truncated_frame(self):
        frame = decode_frame(b"ab")
        assert not frame.intact
        assert frame.sequence == -1

    def test_empty_payload(self):
        frame = decode_frame(encode_frame(9, b""))
        assert frame.intact and frame.payload == b""


class TestPacketizer:
    def test_raw_packet_count_table2(self):
        """M = ⌈10240 / 256⌉ = 40 (Table 2)."""
        packetizer = Packetizer(packet_size=256)
        assert packetizer.raw_packet_count(10240) == 40

    def test_raw_packet_count_rounds_up(self):
        packetizer = Packetizer(packet_size=256)
        assert packetizer.raw_packet_count(10241) == 41
        assert packetizer.raw_packet_count(1) == 1

    def test_cooked_count_gamma(self):
        """N = ⌈γ·M⌉ = 60 at Table 2 defaults."""
        packetizer = Packetizer(packet_size=256, redundancy_ratio=1.5)
        assert packetizer.cooked_packet_count(40) == 60

    def test_cooked_count_clamped_to_field(self):
        packetizer = Packetizer(packet_size=64, redundancy_ratio=3.0)
        assert packetizer.cooked_packet_count(100) == 255

    def test_gamma_below_one_rejected(self):
        with pytest.raises(ValueError):
            Packetizer(redundancy_ratio=0.9)

    def test_split_pads_final_packet(self):
        packetizer = Packetizer(packet_size=4)
        packets = packetizer.split(b"abcdefg")
        assert packets == [b"abcd", b"efg\x00"]

    @given(st.binary(min_size=1, max_size=2000))
    @settings(max_examples=25, deadline=None)
    def test_cook_reassemble_roundtrip(self, document):
        packetizer = Packetizer(packet_size=128, redundancy_ratio=1.5)
        cooked = packetizer.cook(document)
        rng = random.Random(0)
        keep = rng.sample(range(cooked.n), cooked.m)
        received = {i: cooked.cooked[i] for i in keep}
        assert cooked.reassemble(received) == document

    def test_frames_in_sequence_order(self):
        packetizer = Packetizer(packet_size=64)
        cooked = packetizer.cook(b"z" * 200)
        frames = cooked.frames()
        assert len(frames) == cooked.n
        sequences = [decode_frame(w).sequence for w in frames]
        assert sequences == list(range(cooked.n))

    def test_clear_prefix_contiguous_only(self):
        packetizer = Packetizer(packet_size=4, redundancy_ratio=2.0)
        cooked = packetizer.cook(b"abcdefgh")  # m = 2
        assert cooked.clear_prefix({0: cooked.cooked[0]}) == b"abcd"
        # A gap at 0 yields nothing even when packet 1 arrived.
        assert cooked.clear_prefix({1: cooked.cooked[1]}) == b""
        full = cooked.clear_prefix({0: cooked.cooked[0], 1: cooked.cooked[1]})
        assert full == b"abcdefgh"

    def test_clear_prefix_trims_padding(self):
        packetizer = Packetizer(packet_size=4, redundancy_ratio=2.0)
        cooked = packetizer.cook(b"abcde")  # padded to 8
        received = {0: cooked.cooked[0], 1: cooked.cooked[1]}
        assert cooked.clear_prefix(received) == b"abcde"

    def test_non_systematic_has_no_clear_prefix(self):
        packetizer = Packetizer(packet_size=4, systematic=False)
        cooked = packetizer.cook(b"abcdefgh")
        assert cooked.clear_prefix({0: cooked.cooked[0], 1: cooked.cooked[1]}) == b""
