"""Batched frame serving: coalescing equivalence + byte backpressure.

The server's vectored send path (``batch_send=True``, the default)
coalesces every frame of a round into at most
``ceil(round_bytes / send_batch_bytes)`` socket writes.  These tests
pin the two contracts that make that safe to ship:

* **equivalence** — under an identical chaos seed, a client decodes
  byte-identical payloads whether the server wrote one frame per
  syscall or coalesced the whole round (the wire grammar is
  length-prefixed, so message boundaries survive any write split);
* **bounded memory** — a stalled reader holds at most
  ``send_queue_frames x send_batch_bytes`` queued bytes (plus one
  oversized-envelope allowance), the byte-denominated sibling of the
  frame-count bound the unbatched path already guaranteed.
"""

import asyncio
import random

import pytest

from repro.net import (
    ChaosProxy,
    DocumentStore,
    MSG_DONE,
    MSG_HELLO,
    MSG_MANIFEST,
    MSG_ROUND_END,
    NetClient,
    NetServer,
    encode_json,
    read_expected,
    read_message,
)
from repro.net.wire import MSG_FRAME
from repro.transport.cache import PacketCache

from tests.netutil import assert_no_leaked_tasks, make_prepared

pytestmark = pytest.mark.net

CHAOS_SEED = 1337


def make_store(**kwargs):
    prepared, payload = make_prepared(**kwargs)
    store = DocumentStore()
    store.add(prepared)
    return store, prepared, payload


async def _fetch_under_chaos(batch_send):
    """One chaotic fetch against a server with/without batching."""
    store, prepared, payload = make_store(size=4096, packet_size=64)
    async with NetServer(store, batch_send=batch_send) as server:
        async with ChaosProxy(
            server.host,
            server.port,
            rng=random.Random(CHAOS_SEED),
            corrupt=0.15,
        ) as proxy:
            client = NetClient(proxy.host, proxy.port, cache=PacketCache())
            result = await client.fetch("doc")
        stats = dict(server.stats)
    await assert_no_leaked_tasks()
    return result, stats, payload, prepared


def test_batched_and_unbatched_decode_identically():
    """Same chaos seed, both send paths: byte-identical decodes.

    The chaos proxy corrupts per *message* (it re-parses envelopes off
    its upstream), so an identical rng seed lands identical faults on
    both runs regardless of how the server grouped its writes.
    """

    async def go():
        batched, batched_stats, payload, prepared = await _fetch_under_chaos(True)
        plain, plain_stats, payload2, _ = await _fetch_under_chaos(False)
        assert payload == payload2  # same deterministic document

        assert batched.status == "decoded"
        assert plain.status == "decoded"
        assert batched.payload == plain.payload == payload

        # The unbatched path wrote one "batch" per frame; the batched
        # path must have actually coalesced (fewer writes than frames).
        assert plain_stats["batches_sent"] == plain_stats["frames_sent"]
        assert 0 < batched_stats["batches_sent"] < batched_stats["frames_sent"]

    asyncio.run(go())


def test_slow_reader_bounds_queued_bytes_under_batching():
    """A stalled reader holds a bounded number of queued *bytes*."""

    async def go():
        store, prepared, _ = make_store(size=8192, packet_size=64)
        capacity, batch_bytes = 4, 512
        async with NetServer(
            store,
            round_timeout=10.0,
            send_queue_frames=capacity,
            send_batch_bytes=batch_bytes,
        ) as server:
            reader, writer = await asyncio.open_connection(server.host, server.port)
            writer.write(encode_json(MSG_HELLO, {"doc": "doc", "have": []}))
            await writer.drain()
            await asyncio.sleep(0.3)  # stall before reading anything
            _, manifest_body = await read_expected(reader, MSG_MANIFEST)
            frames = 0
            while True:
                msg_type, _ = await read_message(reader)
                if msg_type == MSG_FRAME:
                    frames += 1
                elif msg_type == MSG_ROUND_END:
                    break
            assert frames == prepared.n  # the transfer still completes
            writer.write(encode_json(MSG_DONE, {"status": "decoded", "round": 1}))
            await writer.drain()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            deadline = asyncio.get_running_loop().time() + 5.0
            while server.active_connections:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.02)
        assert server.stats["completed"] == 1
        # The queue holds at most `capacity` entries; each is a
        # coalesced batch of at most batch_bytes, except a single
        # chunk larger than the cap (here: the JSON manifest) which
        # travels alone at its full size.
        largest_envelope = max(len(v) for v in prepared.wire_frames())
        assert largest_envelope <= batch_bytes  # frames all coalesce
        manifest_envelope = len(manifest_body) + 5
        bound = capacity * batch_bytes + max(0, manifest_envelope - batch_bytes)
        assert 0 < server.stats["sendq_high_water_bytes"] <= bound
        assert server.stats["sendq_high_water"] <= capacity
        await assert_no_leaked_tasks()

    asyncio.run(go())


def test_batch_metrics_emitted():
    """net.send.* counters account for every coalesced frame and byte."""
    from repro import obs

    async def go():
        store, prepared, payload = make_store(size=2048, packet_size=64)
        async with NetServer(store) as server:
            client = NetClient(server.host, server.port, cache=PacketCache())
            result = await client.fetch("doc")
        assert result.status == "decoded"
        assert result.payload == payload
        stats = dict(server.stats)
        await assert_no_leaked_tasks()
        return stats

    obs.enable()
    try:
        stats = asyncio.run(go())
        counters = obs.OBS.metrics.snapshot()["counters"]
        assert counters["net.send.batched_frames"] == stats["frames_sent"]
        assert counters["net.send.batches"] == stats["batches_sent"]
        assert counters["net.send.batch_bytes"] > 0
    finally:
        obs.disable()
