"""Unit tests for the unified channel-model core (``repro.channel``).

Covers the verdict vocabulary and counters, the i.i.d. model's legacy
draw order, the single Gilbert–Elliott stationary-math implementation
(50-seed matched-α property test), trace replay, the spec parser, and
the recording wrapper the parity suite uses.
"""

import json
import random

import pytest

from repro.channel import (
    CORRUPT,
    DISCONNECT,
    DROP,
    PASS,
    VERDICTS,
    ChannelModel,
    GilbertElliottModel,
    IIDModel,
    RecordingModel,
    TraceModel,
    TraceSegment,
    matched_transitions,
    parse_model_spec,
    stationary_alpha,
    stationary_bad_probability,
)


# -- base vocabulary and counters -----------------------------------------


def test_verdict_vocabulary_is_closed():
    assert set(VERDICTS) == {PASS, CORRUPT, DROP, DISCONNECT}
    assert len(VERDICTS) == 4


def test_counters_partition_frames():
    model = IIDModel(
        rng=random.Random(3), drop=0.2, corrupt=0.2, disconnect=0.05
    )
    for _ in range(500):
        assert model.decide() in VERDICTS
    counts = model.counters()
    assert counts["frames"] == 500
    assert (
        counts["passed"] + counts["dropped"] + counts["corrupted"]
        + counts["disconnects"]
        == 500
    )
    assert counts["dropped"] > 0 and counts["corrupted"] > 0
    assert counts["disconnects"] > 0
    model.reset_counters()
    assert model.frames == 0


def test_transmission_time_prefers_model_bandwidth():
    model = IIDModel(bandwidth_kbps=9.6)
    assert model.transmission_time(1200) == pytest.approx(1.0)
    plain = IIDModel()
    assert plain.transmission_time(1200, 9.6) == pytest.approx(1.0)
    with pytest.raises(ValueError, match="no bandwidth"):
        plain.transmission_time(1200)


# -- i.i.d. model: legacy draw order --------------------------------------


def _legacy_fault_plan_verdicts(seed, drop, corrupt, disconnect, outage, n):
    """The pre-refactor FaultPlan draw discipline, replayed inline."""
    rng = random.Random(seed)
    outage_left = 0
    verdicts = []
    for _ in range(n):
        if outage_left > 0:
            outage_left -= 1
            verdicts.append(DROP)
            continue
        if disconnect > 0 and rng.random() < disconnect:
            outage_left = max(0, outage - 1)
            verdicts.append(DISCONNECT)
            continue
        if drop > 0 and rng.random() < drop:
            verdicts.append(DROP)
            continue
        if corrupt > 0 and rng.random() < corrupt:
            verdicts.append(CORRUPT)
            continue
        verdicts.append(PASS)
    return verdicts


@pytest.mark.parametrize("seed", [0, 7, 42, 20000806])
def test_iid_model_replays_the_legacy_draw_order(seed):
    model = IIDModel(
        rng=random.Random(seed),
        drop=0.15,
        corrupt=0.25,
        disconnect=0.03,
        outage_events=4,
    )
    expected = _legacy_fault_plan_verdicts(seed, 0.15, 0.25, 0.03, 4, 400)
    assert [model.decide() for _ in range(400)] == expected


def test_iid_outage_window_swallows_following_frames():
    model = IIDModel(rng=random.Random(0), disconnect=1.0, outage_events=3)
    assert model.decide() == DISCONNECT
    assert model.disconnected
    assert model.decide() == DROP
    assert model.decide() == DROP
    assert not model.disconnected
    assert model.decide() == DISCONNECT  # window over: next draw severs again


def test_iid_always_draw_corrupt_burns_a_draw_at_alpha_zero():
    # The simulated WirelessChannel burns one corruption draw per
    # undropped frame even at alpha=0; the flag reproduces that.
    burning = IIDModel(rng=random.Random(9), always_draw_corrupt=True)
    plain = IIDModel(rng=random.Random(9))
    for _ in range(10):
        assert burning.decide() == PASS
        assert plain.decide() == PASS
    assert burning.rng.random() != plain.rng.random()


def test_iid_validates_probabilities():
    with pytest.raises(ValueError, match="drop"):
        IIDModel(drop=1.5)
    with pytest.raises(ValueError, match="outage_events"):
        IIDModel(outage_events=-1)


# -- Gilbert–Elliott stationary math --------------------------------------


def test_stationary_bad_probability_is_the_chain_fixpoint():
    assert stationary_bad_probability(0.1, 0.3) == pytest.approx(0.25)
    with pytest.raises(ValueError, match="change state"):
        stationary_bad_probability(0.0, 0.0)


def test_matched_transitions_property_over_50_seeds():
    """matched_transitions inverts stationary_alpha, for any valid mix.

    The de-dup satellite: the transport channel and the model both call
    this one implementation, so it must hold over a broad random sweep
    of (alpha, burst, per-state rates), not just the defaults.
    """
    for seed in range(50):
        rng = random.Random(seed)
        good = rng.uniform(0.0, 0.2)
        bad = rng.uniform(0.5, 1.0)
        alpha = rng.uniform(good + 0.01, bad - 0.01)
        # Long enough bursts keep good_to_bad a probability.
        burst = rng.uniform(2.0, 50.0)
        try:
            g2b, b2g = matched_transitions(
                alpha, burst, good_alpha=good, bad_alpha=bad
            )
        except ValueError:
            # burst too short for this alpha: documented refusal.
            continue
        assert 0.0 < g2b <= 1.0 and 0.0 < b2g <= 1.0
        assert b2g == pytest.approx(1.0 / burst)
        assert stationary_alpha(good, bad, g2b, b2g) == pytest.approx(alpha)


def test_matched_transitions_rejects_out_of_band_alpha():
    with pytest.raises(ValueError, match="strictly between"):
        matched_transitions(0.01, 5.0, good_alpha=0.02, bad_alpha=0.95)
    with pytest.raises(ValueError, match="burst_length"):
        matched_transitions(0.2, 0.5)
    with pytest.raises(ValueError, match="increase it"):
        matched_transitions(0.9, 1.0, good_alpha=0.02, bad_alpha=0.95)


def test_gilbert_model_matches_requested_alpha():
    model = GilbertElliottModel.matched_to_alpha(0.3, 8.0, rng=random.Random(1))
    assert model.stationary_alpha == pytest.approx(0.3)
    assert model.expected_burst_length() == pytest.approx(8.0)


def test_gilbert_model_draws_exactly_twice_per_frame():
    class CountingRandom(random.Random):
        calls = 0

        def random(self):
            self.calls += 1
            return super().random()

    rng = CountingRandom(5)
    model = GilbertElliottModel(rng=rng)
    for _ in range(20):
        model.decide()
    assert rng.calls == 40


def test_gilbert_model_bursts_in_bad_state():
    model = GilbertElliottModel(
        rng=random.Random(2),
        good_alpha=0.0,
        bad_alpha=1.0,
        good_to_bad=0.2,
        bad_to_good=0.2,
    )
    verdicts = [model.decide() for _ in range(2000)]
    assert model.bad_frames == verdicts.count(CORRUPT)
    assert model.bad_frames / 2000 == pytest.approx(0.5, abs=0.1)


# -- traces ----------------------------------------------------------------


def _handoff_trace(repeat=False):
    return TraceModel(
        [
            TraceSegment(frames=3, bandwidth_kbps=19.2),
            TraceSegment(frames=2, outage=True),
            TraceSegment(frames=2, corrupt=1.0, bandwidth_kbps=4.8),
        ],
        rng=random.Random(0),
        repeat=repeat,
    )


def test_trace_replays_segments_in_order():
    model = _handoff_trace()
    assert [model.decide() for _ in range(3)] == [PASS, PASS, PASS]
    assert model.bandwidth_kbps == pytest.approx(19.2)
    assert model.decide() == DISCONNECT  # first frame of the outage
    assert model.disconnected
    assert model.decide() == DROP       # rest of the window swallowed
    # The outage segment has no bandwidth: the last one seen persists.
    assert model.bandwidth_kbps == pytest.approx(19.2)
    assert [model.decide() for _ in range(2)] == [CORRUPT, CORRUPT]
    assert model.bandwidth_kbps == pytest.approx(4.8)
    # No repeat: the final segment persists.
    assert model.decide() == CORRUPT


def test_trace_repeat_wraps_to_the_first_segment():
    model = _handoff_trace(repeat=True)
    first_cycle = [model.decide() for _ in range(7)]
    assert model.segment_index == 0
    assert model.decide() == PASS
    assert model.bandwidth_kbps == pytest.approx(19.2)
    assert first_cycle[3] == DISCONNECT


def test_trailing_outage_drops_without_re_disconnecting():
    model = TraceModel(
        [TraceSegment(frames=1), TraceSegment(frames=2, outage=True)],
        rng=random.Random(0),
    )
    verdicts = [model.decide() for _ in range(10)]
    assert verdicts[0] == PASS
    assert verdicts[1] == DISCONNECT
    assert verdicts[2:] == [DROP] * 8  # a dead link stays dead
    assert model.disconnected


def test_trace_from_dict_validation():
    with pytest.raises(ValueError, match="unknown key"):
        TraceModel.from_dict({"segments": [{"frames": 5, "typo": 1}]})
    with pytest.raises(ValueError, match="frames >= 1"):
        TraceModel.from_dict([{"frames": 0}])
    with pytest.raises(ValueError, match="non-empty"):
        TraceModel.from_dict({"segments": []})
    with pytest.raises(ValueError, match="bandwidth_kbps"):
        TraceModel.from_dict([{"frames": 1, "bandwidth_kbps": -2}])
    bare_list = TraceModel.from_dict([{"frames": 4, "corrupt": 0.5}])
    assert len(bare_list.segments) == 1


def test_trace_from_json_round_trip(tmp_path):
    path = tmp_path / "urban.json"
    path.write_text(
        json.dumps(
            {
                "name": "urban-handoff",
                "repeat": True,
                "segments": [
                    {"frames": 2, "bandwidth_kbps": 19.2},
                    {"frames": 1, "outage": True},
                ],
            }
        ),
        encoding="utf-8",
    )
    model = TraceModel.from_json(str(path), rng=random.Random(4))
    assert model.name == "urban-handoff"
    assert model.repeat
    assert [model.decide() for _ in range(3)] == [PASS, PASS, DISCONNECT]
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ValueError, match="not valid JSON"):
        TraceModel.from_json(str(bad))


# -- spec parsing ----------------------------------------------------------


def test_parse_iid_spec_with_alias_and_bandwidth():
    model = parse_model_spec(
        "iid:drop=0.1,alpha=0.2,disconnect=0.05,outage=3,bandwidth=9.6", seed=7
    )
    assert isinstance(model, IIDModel)
    assert model.drop == pytest.approx(0.1)
    assert model.corrupt == pytest.approx(0.2)
    assert model.disconnect == pytest.approx(0.05)
    assert model.outage_events == 3
    assert model.bandwidth_kbps == pytest.approx(9.6)


def test_parse_gilbert_matched_and_explicit_forms():
    matched = parse_model_spec("gilbert:alpha=0.2,burst=5", seed=1)
    assert isinstance(matched, GilbertElliottModel)
    assert matched.stationary_alpha == pytest.approx(0.2)
    explicit = parse_model_spec("gilbert:good=0.01,bad=0.9,g2b=0.1,b2g=0.25")
    assert explicit.good_to_bad == pytest.approx(0.1)
    assert explicit.bad_to_good == pytest.approx(0.25)
    with pytest.raises(ValueError, match="mix of matched"):
        parse_model_spec("gilbert:alpha=0.2,g2b=0.1,b2g=0.2")
    with pytest.raises(ValueError, match="need alpha="):
        parse_model_spec("gilbert:burst=5")


def test_parse_trace_spec_loads_the_file(tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps([{"frames": 1, "drop": 1.0}]), encoding="utf-8")
    model = parse_model_spec(f"trace:{path}", seed=3)
    assert isinstance(model, TraceModel)
    assert model.decide() == DROP


def test_parse_spec_rejects_malformed_input():
    with pytest.raises(ValueError, match="unknown channel model kind"):
        parse_model_spec("markov:order=2")
    with pytest.raises(ValueError, match="empty channel model spec"):
        parse_model_spec("   ")
    with pytest.raises(ValueError, match="unknown key"):
        parse_model_spec("iid:oops=1")
    with pytest.raises(ValueError, match="duplicate key"):
        parse_model_spec("iid:drop=0.1,drop=0.2")
    with pytest.raises(ValueError, match="not a number"):
        parse_model_spec("iid:drop=lots")
    with pytest.raises(ValueError, match="either corrupt= or its alias"):
        parse_model_spec("iid:corrupt=0.1,alpha=0.2")
    with pytest.raises(ValueError, match="not both"):
        parse_model_spec("iid:drop=0.1", rng=random.Random(0), seed=1)


def test_parse_spec_seed_matches_explicit_rng():
    a = parse_model_spec("iid:drop=0.3,corrupt=0.3", seed=11)
    b = parse_model_spec("iid:drop=0.3,corrupt=0.3", rng=random.Random(11))
    assert [a.decide() for _ in range(100)] == [b.decide() for _ in range(100)]


# -- the legacy per-flag surface -------------------------------------------


def test_legacy_chaos_spec_synthesizes_the_iid_form():
    from repro.channel import legacy_chaos_spec

    assert legacy_chaos_spec(drop=0.1) == "iid:drop=0.1"
    assert (
        legacy_chaos_spec(drop=0.1, corrupt=0.25, disconnect=0.002, outage=2)
        == "iid:drop=0.1,corrupt=0.25,disconnect=0.002,outage=2"
    )
    assert legacy_chaos_spec() is None
    assert legacy_chaos_spec(drop=0.0, corrupt=0.0) is None


def test_legacy_chaos_spec_builds_byte_identical_models():
    from repro.channel import legacy_chaos_spec

    # The one shared translation point: a legacy flag set and the spec
    # it synthesizes must produce identical seeded verdict streams.
    spec = legacy_chaos_spec(drop=0.1, corrupt=0.25, disconnect=0.002)
    forwarded = parse_model_spec(spec, seed=11)
    direct = IIDModel(
        rng=random.Random(11), drop=0.1, corrupt=0.25, disconnect=0.002
    )
    assert [forwarded.decide() for _ in range(300)] == [
        direct.decide() for _ in range(300)
    ]


# -- the recording wrapper -------------------------------------------------


def test_recording_model_logs_and_delegates():
    inner = IIDModel(rng=random.Random(6), drop=0.3, corrupt=0.3)
    recorder = RecordingModel(inner)
    assert isinstance(recorder, ChannelModel)
    verdicts = [recorder.decide() for _ in range(50)]
    assert recorder.verdicts == verdicts
    assert recorder.frames == 50
    assert recorder.counters() == inner.counters()
    assert recorder.drop == pytest.approx(0.3)  # attribute pass-through
    recorder.reset_counters()
    assert recorder.verdicts == [] and inner.frames == 0
