"""The redesigned request API: PrepRequest / TransferSettings contracts."""

import pytest

from repro.prep.request import (
    KNOWN_MEASURES,
    DeliveryMode,
    PrepRequest,
    TransferSettings,
    UNSET,
    legacy_value,
    request_from_legacy,
    settings_from_legacy,
)
from repro.protocol import DEFAULT_MAX_ROUNDS, DEFAULT_ROUND_TIMEOUT


class TestPrepRequestValidation:
    def test_defaults(self):
        request = PrepRequest()
        assert request.lod == "paragraph"
        assert request.measure == "auto"
        assert request.query == ""
        assert request.packet_size == 256
        assert request.gamma == 1.5
        assert request.systematic is True

    def test_frozen(self):
        request = PrepRequest()
        with pytest.raises(AttributeError):
            request.lod = "section"

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError, match="unknown measure"):
            PrepRequest(measure="entropy")

    def test_every_known_measure_accepted(self):
        for measure in KNOWN_MEASURES:
            assert PrepRequest(measure=measure).measure == measure

    def test_unknown_lod_rejected(self):
        with pytest.raises(ValueError):
            PrepRequest(lod="chapter")

    @pytest.mark.parametrize("field,value", [
        ("packet_size", 0),
        ("packet_size", -8),
        ("gamma", 0.5),
        ("gamma", 0.0),
    ])
    def test_bad_numbers_rejected(self, field, value):
        with pytest.raises(ValueError):
            PrepRequest(**{field: value})

    def test_resolved_measure_auto(self):
        assert PrepRequest(query="mobile web").resolved_measure == "mqic"
        assert PrepRequest(query="").resolved_measure == "ic"
        assert PrepRequest(query="   ").resolved_measure == "ic"
        assert PrepRequest(query="x", measure="qic").resolved_measure == "qic"

    def test_query_key_normalises_whitespace_and_case(self):
        assert (
            PrepRequest(query="  Mobile   Web ").query_key
            == PrepRequest(query="mobile web").query_key
        )

    def test_replace(self):
        request = PrepRequest(query="a")
        other = request.replace(lod="section")
        assert other.lod == "section" and other.query == "a"
        assert request.lod == "paragraph"


class TestPrepRequestKeysAndWire:
    def test_cache_key_depends_on_parameters(self):
        digest = "d" * 64
        base = PrepRequest(query="mobile web")
        assert base.cache_key(digest) == PrepRequest(query="mobile  WEB ").cache_key(digest)
        for variant in [
            base.replace(lod="section"),
            base.replace(query="other words"),
            base.replace(gamma=2.0),
            base.replace(packet_size=128),
            base.replace(measure="qic"),
            base.replace(systematic=False),
        ]:
            assert variant.cache_key(digest) != base.cache_key(digest)
        assert base.cache_key("e" * 64) != base.cache_key(digest)

    def test_wire_roundtrip(self):
        request = PrepRequest(
            lod="section", measure="qic", query="weak links",
            packet_size=128, gamma=2.0, systematic=False,
        )
        assert PrepRequest.from_wire(request.to_wire()) == request

    def test_from_wire_rejects_junk(self):
        with pytest.raises(ValueError):
            PrepRequest.from_wire("not a dict")
        with pytest.raises(ValueError):
            PrepRequest.from_wire({"lod": "paragraph", "bogus_field": 1})
        with pytest.raises(ValueError):
            PrepRequest.from_wire({"packet_size": "huge"})
        with pytest.raises(ValueError):
            PrepRequest.from_wire({"measure": "entropy"})


class TestDeliveryMode:
    def test_default_is_unicast(self):
        assert PrepRequest().delivery is DeliveryMode.UNICAST
        assert TransferSettings().delivery is DeliveryMode.UNICAST

    def test_strings_are_canonicalized(self):
        assert PrepRequest(delivery="carousel").delivery is DeliveryMode.CAROUSEL
        assert PrepRequest(delivery=" CAROUSEL ").delivery is DeliveryMode.CAROUSEL
        assert (
            TransferSettings(delivery="unicast").delivery is DeliveryMode.UNICAST
        )

    def test_junk_mode_rejected(self):
        with pytest.raises(ValueError, match="delivery"):
            PrepRequest(delivery="multicast")
        with pytest.raises(ValueError, match="delivery"):
            PrepRequest(delivery=7)
        with pytest.raises(ValueError, match="delivery"):
            TransferSettings(delivery="anycast")

    def test_unicast_omitted_from_wire_for_legacy_peers(self):
        # Pre-DeliveryMode servers reject unknown prep keys, so the
        # default mode must not appear on the wire at all.
        assert "delivery" not in PrepRequest().to_wire()
        wire = PrepRequest(delivery="carousel").to_wire()
        assert wire["delivery"] == "carousel"

    def test_wire_roundtrip(self):
        request = PrepRequest(delivery=DeliveryMode.CAROUSEL)
        assert PrepRequest.from_wire(request.to_wire()) == request
        assert PrepRequest.from_wire({}).delivery is DeliveryMode.UNICAST

    def test_from_wire_rejects_junk_mode(self):
        with pytest.raises(ValueError, match="delivery"):
            PrepRequest.from_wire({"delivery": "multicast"})
        with pytest.raises(ValueError, match="delivery"):
            PrepRequest.from_wire({"delivery": 3})

    def test_delivery_is_part_of_the_cache_key(self):
        digest = "d" * 64
        base = PrepRequest()
        carousel = base.replace(delivery=DeliveryMode.CAROUSEL)
        assert carousel.cache_key(digest) != base.cache_key(digest)
        assert carousel.cache_key(digest)[-1] == "carousel"

    def test_legacy_request_shim_carries_delivery(self):
        with pytest.warns(DeprecationWarning):
            request = request_from_legacy(None, "api", delivery="carousel")
        assert request.delivery is DeliveryMode.CAROUSEL

    def test_legacy_settings_shim_carries_delivery(self):
        with pytest.warns(DeprecationWarning):
            settings = settings_from_legacy(None, "api", delivery="carousel")
        assert settings.delivery is DeliveryMode.CAROUSEL


class TestTransferSettings:
    def test_defaults_match_protocol_constants(self):
        settings = TransferSettings()
        assert settings.relevance_threshold is None
        assert settings.max_rounds == DEFAULT_MAX_ROUNDS
        assert settings.round_timeout == DEFAULT_ROUND_TIMEOUT
        assert settings.max_reconnects == 4
        assert settings.use_cache is False

    @pytest.mark.parametrize("kwargs", [
        {"max_rounds": 0},
        {"max_rounds": -1},
        {"round_timeout": 0.0},
        {"round_timeout": -1.0},
        {"max_reconnects": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TransferSettings(**kwargs)


class TestLegacyShims:
    def test_legacy_value_maps_default_to_unset(self):
        assert legacy_value(60.0, 60.0) is UNSET
        assert legacy_value(None, None) is UNSET
        assert legacy_value(30.0, 60.0) == 30.0

    def test_settings_from_legacy_warns_and_folds(self):
        with pytest.warns(DeprecationWarning, match="max_rounds"):
            settings = settings_from_legacy(
                None, "api", max_rounds=7, round_timeout=UNSET
            )
        assert settings.max_rounds == 7
        assert settings.round_timeout == DEFAULT_ROUND_TIMEOUT

    def test_settings_from_legacy_silent_when_nothing_supplied(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            settings = settings_from_legacy(
                None, "api", max_rounds=UNSET, round_timeout=UNSET
            )
        assert settings == TransferSettings()

    def test_legacy_merges_over_explicit_settings(self):
        base = TransferSettings(max_rounds=9, round_timeout=5.0)
        with pytest.warns(DeprecationWarning):
            settings = settings_from_legacy(base, "api", max_rounds=3)
        assert settings.max_rounds == 3
        assert settings.round_timeout == 5.0

    def test_request_from_legacy(self):
        with pytest.warns(DeprecationWarning, match="query"):
            request = request_from_legacy(None, "api", query="mobile", lod=UNSET)
        assert request.query == "mobile"
        assert request.lod == "paragraph"

    def test_transfer_document_legacy_keywords_still_work(self):
        from repro.prep.prepare import DocumentSender
        from repro.coding import Packetizer
        from repro.transport import WirelessChannel, transfer_document

        sender = DocumentSender(Packetizer(packet_size=64, redundancy_ratio=1.5))
        prepared = sender.prepare_raw("doc", b"x" * 512)
        with pytest.warns(DeprecationWarning):
            result = transfer_document(
                prepared, WirelessChannel(alpha=0.0), max_rounds=3
            )
        assert result.success
