"""The sans-IO import DAG holds (tier-1 mirror of the CI lint)."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_layering  # noqa: E402


class TestLayeringLint:
    def test_tree_is_clean(self):
        assert check_layering.check_tree(REPO / "src" / "repro") == []

    def test_cli_exit_status(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_layering.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "layering OK" in proc.stdout

    def test_violation_detected(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "protocol").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "protocol" / "__init__.py").write_text("")
        (pkg / "protocol" / "bad.py").write_text(
            "from repro.transport.channel import WirelessChannel\n"
        )
        violations = check_layering.check_tree(pkg)
        assert len(violations) == 1
        assert "repro.protocol.bad imports repro.transport.channel" in violations[0]

    def test_driver_importing_session_detected(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "simulation").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "simulation" / "__init__.py").write_text("")
        (pkg / "simulation" / "bad.py").write_text(
            "import repro.transport.session\n"
        )
        violations = check_layering.check_tree(pkg)
        assert len(violations) == 1
        assert "repro.simulation.bad imports repro.transport.session" in violations[0]

    def test_sibling_module_prefix_not_confused(self, tmp_path):
        # repro.transport.session_helpers is NOT repro.transport.session.
        pkg = tmp_path / "repro"
        (pkg / "prototype").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "prototype" / "__init__.py").write_text("")
        (pkg / "prototype" / "ok.py").write_text(
            "import repro.transport.session_helpers\n"
        )
        assert check_layering.check_tree(pkg) == []
