"""Tests for the XML lexer."""

import pytest

from repro.xmlkit.errors import XmlSyntaxError
from repro.xmlkit.tokenizer import XmlTokenizer, resolve_entities, tokenize_xml


class TestBasicTokens:
    def test_start_end_text(self):
        tokens = tokenize_xml("<a>hello</a>")
        assert [t.kind for t in tokens] == ["start", "text", "end"]
        assert tokens[0].value == "a"
        assert tokens[1].value == "hello"
        assert tokens[2].value == "a"

    def test_self_closing(self):
        (token,) = tokenize_xml("<br/>")
        assert token.kind == "start"
        assert token.self_closing

    def test_attributes(self):
        (token,) = tokenize_xml('<a href="x" id=\'y\'/>')
        assert token.attrs == {"href": "x", "id": "y"}

    def test_attribute_whitespace_tolerated(self):
        (token,) = tokenize_xml('<a  href = "x" />')
        assert token.attrs == {"href": "x"}

    def test_comment(self):
        tokens = tokenize_xml("<a><!-- note --></a>")
        assert tokens[1].kind == "comment"
        assert tokens[1].value == " note "

    def test_cdata_becomes_text(self):
        tokens = tokenize_xml("<a><![CDATA[<raw & unescaped>]]></a>")
        assert tokens[1].kind == "text"
        assert tokens[1].value == "<raw & unescaped>"

    def test_processing_instruction(self):
        tokens = tokenize_xml('<?xml version="1.0"?><a/>')
        assert tokens[0].kind == "pi"

    def test_doctype(self):
        tokens = tokenize_xml("<!DOCTYPE paper><a/>")
        assert tokens[0].kind == "doctype"
        assert tokens[0].value == "DOCTYPE paper"


class TestEntities:
    def test_predefined(self):
        assert resolve_entities("&lt;&gt;&amp;&apos;&quot;") == "<>&'\""

    def test_numeric(self):
        assert resolve_entities("&#65;&#x42;") == "AB"

    def test_unknown_strict_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_entities("&nbsp;", strict=True)

    def test_unknown_lenient_passthrough(self):
        assert resolve_entities("&nbsp;", strict=False) == "&nbsp;"

    def test_bare_ampersand_strict_raises(self):
        with pytest.raises(XmlSyntaxError):
            resolve_entities("AT&T", strict=True)

    def test_in_text_nodes(self):
        tokens = tokenize_xml("<a>1 &lt; 2</a>")
        assert tokens[1].value == "1 < 2"

    def test_in_attributes(self):
        (token,) = tokenize_xml('<a title="a&amp;b"/>')
        assert token.attrs == {"title": "a&b"}


class TestErrors:
    def test_unterminated_comment(self):
        with pytest.raises(XmlSyntaxError, match="comment"):
            tokenize_xml("<a><!-- oops</a>")

    def test_duplicate_attribute(self):
        with pytest.raises(XmlSyntaxError, match="duplicate"):
            tokenize_xml('<a x="1" x="2"/>')

    def test_unquoted_attribute(self):
        with pytest.raises(XmlSyntaxError, match="quoted"):
            tokenize_xml("<a x=1/>")

    def test_missing_equals(self):
        with pytest.raises(XmlSyntaxError):
            tokenize_xml('<a x "1"/>')

    def test_error_carries_position(self):
        try:
            tokenize_xml("<a>\n  <b x=bad/>\n</a>")
        except XmlSyntaxError as err:
            assert err.line == 2
        else:  # pragma: no cover
            pytest.fail("expected XmlSyntaxError")

    def test_unterminated_tag(self):
        with pytest.raises(XmlSyntaxError):
            tokenize_xml("<a href=")
