"""Crash-safety of the disk-backed cooked-bundle tier.

Tier-1 (socket-free): torn writes never surface a visible bundle,
any corrupted byte is checksum-rejected into quarantine and re-cooked,
and a warm restart on the same cache root serves byte-identical wire
frames without re-running the pipeline (``cooked_misses == 0``).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prep import PrepRequest
from repro.prep.diskstore import BUNDLE_MAGIC, QUARANTINE_DIR, key_digest

from tests.test_prep_service import PAPER, make_service

REQUEST = PrepRequest(query="mobile web", packet_size=64)


def make_disk_service(root, **kwargs):
    service, pipeline = make_service(disk_path=root, **kwargs)
    service.add_document("doc", PAPER)
    return service, pipeline


def wire_bytes(prepared):
    return b"".join(bytes(view) for view in prepared.wire_frames())


def sole_bundle(store):
    bundles = list(store.root.glob("*/*.bundle"))
    assert len(bundles) == 1, bundles
    return bundles[0]


class TestRoundTrip:
    def test_cold_build_writes_one_verified_bundle(self, tmp_path):
        service, pipeline = make_disk_service(tmp_path)
        prepared = service.prepare("doc", REQUEST)
        store = service.disk_store
        assert pipeline.runs == 1
        assert store.stats["writes"] == 1
        assert store.stats["misses"] == 1  # the cold probe
        path = sole_bundle(store)
        assert path.read_bytes()[:4] == BUNDLE_MAGIC
        # The same process never re-reads disk: the in-memory tier wins.
        again = service.prepare("doc", REQUEST)
        assert wire_bytes(again) == wire_bytes(prepared)
        assert store.stats["hits"] == 0

    def test_store_get_rebuilds_byte_identical_frames(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        prepared = service.prepare("doc", REQUEST)
        assert sole_bundle(service.disk_store).parent.name == service.digest(
            "doc"
        )
        # Probe through a second service on the same root rather than
        # reverse-engineering the key tuple: it must load this bundle.
        sibling, pipeline = make_disk_service(tmp_path)
        warm = sibling.prepare("doc", REQUEST)
        assert pipeline.runs == 0
        assert sibling.disk_store.stats["hits"] == 1
        assert wire_bytes(warm) == wire_bytes(prepared)
        assert warm.m == prepared.m and warm.n == prepared.n
        assert warm.content_profile == pytest.approx(prepared.content_profile)
        assert warm.measure == prepared.measure


class TestWarmRestart:
    def test_restart_serves_without_recook(self, tmp_path):
        cold, cold_pipeline = make_disk_service(tmp_path)
        reference = wire_bytes(cold.prepare("doc", REQUEST))
        assert cold_pipeline.runs == 1
        assert cold.stats["cooked_misses"] == 1

        # "Restart": a brand-new service (empty memory tiers), same root.
        warm, warm_pipeline = make_disk_service(tmp_path)
        served = wire_bytes(warm.prepare("doc", REQUEST))
        assert served == reference
        assert warm_pipeline.runs == 0
        # A verified disk load is a cooked-tier HIT, never a miss —
        # the acceptance criterion for prep.misses{cooked} == 0.
        assert warm.stats["cooked_misses"] == 0
        assert warm.stats["cooked_hits"] >= 1
        assert warm.stats["disk_hits"] == 1
        assert warm.stats["disk_misses"] == 0

    def test_restart_with_changed_pipeline_recooks(self, tmp_path):
        cold, _ = make_disk_service(tmp_path)
        cold.prepare("doc", REQUEST)

        # The disk key carries the pipeline token: a different module
        # roster must not serve the stale bundle.
        warm, warm_pipeline = make_disk_service(tmp_path)
        warm._pipeline_token = lambda: ("other-pipeline",)
        warm.prepare("doc", REQUEST)
        assert warm_pipeline.runs == 1
        assert warm.stats["disk_misses"] == 1


class TestTornWrites:
    def test_killed_writer_leaves_no_visible_bundle(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        service.prepare("doc", REQUEST)
        store = service.disk_store
        path = sole_bundle(store)

        # Simulate a writer killed mid-bundle: a half-written tmp file
        # exists, the real name does not.
        data = path.read_bytes()
        path.unlink()
        tmp = path.parent / f"{path.name}.tmp.99999"
        tmp.write_bytes(data[: len(data) // 2])

        warm, pipeline = make_disk_service(tmp_path)
        assert warm.prepare("doc", REQUEST) is not None
        assert pipeline.runs == 1  # tmp file is invisible → re-cook
        assert sole_bundle(store)  # the re-cook republished the slot
        assert warm.disk_store.sweep_tmp() == 1  # orphan cleaned up
        assert not list(store.root.glob("*/*.tmp.*"))

    def test_truncated_bundle_is_rejected_and_quarantined(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        service.prepare("doc", REQUEST)
        store = service.disk_store
        path = sole_bundle(store)
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # lose the checksum tail

        warm, pipeline = make_disk_service(tmp_path)
        served = warm.prepare("doc", REQUEST)
        assert served is not None
        assert pipeline.runs == 1
        assert warm.disk_store.stats["rejected"] == 1
        quarantined = list((tmp_path / QUARANTINE_DIR).iterdir())
        assert len(quarantined) == 1
        # The re-cook overwrote the slot: a third restart hits clean.
        third, third_pipeline = make_disk_service(tmp_path)
        assert third.prepare("doc", REQUEST) is not None
        assert third_pipeline.runs == 0

    def test_empty_file_is_treated_as_torn(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        service.prepare("doc", REQUEST)
        path = sole_bundle(service.disk_store)
        path.write_bytes(b"")
        warm, pipeline = make_disk_service(tmp_path)
        assert warm.prepare("doc", REQUEST) is not None
        assert pipeline.runs == 1


class TestBitFlips:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_any_flipped_byte_is_rejected_then_recooked(
        self, tmp_path_factory, data
    ):
        tmp_path = tmp_path_factory.mktemp("flip")
        service, _ = make_disk_service(tmp_path)
        reference = wire_bytes(service.prepare("doc", REQUEST))
        store = service.disk_store
        path = sole_bundle(store)
        raw = bytearray(path.read_bytes())
        index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        raw[index] ^= flip
        path.write_bytes(bytes(raw))

        warm, pipeline = make_disk_service(tmp_path)
        served = wire_bytes(warm.prepare("doc", REQUEST))
        # Never serve corrupt bytes: either the checksum rejected the
        # bundle (re-cook) — and the decode is byte-identical anyway.
        assert served == reference
        assert pipeline.runs == 1
        assert warm.disk_store.stats["rejected"] == 1
        assert any((tmp_path / QUARANTINE_DIR).iterdir())

    def test_wrong_magic_is_rejected(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        service.prepare("doc", REQUEST)
        path = sole_bundle(service.disk_store)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"NOPE"
        path.write_bytes(bytes(raw))
        warm, pipeline = make_disk_service(tmp_path)
        assert warm.prepare("doc", REQUEST) is not None
        assert pipeline.runs == 1
        assert warm.disk_store.stats["rejected"] == 1


class TestStoreMaintenance:
    def test_drop_digest_removes_the_directory(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        service.prepare("doc", REQUEST)
        store = service.disk_store
        digest = service.digest("doc")
        assert store.drop_digest(digest) == 1
        assert not (tmp_path / digest).exists()
        assert store.info()["bundles"] == 0

    def test_invalidate_reaches_the_disk_tier(self, tmp_path):
        cache_root = tmp_path / "cache"
        target = tmp_path / "paper.xml"
        target.write_text(PAPER, encoding="utf-8")
        service, pipeline = make_service(disk_path=cache_root)
        document_id = service.add_path(target)
        old_digest = service.digest(document_id)
        service.prepare(document_id, REQUEST)
        assert (cache_root / old_digest).exists()
        target.write_text(PAPER.replace("Coding", "Recoding"), "utf-8")
        service.invalidate(document_id)
        assert not (cache_root / old_digest).exists()
        # Next prepare re-cooks and persists under the new digest.
        service.prepare(document_id, REQUEST)
        assert pipeline.runs == 2
        assert (cache_root / service.digest(document_id)).exists()

    def test_budget_prunes_oldest_first(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        first = service.prepare("doc", REQUEST)
        store = service.disk_store
        bundle_size = sole_bundle(store).stat().st_size
        # Re-budget so only ~one bundle fits, then cook two more.
        store.max_bytes = int(bundle_size * 1.5)
        old = sole_bundle(store)
        os.utime(old, (1, 1))  # force it oldest
        service.prepare("doc", PrepRequest(query="caching", packet_size=64))
        assert store.stats["pruned"] >= 1
        assert not old.exists()

    def test_key_digest_is_stable(self):
        key = ("digest", 2, "", "q", 64, 1.5, "", True, ("token",))
        assert key_digest(key) == key_digest(tuple(key))
        assert key_digest(key) != key_digest(key[:-1])

    def test_clear_empties_the_store(self, tmp_path):
        service, _ = make_disk_service(tmp_path)
        service.prepare("doc", REQUEST)
        store = service.disk_store
        assert store.clear() == 1
        assert store.info()["bundles"] == 0
