"""Parallel sweep execution: determinism, block layout, jobs resolution.

The acceptance bar for the parallel executor is that parallelism is
*unobservable* in the results: ``jobs=4`` must reproduce the serial
value stream bit-for-bit because every repetition runs from a
pre-drawn seed with a fresh ``random.Random``.
"""

import random

import pytest

from repro.simulation.experiments import experiment1
from repro.simulation.parallel import (
    DEFAULT_BLOCK_SIZE,
    JOBS_ENV,
    SessionTask,
    _split_blocks,
    jobs_from_environment,
    map_session_means,
    resolve_jobs,
)
from repro.simulation.parameters import Parameters


def _tiny_params(**overrides):
    defaults = dict(documents_per_session=5, repetitions=4, max_rounds=6)
    defaults.update(overrides)
    return Parameters(**defaults)


def _tasks(count=3, repetitions=5):
    rng = random.Random(99)
    params = _tiny_params(repetitions=repetitions)
    return [
        SessionTask(
            params.replace(alpha=0.1 * (i + 1)),
            tuple(rng.randrange(2**32) for _ in range(repetitions)),
            caching=bool(i % 2),
        )
        for i in range(count)
    ]


class TestMapSessionMeans:
    def test_parallel_matches_serial_bitwise(self):
        tasks = _tasks()
        serial = map_session_means(tasks, jobs=1)
        parallel = map_session_means(tasks, jobs=4)
        assert parallel == serial  # exact float equality, not approx

    def test_block_size_is_unobservable(self):
        tasks = _tasks(count=2, repetitions=7)
        reference = map_session_means(tasks, jobs=1)
        for block_size in (1, 2, 3, DEFAULT_BLOCK_SIZE, 100):
            assert map_session_means(tasks, jobs=2, block_size=block_size) == reference

    def test_empty_task_list(self):
        assert map_session_means([], jobs=4) == []

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError, match="block_size"):
            map_session_means(_tasks(count=1), jobs=1, block_size=0)

    def test_result_shape_one_mean_per_seed(self):
        tasks = _tasks(count=2, repetitions=3)
        results = map_session_means(tasks, jobs=2, block_size=2)
        assert [len(means) for means in results] == [3, 3]


class TestExperimentDeterminism:
    def test_experiment1_jobs4_equals_jobs1(self):
        """ISSUE acceptance: --jobs N reproduces serial results exactly."""
        params = _tiny_params()
        kwargs = dict(
            gammas=(1.2, 1.8),
            alphas=(0.1, 0.4),
            irrelevant_fractions=(0.0, 0.5),
            seed=1234,
        )
        serial = experiment1(params, jobs=1, **kwargs)
        parallel = experiment1(params, jobs=4, **kwargs)
        assert serial.keys() == parallel.keys()
        for panel, curves in serial.items():
            for alpha, points in curves.items():
                other = parallel[panel][alpha]
                assert [p.x for p in points] == [p.x for p in other]
                for ours, theirs in zip(points, other):
                    # SeriesPoint values must match bit-for-bit, not
                    # merely statistically.
                    assert ours.samples == theirs.samples
                    assert ours.mean == theirs.mean
                    assert ours.stdev == theirs.stdev


class TestBlockSplitting:
    def test_blocks_cover_all_seeds_in_order(self):
        tasks = _tasks(count=2, repetitions=7)
        blocks = _split_blocks(tasks, block_size=3)
        reassembled = {0: [], 1: []}
        for index, block in blocks:
            assert block.params is tasks[index].params
            reassembled[index].extend(block.seeds)
        for i, task in enumerate(tasks):
            assert tuple(reassembled[i]) == task.seeds

    def test_block_size_bounds(self):
        tasks = _tasks(count=1, repetitions=10)
        blocks = _split_blocks(tasks, block_size=4)
        assert [len(block.seeds) for _, block in blocks] == [4, 4, 2]


class TestJobsResolution:
    def test_env_unset_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert jobs_from_environment() == 1
        assert resolve_jobs(None) == 1

    def test_env_value_used(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "6")
        assert jobs_from_environment() == 6
        assert resolve_jobs(None) == 6

    def test_env_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert jobs_from_environment() == 1
        monkeypatch.setenv(JOBS_ENV, "-3")
        assert jobs_from_environment(default=2) == 2

    def test_zero_means_cpu_count(self):
        assert resolve_jobs(0) >= 1

    def test_explicit_value_passes_through(self):
        assert resolve_jobs(5) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-1)
