"""Tests for HTML → research-paper structure extraction."""

from repro.htmlkit.extract import html_to_research_paper
from repro.xmlkit.dtd import RESEARCH_PAPER


class TestOutline:
    def test_headings_become_sections(self):
        doc = html_to_research_paper(
            "<title>T</title><h1>One</h1><p>a</p><h1>Two</h1><p>b</p>"
        )
        sections = doc.root.find_all("section")
        assert len(sections) == 2
        titles = [s.find("title").text_content() for s in sections]
        assert titles == ["One", "Two"]

    def test_h2_becomes_subsection(self):
        doc = html_to_research_paper(
            "<h1>S</h1><p>a</p><h2>Sub</h2><p>b</p>"
        )
        section = doc.root.find("section")
        sub = section.find("subsection")
        assert sub is not None
        assert sub.find("title").text_content() == "Sub"
        assert sub.find("paragraph").text_content().strip() == "b"

    def test_heading_levels_normalized(self):
        # Page starts at h2: h2 should still map to section.
        doc = html_to_research_paper("<h2>Only</h2><p>x</p>")
        assert doc.root.find("section") is not None
        assert doc.root.find("subsection") is None

    def test_deep_heading_clamped(self):
        # h3 with no h1/h2 context opens a section, not an orphan.
        doc = html_to_research_paper("<h3>Deep</h3><p>x</p>")
        assert doc.root.find("section") is not None

    def test_leading_text_becomes_abstract(self):
        doc = html_to_research_paper("<p>intro words</p><h1>S</h1><p>body</p>")
        abstract = doc.root.find("abstract")
        assert abstract is not None
        assert "intro" in abstract.text_content()


class TestTitle:
    def test_title_tag_preferred(self):
        doc = html_to_research_paper("<title>Doc Title</title><h1>H</h1><p>x</p>")
        assert doc.root.find("title").text_content() == "Doc Title"

    def test_h1_fallback(self):
        doc = html_to_research_paper("<h1>Only Heading</h1><p>x</p>")
        assert doc.root.find("title").text_content() == "Only Heading"

    def test_untitled_fallback(self):
        doc = html_to_research_paper("<p>just text</p>")
        assert doc.root.find("title").text_content() == "Untitled document"


class TestInlineContent:
    def test_emphasis_preserved(self):
        doc = html_to_research_paper("<h1>S</h1><p>very <b>bold</b> claim</p>")
        paragraph = doc.root.find("section").find("paragraph")
        emph = paragraph.find("emph")
        assert emph is not None
        assert emph.text_content() == "bold"

    def test_list_items_become_paragraphs(self):
        doc = html_to_research_paper("<h1>S</h1><ul><li>first</li><li>second</li></ul>")
        paragraphs = doc.root.find("section").find_all("paragraph")
        assert len(paragraphs) == 2

    def test_script_and_style_skipped(self):
        doc = html_to_research_paper(
            "<h1>S</h1><script>var x;</script><style>p{}</style><p>real</p>"
        )
        text = doc.root.text_content()
        assert "var x" not in text
        assert "real" in text


class TestValidity:
    def test_output_always_validates(self):
        pages = [
            "<h1>A</h1><p>x</p>",
            "<p>only text</p>",
            "<h1>A</h1><h2>B</h2><h3>C</h3><p>deep</p>",
            "<title>T</title><body><p>a<p>b<h1>C</h1><li>d</body>",
        ]
        for page in pages:
            doc = html_to_research_paper(page)
            RESEARCH_PAPER.validate(doc)

    def test_pipeline_compatible(self):
        from repro.core.pipeline import build_sc

        doc = html_to_research_paper("<h1>Wireless</h1><p>Mobile web browsing.</p>")
        sc = build_sc(doc)
        assert sc.size_bytes() > 0
