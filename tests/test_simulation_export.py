"""Tests for experiment-result persistence."""

import pytest

from repro.core.lod import LOD
from repro.simulation.export import dumps, load, loads, save
from repro.simulation.metrics import SeriesPoint


def sample_result():
    return {
        ("caching", 0.5): {
            0.1: [SeriesPoint(1.1, [4.0, 4.2, 4.1]), SeriesPoint(1.5, [3.9, 4.0])],
        },
        ("nocaching", 0.0): {
            0.5: [SeriesPoint(1.1, [80.0, 85.0])],
        },
    }


class TestRoundTrip:
    def test_nested_experiment_result(self):
        original = sample_result()
        restored = loads(dumps(original))
        assert set(restored) == set(original)
        point = restored[("caching", 0.5)][0.1][0]
        assert isinstance(point, SeriesPoint)
        assert point.x == 1.1
        assert point.samples == [4.0, 4.2, 4.1]
        assert point.mean == pytest.approx(original[("caching", 0.5)][0.1][0].mean)

    def test_lod_keys(self):
        original = {0.1: {LOD.PARAGRAPH: [SeriesPoint(0.2, [1.3])]}}
        restored = loads(dumps(original))
        assert LOD.PARAGRAPH in restored[0.1]

    def test_lod_values(self):
        assert loads(dumps([LOD.SECTION])) == [LOD.SECTION]

    def test_scalars_and_none(self):
        original = {"a": [1, 2.5, "x", None, True]}
        assert loads(dumps(original)) == original

    def test_float_keys_exact(self):
        original = {0.1 + 0.2: "value"}  # 0.30000000000000004
        restored = loads(dumps(original))
        assert list(restored) == [0.1 + 0.2]

    def test_stable_output(self):
        assert dumps(sample_result()) == dumps(sample_result())


class TestFiles:
    def test_save_and_load(self, tmp_path):
        path = save(sample_result(), tmp_path / "nested" / "result.json")
        assert path.exists()
        restored = load(path)
        assert ("nocaching", 0.0) in restored

    def test_unencodable_rejected(self):
        with pytest.raises(TypeError):
            dumps({"bad": object()})

    def test_boolean_key_rejected(self):
        with pytest.raises(TypeError):
            dumps({True: 1})


class TestExperimentIntegration:
    def test_experiment_output_round_trips(self):
        from repro.simulation.experiments import experiment3
        from repro.simulation.parameters import Parameters

        params = Parameters(documents_per_session=10, repetitions=2, max_rounds=8)
        result = experiment3(
            params, thresholds=(0.2,), alphas=(0.1,), lods=(LOD.DOCUMENT, LOD.PARAGRAPH)
        )
        restored = loads(dumps(result))
        assert restored[0.1][LOD.PARAGRAPH][0].mean == pytest.approx(
            result[0.1][LOD.PARAGRAPH][0].mean
        )
