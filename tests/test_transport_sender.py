"""Tests for the document sender and its content profiles."""

import pytest

from repro.coding.packets import Packetizer
from repro.core.information import annotate_sc
from repro.core.lod import LOD
from repro.core.multires import TransmissionSchedule
from repro.core.pipeline import build_sc
from repro.transport.sender import DocumentSender
from repro.xmlkit.parser import parse_xml

XML = """<paper>
  <title>Profile Paper</title>
  <section><title>Big</title>
    <paragraph>word word word word word word word word word word word
    word word word word word word word word word word word word word
    packet channel redundancy dispersal reconstruction bandwidth unit
    corruption retransmission caching content resolution browsing
    document wireless mobile network</paragraph>
  </section>
  <section><title>Small</title>
    <paragraph>tiny bit</paragraph>
  </section>
</paper>"""


def scheduled(lod=LOD.PARAGRAPH):
    sc = build_sc(parse_xml(XML))
    annotate_sc(sc)
    return TransmissionSchedule(sc, lod=lod, measure="ic")


class TestPrepare:
    def test_counts_match_packetizer(self):
        schedule = scheduled()
        packetizer = Packetizer(packet_size=64, redundancy_ratio=1.5)
        prepared = DocumentSender(packetizer).prepare("doc", schedule)
        assert prepared.m == packetizer.raw_packet_count(len(schedule.payload()))
        assert prepared.n == packetizer.cooked_packet_count(prepared.m)

    def test_empty_document_rejected(self):
        sender = DocumentSender()
        with pytest.raises(ValueError):
            sender.prepare_raw("doc", b"")

    def test_profile_length_and_total(self):
        schedule = scheduled()
        prepared = DocumentSender(Packetizer(packet_size=64)).prepare("doc", schedule)
        assert len(prepared.content_profile) == prepared.m
        assert sum(prepared.content_profile) == pytest.approx(1.0)

    def test_profile_matches_schedule_prefix(self):
        """Profile entries are exact increments of content_prefix."""
        schedule = scheduled()
        size = 64
        prepared = DocumentSender(Packetizer(packet_size=size)).prepare("doc", schedule)
        for index, share in enumerate(prepared.content_profile):
            expected = schedule.content_prefix(
                (index + 1) * size
            ) - schedule.content_prefix(index * size)
            assert share == pytest.approx(expected)

    def test_ranked_profile_frontloaded(self):
        """IC ranking puts the big section's packets first."""
        ranked = scheduled(LOD.SECTION)
        prepared = DocumentSender(Packetizer(packet_size=64)).prepare("doc", ranked)
        profile = prepared.content_profile
        first_half = sum(profile[: len(profile) // 2])
        assert first_half > 0.5

    def test_raw_profile_uniform(self):
        prepared = DocumentSender(Packetizer(packet_size=64)).prepare_raw(
            "doc", b"z" * 640
        )
        assert prepared.content_profile == pytest.approx([0.1] * 10)

    def test_frames_count(self):
        prepared = DocumentSender(Packetizer(packet_size=64)).prepare_raw(
            "doc", b"z" * 640
        )
        assert len(prepared.frames()) == prepared.n
