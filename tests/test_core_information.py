"""Tests for IC / QIC / MQIC — formulas and the additive-rule invariant."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.information import (
    ModifiedQueryIC,
    ProportionalIC,
    QueryIC,
    StaticIC,
    TfIdfIC,
    annotate_sc,
)
from repro.core.lod import LOD
from repro.core.pipeline import build_sc
from repro.core.query import Query
from repro.core.structure import OrganizationalUnit, StructuralCharacteristic
from repro.text.vector import OccurrenceVector
from repro.xmlkit.parser import parse_xml

PAPER_XML = """<paper>
  <title>Mobile Web Browsing</title>
  <abstract><paragraph>Browsing the mobile web needs bandwidth care.</paragraph></abstract>
  <section>
    <title>Transmission</title>
    <paragraph>Packets carry document units over wireless channels.</paragraph>
    <paragraph>Redundancy recovers corrupted packets without retransmission.</paragraph>
  </section>
  <section>
    <title>Caching</title>
    <subsection>
      <title>Client Storage</title>
      <paragraph>Caching intact packets in client storage helps recovery.</paragraph>
    </subsection>
  </section>
</paper>"""


def paper_sc():
    return build_sc(parse_xml(PAPER_XML))


def synthetic_sc(rng: random.Random, sections: int = 3, paragraphs: int = 3):
    """A random SC with keyword counts only in paragraphs (no titles)."""
    vocabulary = [f"kw{i}" for i in range(8)]
    root = OrganizationalUnit(LOD.DOCUMENT, "D")
    for s in range(sections):
        section = root.add_child(OrganizationalUnit(LOD.SECTION, str(s + 1)))
        for p in range(paragraphs):
            counts = {
                word: rng.randint(1, 5)
                for word in rng.sample(vocabulary, rng.randint(1, 4))
            }
            section.add_child(
                OrganizationalUnit(
                    LOD.PARAGRAPH, f"{s + 1}.{p + 1}", own_counts=counts
                )
            )
    return StructuralCharacteristic(root, OccurrenceVector(root.counts()))


class TestStaticIC:
    def test_document_value_is_one(self):
        sc = paper_sc()
        measure = StaticIC(sc)
        assert measure.value(sc.root) == pytest.approx(1.0)

    def test_additive_rule(self):
        """p_j = Σ_k p_{j,k} plus the unit's intrinsic (title) share."""
        sc = paper_sc()
        measure = StaticIC(sc)
        for unit in sc.root.walk():
            if unit.children:
                total = measure.value_own(unit) + sum(
                    measure.value(child) for child in unit.children
                )
                assert measure.value(unit) == pytest.approx(total)

    def test_values_in_unit_interval(self):
        sc = paper_sc()
        measure = StaticIC(sc)
        for unit in sc.root.walk():
            assert 0.0 <= measure.value(unit) <= 1.0 + 1e-12

    def test_additivity_random_trees(self):
        for seed in range(10):
            sc = synthetic_sc(random.Random(seed))
            measure = StaticIC(sc)
            assert measure.value(sc.root) == pytest.approx(1.0)
            for unit in sc.root.walk():
                if unit.children:
                    assert measure.value(unit) == pytest.approx(
                        sum(measure.value(c) for c in unit.children)
                    )

    def test_weight_formula_flows_through(self):
        # Single-paragraph document: paragraph IC = 1 regardless of weights.
        root = OrganizationalUnit(LOD.DOCUMENT, "D")
        section = root.add_child(OrganizationalUnit(LOD.SECTION, "1"))
        section.add_child(
            OrganizationalUnit(LOD.PARAGRAPH, "1.1", own_counts={"a": 2, "b": 1})
        )
        sc = StructuralCharacteristic(root, OccurrenceVector(root.counts()))
        assert StaticIC(sc).value(section) == pytest.approx(1.0)


class TestQueryIC:
    def test_zero_without_query_words(self):
        sc = paper_sc()
        query = Query("caching storage")
        qic = QueryIC(sc, query)
        transmission = sc.unit("1")
        assert qic.value(transmission) == 0.0

    def test_document_value_is_one_when_query_matches(self):
        sc = paper_sc()
        qic = QueryIC(sc, Query("caching"))
        assert qic.value(sc.root) == pytest.approx(1.0)

    def test_query_reranks_units(self):
        sc = paper_sc()
        static = StaticIC(sc)
        qic = QueryIC(sc, Query("caching storage"))
        caching_section = sc.unit("2")
        transmission_section = sc.unit("1")
        # Static IC favours the longer transmission section...
        assert static.value(transmission_section) > static.value(caching_section)
        # ...but the query flips the ranking.
        assert qic.value(caching_section) > qic.value(transmission_section)

    def test_no_overlap_yields_all_zero(self):
        sc = paper_sc()
        qic = QueryIC(sc, Query("zebra quantum"))
        for unit in sc.root.walk():
            assert qic.value(unit) == 0.0

    def test_additive_rule(self):
        sc = paper_sc()
        qic = QueryIC(sc, Query("browsing mobile web"))
        for unit in sc.root.walk():
            if unit.children:
                total = qic.value_own(unit) + sum(
                    qic.value(child) for child in unit.children
                )
                assert qic.value(unit) == pytest.approx(total)

    def test_repeated_query_word_changes_weights(self):
        """Repeating a word emphasizes it via the occurrence counts."""
        sc = paper_sc()
        plain = QueryIC(sc, Query("caching packets"))
        emphasized = QueryIC(sc, Query("caching caching packets"))
        caching_unit = sc.unit("2.1.1")
        transmission_unit = sc.unit("1.0.2")
        ratio_plain = plain.value(caching_unit) / max(plain.value(transmission_unit), 1e-12)
        ratio_emph = emphasized.value(caching_unit) / max(
            emphasized.value(transmission_unit), 1e-12
        )
        # With "caching" repeated, its weight drops relative to the
        # norm but the *other* word's weight rises; the relative
        # balance must change.
        assert ratio_plain != pytest.approx(ratio_emph)


class TestModifiedQueryIC:
    def test_scale_factor(self):
        sc = paper_sc()
        query = Query("browsing mobile web")
        mqic = ModifiedQueryIC(sc, query)
        assert mqic.scale == pytest.approx(
            sc.vector.total / query.total_occurrences()
        )

    def test_no_zero_for_units_without_query_words(self):
        sc = paper_sc()
        mqic = ModifiedQueryIC(sc, Query("caching storage"))
        transmission = sc.unit("1")
        assert mqic.value(transmission) > 0.0

    def test_document_value_is_one(self):
        sc = paper_sc()
        mqic = ModifiedQueryIC(sc, Query("caching"))
        assert mqic.value(sc.root) == pytest.approx(1.0)

    def test_additive_rule(self):
        sc = paper_sc()
        mqic = ModifiedQueryIC(sc, Query("browsing mobile web"))
        for unit in sc.root.walk():
            if unit.children:
                total = mqic.value_own(unit) + sum(
                    mqic.value(child) for child in unit.children
                )
                assert mqic.value(unit) == pytest.approx(total)


class TestAlternatives:
    def test_proportional_document_is_one(self):
        sc = paper_sc()
        assert ProportionalIC(sc).value(sc.root) == pytest.approx(1.0)

    def test_tfidf_requires_positive_corpus(self):
        sc = paper_sc()
        with pytest.raises(ValueError):
            TfIdfIC(sc, {}, corpus_size=0)

    def test_tfidf_rare_terms_weigh_more(self):
        sc = paper_sc()
        # "caching" rare in corpus, everything else common.
        df = {kw: 100 for kw in sc.vector}
        caching_lemma = [k for k in sc.vector if k.startswith("cach")][0]
        df[caching_lemma] = 1
        tfidf = TfIdfIC(sc, df, corpus_size=100)
        flat = TfIdfIC(sc, {kw: 100 for kw in sc.vector}, corpus_size=100)
        caching_section = sc.unit("2")
        assert tfidf.value(caching_section) > flat.value(caching_section)


class TestAnnotateSC:
    def test_all_measures_attached(self):
        sc = paper_sc()
        measures = annotate_sc(
            sc,
            query=Query("mobile web"),
            document_frequency={},
            corpus_size=10,
        )
        assert set(measures) == {"ic", "proportional", "qic", "mqic", "tfidf"}
        for unit in sc.root.walk():
            for name in measures:
                assert name in unit.content
                assert name in unit.own_content

    def test_without_query(self):
        sc = paper_sc()
        measures = annotate_sc(sc)
        assert "qic" not in measures
        assert "ic" in measures

    def test_empty_query_skipped(self):
        sc = paper_sc()
        measures = annotate_sc(sc, query=Query("the of and"))  # all stop words
        assert "qic" not in measures
