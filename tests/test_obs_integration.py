"""End-to-end telemetry tests: trace counts match protocol results.

The acceptance contract: ``python -m repro transfer … --trace t.jsonl``
followed by ``python -m repro obs-summary t.jsonl`` prints a timeline
whose round/frame counts exactly match the returned
:class:`TransferResult` fields — and the same holds for the oracle-mode
simulator and for direct library use.
"""

import random
import re

import pytest

from repro import obs
from repro.cli import main
from repro.coding.packets import Packetizer
from repro.data import draft_paper_path
from repro.obs import trace as tr
from repro.obs.summary import build_timelines
from repro.simulation.runner import simulate_transfer
from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.sender import DocumentSender
from repro.transport.session import transfer_document

DRAFT = str(draft_paper_path())


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable(reset=True)
    yield
    obs.disable(reset=True)


def _prepare(gamma=1.5):
    sender = DocumentSender(Packetizer(packet_size=128, redundancy_ratio=gamma))
    payload = draft_paper_path().read_bytes()
    return sender.prepare_raw("draft", payload)


class TestCliRoundTrip:
    def test_summary_counts_match_result(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        code = main(
            ["transfer", DRAFT, "--alpha", "0.25", "--cache",
             "--seed", "11", "--trace", str(trace_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        match = re.search(r"(\d+) round\(s\), (\d+) frames", out)
        assert match, out
        rounds, frames = int(match.group(1)), int(match.group(2))
        assert "seed=11" in out  # reproducibility echo

        # The trace agrees with the printed TransferResult.
        events = obs.load_jsonl(str(trace_path))
        (timeline,) = build_timelines(events)
        assert timeline.rounds == rounds
        assert timeline.frames == frames
        # Both via the protocol's own report and via raw event counts.
        assert len(timeline.rounds_list) == rounds
        assert timeline.frames_sent == frames

        # And obs-summary prints exactly those numbers.
        assert main(["obs-summary", str(trace_path)]) == 0
        summary = capsys.readouterr().out
        assert f"rounds={rounds} frames={frames}" in summary
        assert "== metrics ==" in summary  # snapshot embedded by --trace

    def test_cli_disables_telemetry_afterwards(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        main(["transfer", DRAFT, "--seed", "1", "--trace", str(trace_path)])
        capsys.readouterr()
        assert not obs.enabled()
        assert len(obs.OBS.trace) == 0

    def test_transfer_without_trace_leaves_no_telemetry(self, capsys):
        main(["transfer", DRAFT, "--seed", "1"])
        capsys.readouterr()
        assert not obs.enabled()
        assert len(obs.OBS.trace) == 0
        assert len(obs.OBS.metrics) == 0


class TestLibraryTransfers:
    @pytest.mark.parametrize("seed,alpha", [(0, 0.1), (7, 0.3), (42, 0.5)])
    def test_event_counts_match_result(self, seed, alpha):
        prepared = _prepare()
        channel = WirelessChannel(alpha=alpha, rng=random.Random(seed))
        obs.enable()
        result = transfer_document(prepared, channel, cache=PacketCache())
        events = [e.event for e in obs.OBS.trace.events]
        assert events.count(tr.ROUND_START) == result.rounds
        assert events.count(tr.FRAME_SENT) == result.frames_sent
        assert events.count(tr.TRANSFER_START) == 1
        assert events.count(tr.TRANSFER_COMPLETE) == 1
        if result.success:
            assert events.count(tr.DECODE_COMPLETE) == 1
        # CRC failures observed by the receiver equal the channel's
        # ground-truth corruption count (no silent miss).
        crc = obs.OBS.metrics.get("receiver.crc_failures")
        assert (crc.value if crc else 0) == channel.frames_corrupted

    def test_early_stop_emits_event(self):
        prepared = _prepare()
        channel = WirelessChannel(alpha=0.0, rng=random.Random(1))
        obs.enable()
        result = transfer_document(prepared, channel, relevance_threshold=0.2)
        assert result.terminated_early
        events = [e.event for e in obs.OBS.trace.events]
        assert events.count(tr.EARLY_STOP) == 1
        assert events.count(tr.DECODE_COMPLETE) == 0

    def test_failed_transfer_counts_stalls(self):
        prepared = _prepare(gamma=1.0)
        channel = WirelessChannel(alpha=0.9, rng=random.Random(2))
        obs.enable()
        result = transfer_document(prepared, channel, max_rounds=3)
        assert not result.success
        events = [e.event for e in obs.OBS.trace.events]
        assert events.count(tr.ROUND_START) == 3
        assert events.count(tr.ROUND_STALLED) == 3
        assert obs.OBS.metrics.get("transfer.stalls").value == 3

    def test_cache_hit_event_on_retransmission(self):
        prepared = _prepare(gamma=1.0)
        cache = PacketCache()
        channel = WirelessChannel(alpha=0.4, rng=random.Random(3))
        obs.enable()
        result = transfer_document(prepared, channel, cache=cache, max_rounds=50)
        assert result.success
        if result.rounds > 1:  # a stall happened: cached packets reloaded
            events = [e.event for e in obs.OBS.trace.events]
            assert events.count(tr.CACHE_HIT) >= 1


class TestSimulationRunner:
    def test_outcome_counts_match_events(self):
        obs.enable()
        outcome = simulate_transfer(
            m=20, n=30, alpha=0.3, packet_time=0.1,
            rng=random.Random(5), caching=True,
        )
        events = [e.event for e in obs.OBS.trace.events]
        assert events.count(tr.ROUND_START) == outcome.rounds
        (complete,) = [
            e for e in obs.OBS.trace.events if e.event == tr.TRANSFER_COMPLETE
        ]
        assert complete.fields["rounds"] == outcome.rounds
        assert complete.fields["frames"] == outcome.packets_sent
        assert obs.OBS.metrics.get("sim.packets_sent").value == outcome.packets_sent

    def test_disabled_runner_emits_nothing(self):
        simulate_transfer(
            m=20, n=30, alpha=0.3, packet_time=0.1,
            rng=random.Random(5), caching=True,
        )
        assert len(obs.OBS.trace) == 0
        assert len(obs.OBS.metrics) == 0

    def test_telemetry_does_not_perturb_rng_stream(self):
        """Enabling telemetry must not change simulated outcomes."""
        baseline = simulate_transfer(
            m=25, n=40, alpha=0.25, packet_time=0.1,
            rng=random.Random(9), caching=False,
        )
        obs.enable()
        traced = simulate_transfer(
            m=25, n=40, alpha=0.25, packet_time=0.1,
            rng=random.Random(9), caching=False,
        )
        assert traced == baseline


class TestTransportVsTrace:
    def test_transfer_results_identical_with_and_without_telemetry(self):
        """The byte-level protocol is telemetry-transparent."""
        prepared = _prepare()
        baseline = transfer_document(
            prepared, WirelessChannel(alpha=0.3, rng=random.Random(13)),
            cache=PacketCache(),
        )
        obs.enable()
        traced = transfer_document(
            prepared, WirelessChannel(alpha=0.3, rng=random.Random(13)),
            cache=PacketCache(),
        )
        assert traced == baseline
