"""Concurrency stress for :class:`~repro.prep.cache.ByteBudgetLRU`.

Tier-1: many threads hammer the full mutation API while auditors
repeatedly assert the byte gauge equals the recomputed ground truth
(``audit()`` holds the lock across both reads, so any transient drift
inside a mutation would be caught).  A deterministic single-threaded
phase then pins the exact LRU eviction order.
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.prep.cache import MISS, ByteBudgetLRU

THREADS = 8
OPS_PER_THREAD = 400
KEYSPACE = 48


class TestByteGaugeNeverDrifts:
    def _hammer(self, cache, seed, failures):
        rng = random.Random(seed)
        for _ in range(OPS_PER_THREAD):
            roll = rng.random()
            key = ("doc%d" % rng.randrange(6), rng.randrange(KEYSPACE))
            if roll < 0.45:
                cache.put(key, object(), rng.randrange(1, 200))
            elif roll < 0.70:
                cache.get(key)
            elif roll < 0.80:
                cache.discard(key)
            elif roll < 0.88:
                doc = "doc%d" % rng.randrange(6)
                cache.discard_where(lambda k, d=doc: k[0] == d)
            elif roll < 0.93:
                cache.peek(key)
            elif roll < 0.97:
                tracked, truth = cache.audit()
                if tracked != truth:
                    failures.append((tracked, truth))
            else:
                cache.clear()

    def test_mixed_mutations_keep_gauge_exact(self):
        cache = ByteBudgetLRU(budget_bytes=4096, name="stress")
        failures = []
        stop = threading.Event()

        def auditor():
            while not stop.is_set():
                tracked, truth = cache.audit()
                if tracked != truth:
                    failures.append((tracked, truth))

        watcher = threading.Thread(target=auditor, daemon=True)
        watcher.start()
        try:
            with ThreadPoolExecutor(max_workers=THREADS) as pool:
                for future in [
                    pool.submit(self._hammer, cache, seed, failures)
                    for seed in range(THREADS)
                ]:
                    future.result(timeout=60)
        finally:
            stop.set()
            watcher.join(timeout=10)
        assert not failures, f"byte gauge drifted: {failures[:5]}"
        tracked, truth = cache.audit()
        assert tracked == truth
        if cache.budget_bytes is not None:
            assert tracked <= cache.budget_bytes

    def test_unbudgeted_cache_survives_the_same_storm(self):
        cache = ByteBudgetLRU(budget_bytes=None, name="unbounded")
        failures = []
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for future in [
                pool.submit(self._hammer, cache, 100 + seed, failures)
                for seed in range(THREADS)
            ]:
                future.result(timeout=60)
        assert not failures
        tracked, truth = cache.audit()
        assert tracked == truth

    def test_concurrent_replacement_of_one_hot_key(self):
        # Replacing one key from many threads is the classic
        # double-subtract race; the gauge must come out exact.
        cache = ByteBudgetLRU(budget_bytes=None)
        barrier = threading.Barrier(THREADS)

        def replace(seed):
            rng = random.Random(seed)
            barrier.wait()
            for _ in range(500):
                cache.put("hot", seed, rng.randrange(1, 64))

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for future in [
                pool.submit(replace, seed) for seed in range(THREADS)
            ]:
                future.result(timeout=60)
        tracked, truth = cache.audit()
        assert tracked == truth
        assert len(cache) == 1


class TestLRUOrderHolds:
    def test_eviction_order_after_concurrent_phase(self):
        # Storm first (order is then unknowable), then take sole
        # ownership and verify recency is still tracked correctly.
        cache = ByteBudgetLRU(budget_bytes=300)
        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [
                pool.submit(
                    lambda seed: [
                        cache.put((seed, i), i, 10) for i in range(50)
                    ],
                    seed,
                )
                for seed in range(4)
            ]:
                future.result(timeout=60)

        cache.clear()
        for name in ("a", "b", "c"):
            cache.put(name, name, 100)
        assert cache.get("a") == "a"          # refresh a → LRU is b
        evicted = cache.put("d", "d", 100)
        assert evicted == ["b"]
        assert cache.get("b") is MISS
        assert cache.keys() == ["c", "a", "d"]
        evicted = cache.put("e", "e", 200)    # needs 2 evictions: c, a
        assert evicted == ["c", "a"]
        assert cache.keys() == ["d", "e"]
        tracked, truth = cache.audit()
        assert tracked == truth == 300
