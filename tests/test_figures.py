"""Tests for the per-table/figure reproduction entry points."""

import pytest

from repro.core.lod import LOD
from repro.figures import (
    TABLE1_QUERY,
    figure2,
    figure3,
    figure6,
    format_table,
    table1,
    table2,
)
from repro.simulation.parameters import Parameters


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table([("a", 1.5)], headers=("name", "value"))
        lines = text.splitlines()
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "1.50000" in lines[2]

    def test_empty_rows(self):
        text = format_table([], headers=("x",))
        assert "x" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1()

    def test_paper_like_structure(self, rows):
        labels = [label for label, *_ in rows]
        assert "0" in labels          # abstract as Section 0
        assert "1.0.1" in labels      # virtual-subsection paragraphs
        assert any(label.startswith("3.") for label in labels)

    def test_values_are_shares(self, rows):
        for _label, ic, qic, mqic in rows:
            assert 0.0 <= ic <= 1.0
            assert 0.0 <= qic <= 1.0
            assert 0.0 <= mqic <= 1.0

    def test_sections_sum_to_one(self, rows):
        top_level = [
            ic for label, ic, _q, _m in rows if "." not in label and "(" not in label
        ]
        # Sections plus the document title share account for all content.
        assert sum(top_level) == pytest.approx(1.0, abs=0.15)

    def test_query_zeroes_nonmatching_units(self, rows):
        """Like the paper's Table 1, some units have QIC = 0 but
        nonzero MQIC."""
        zero_qic = [
            (qic, mqic) for _label, _ic, qic, mqic in rows if qic == 0.0 and mqic > 0.0
        ]
        assert zero_qic

    def test_default_query_is_papers(self):
        assert TABLE1_QUERY == "browsing mobile web"

    def test_custom_document(self):
        rows = table1(
            "<paper><title>T</title><section><title>Only</title>"
            "<paragraph>mobile web words</paragraph></section></paper>"
        )
        assert rows


class TestFigure2:
    def test_structure(self):
        data = figure2(ms=(10, 50), alphas=(0.1, 0.5), successes=(0.95,))
        assert set(data) == {0.95}
        assert set(data[0.95]) == {0.1, 0.5}
        for series in data[0.95].values():
            assert [m for m, _n in series] == [10, 50]

    def test_n_grows_with_m_and_alpha(self):
        data = figure2(ms=(10, 100), alphas=(0.1, 0.5), successes=(0.95,))[0.95]
        assert data[0.1][0][1] < data[0.1][1][1]
        assert data[0.1][1][1] < data[0.5][1][1]


class TestFigure3:
    def test_band_contains_gamma(self):
        data = figure3(alphas=(0.1, 0.5), successes=(0.95,))
        panel = data[0.95]
        for alpha in (0.1, 0.5):
            low, high = panel["band"][alpha]
            assert low - 1e-9 <= panel["gamma"][alpha] <= high + 1e-9


class TestFigure6Quick:
    def test_shape(self):
        params = Parameters(documents_per_session=20, repetitions=2, max_rounds=10)
        results = figure6(
            params, thresholds=(0.2,), alphas=(0.1,), lods=(LOD.DOCUMENT, LOD.PARAGRAPH)
        )
        per_lod = results[0.1]
        assert per_lod[LOD.PARAGRAPH][0].mean >= per_lod[LOD.DOCUMENT][0].mean


class TestTable2:
    def test_matches_parameters(self):
        rows = dict(table2())
        assert rows["M (raw packets)"] == 40
        assert rows["N (cooked packets)"] == 60
        assert rows["B (bandwidth kbps)"] == 19.2
