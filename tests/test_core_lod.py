"""Tests for the LOD enum."""

from repro.core.lod import ALL_LODS, LOD


class TestOrdering:
    def test_coarse_to_fine(self):
        assert LOD.DOCUMENT < LOD.SECTION < LOD.SUBSECTION
        assert LOD.SUBSUBSECTION < LOD.PARAGRAPH

    def test_all_lods_sorted(self):
        assert list(ALL_LODS) == sorted(ALL_LODS)
        assert len(ALL_LODS) == 5


class TestNavigation:
    def test_finer(self):
        assert LOD.DOCUMENT.finer() is LOD.SECTION
        assert LOD.PARAGRAPH.finer() is None

    def test_coarser(self):
        assert LOD.PARAGRAPH.coarser() is LOD.SUBSUBSECTION
        assert LOD.DOCUMENT.coarser() is None

    def test_roundtrip(self):
        for lod in ALL_LODS[:-1]:
            assert lod.finer().coarser() is lod


class TestTagMapping:
    def test_from_tag(self):
        assert LOD.from_tag("paper") is LOD.DOCUMENT
        assert LOD.from_tag("section") is LOD.SECTION
        assert LOD.from_tag("paragraph") is LOD.PARAGRAPH

    def test_abstract_is_section_zero(self):
        """The paper's Table 1 treats the abstract as Section 0."""
        assert LOD.from_tag("abstract") is LOD.SECTION

    def test_unknown_tag(self):
        assert LOD.from_tag("figure") is None

    def test_tag_property_roundtrip(self):
        for lod in ALL_LODS:
            assert LOD.from_tag(lod.tag) is lod
