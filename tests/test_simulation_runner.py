"""Tests for the oracle-mode transfer simulator."""

import random

import pytest

from repro.core.lod import LOD
from repro.simulation.parameters import Parameters
from repro.simulation.runner import (
    repeated_sessions,
    simulate_session,
    simulate_transfer,
)

PACKET_TIME = 260 * 8 / 19200


class TestSingleTransfer:
    def test_clean_channel_exactly_m_packets(self):
        outcome = simulate_transfer(
            m=40, n=60, alpha=0.0, packet_time=PACKET_TIME,
            rng=random.Random(0), caching=True,
        )
        assert outcome.success
        assert outcome.packets_sent == 40
        assert outcome.response_time == pytest.approx(40 * PACKET_TIME)
        assert outcome.rounds == 1

    def test_lossy_channel_needs_more_packets(self):
        outcome = simulate_transfer(
            m=40, n=60, alpha=0.2, packet_time=PACKET_TIME,
            rng=random.Random(1), caching=True,
        )
        assert outcome.success
        assert outcome.packets_sent > 40

    def test_expected_packets_statistical(self):
        """Mean packets ≈ M/(1−α), the negative binomial expectation."""
        rng = random.Random(42)
        totals = []
        for _ in range(300):
            outcome = simulate_transfer(
                m=40, n=255, alpha=0.25, packet_time=1.0, rng=rng, caching=True,
            )
            totals.append(outcome.packets_sent)
        mean = sum(totals) / len(totals)
        assert mean == pytest.approx(40 / 0.75, rel=0.05)

    def test_stall_and_caching_recovery(self):
        # alpha=0.6 with n=m: guaranteed stalls; caching accumulates.
        outcome = simulate_transfer(
            m=20, n=20, alpha=0.6, packet_time=1.0,
            rng=random.Random(2), caching=True, max_rounds=100,
        )
        assert outcome.success
        assert outcome.rounds > 1

    def test_nocaching_fails_where_caching_succeeds(self):
        kwargs = dict(m=30, n=33, alpha=0.5, packet_time=1.0, max_rounds=30)
        caching = simulate_transfer(rng=random.Random(3), caching=True, **kwargs)
        nocaching = simulate_transfer(rng=random.Random(3), caching=False, **kwargs)
        assert caching.success
        assert caching.rounds < nocaching.rounds or not nocaching.success

    def test_max_rounds_bound(self):
        outcome = simulate_transfer(
            m=10, n=10, alpha=1.0, packet_time=1.0,
            rng=random.Random(4), caching=True, max_rounds=5,
        )
        assert not outcome.success
        assert outcome.rounds == 5
        assert outcome.packets_sent == 50


class TestEarlyTermination:
    def test_requires_profile(self):
        with pytest.raises(ValueError):
            simulate_transfer(
                m=4, n=6, alpha=0.0, packet_time=1.0,
                rng=random.Random(0), caching=True, relevance_threshold=0.5,
            )

    def test_threshold_zero_instant(self):
        outcome = simulate_transfer(
            m=4, n=6, alpha=0.0, packet_time=1.0,
            rng=random.Random(0), caching=True,
            relevance_threshold=0.0, content_profile=[0.25] * 4,
        )
        assert outcome.terminated_early
        assert outcome.packets_sent == 0

    def test_uniform_profile_proportional_stop(self):
        outcome = simulate_transfer(
            m=10, n=15, alpha=0.0, packet_time=1.0,
            rng=random.Random(0), caching=True,
            relevance_threshold=0.5, content_profile=[0.1] * 10,
        )
        assert outcome.terminated_early
        assert outcome.packets_sent == 5

    def test_frontloaded_profile_stops_sooner(self):
        frontloaded = [0.5, 0.3] + [0.2 / 8] * 8
        outcome = simulate_transfer(
            m=10, n=15, alpha=0.0, packet_time=1.0,
            rng=random.Random(0), caching=True,
            relevance_threshold=0.5, content_profile=frontloaded,
        )
        assert outcome.packets_sent == 1

    def test_reconstruction_satisfies_any_threshold(self):
        """Corrupted clear packets can starve the content accrual, but
        M intact packets of any kind reconstruct everything."""
        outcome = simulate_transfer(
            m=5, n=20, alpha=0.5, packet_time=1.0,
            rng=random.Random(7), caching=True,
            relevance_threshold=0.99, content_profile=[0.2] * 5,
        )
        assert outcome.success


class TestSession:
    def test_session_counts(self):
        params = Parameters(documents_per_session=30, max_rounds=10)
        result = simulate_session(params, random.Random(0), caching=True)
        assert result.mean_response_time > 0
        assert result.early_terminations <= 30

    def test_irrelevant_fraction_drives_early_stops(self):
        params = Parameters(documents_per_session=40, irrelevant=1.0, max_rounds=10)
        result = simulate_session(params, random.Random(1), caching=True)
        # All documents irrelevant with F=0.5: most stop early (a few
        # may reach reconstruction first under corruption).
        assert result.early_terminations > 30

    def test_relevant_only_no_early_stops(self):
        params = Parameters(documents_per_session=20, irrelevant=0.0, max_rounds=10)
        result = simulate_session(params, random.Random(2), caching=True)
        assert result.early_terminations == 0

    def test_finer_lod_faster_for_irrelevant(self):
        params = Parameters(
            documents_per_session=60, irrelevant=1.0, threshold=0.3, max_rounds=10
        )
        sequential = simulate_session(
            params, random.Random(3), caching=True, lod=LOD.DOCUMENT
        )
        ranked = simulate_session(
            params, random.Random(3), caching=True, lod=LOD.PARAGRAPH
        )
        assert ranked.mean_response_time < sequential.mean_response_time

    def test_collect_times(self):
        params = Parameters(documents_per_session=10, max_rounds=5)
        result = simulate_session(
            params, random.Random(4), caching=True, collect_times=True
        )
        assert len(result.response_times) == 10


class TestRepeatedSessions:
    def test_reproducible(self):
        params = Parameters(documents_per_session=10, repetitions=3, max_rounds=5)
        a = repeated_sessions(params, seed=7, caching=True)
        b = repeated_sessions(params, seed=7, caching=True)
        assert a == b
        assert len(a) == 3

    def test_different_seeds_differ(self):
        params = Parameters(documents_per_session=10, repetitions=3, max_rounds=5)
        assert repeated_sessions(params, 1, True) != repeated_sessions(params, 2, True)
