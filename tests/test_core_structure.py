"""Tests for organizational units and the SC tree."""

import pytest

from repro.core.lod import LOD
from repro.core.structure import OrganizationalUnit, StructuralCharacteristic
from repro.text.vector import OccurrenceVector


def build_tree():
    """paper -> 2 sections -> (2, 1) subsections -> paragraphs."""
    root = OrganizationalUnit(LOD.DOCUMENT, "D", title="T", payload=b"T")
    s1 = root.add_child(
        OrganizationalUnit(LOD.SECTION, "1", title="S1", own_counts={"web": 1}, payload=b"S1")
    )
    s2 = root.add_child(OrganizationalUnit(LOD.SECTION, "2", title="S2"))
    ss11 = s1.add_child(OrganizationalUnit(LOD.SUBSECTION, "1.1"))
    ss12 = s1.add_child(OrganizationalUnit(LOD.SUBSECTION, "1.2"))
    ss21 = s2.add_child(OrganizationalUnit(LOD.SUBSECTION, "2.1"))
    ss11.add_child(
        OrganizationalUnit(LOD.PARAGRAPH, "1.1.1", own_counts={"web": 2, "mobile": 1}, payload=b"p111")
    )
    ss12.add_child(
        OrganizationalUnit(LOD.PARAGRAPH, "1.2.1", own_counts={"mobile": 3}, payload=b"p121")
    )
    ss21.add_child(
        OrganizationalUnit(LOD.PARAGRAPH, "2.1.1", own_counts={"cache": 5}, payload=b"p211")
    )
    return root


class TestTreeConstruction:
    def test_child_lod_must_be_finer(self):
        root = OrganizationalUnit(LOD.SECTION, "1")
        with pytest.raises(ValueError):
            root.add_child(OrganizationalUnit(LOD.SECTION, "2"))
        with pytest.raises(ValueError):
            root.add_child(OrganizationalUnit(LOD.DOCUMENT, "D"))

    def test_parent_pointers(self):
        root = build_tree()
        for unit in root.walk():
            for child in unit.children:
                assert child.parent is unit


class TestAggregation:
    def test_counts_aggregate_subtree(self):
        root = build_tree()
        counts = root.counts()
        assert counts == {"web": 3, "mobile": 4, "cache": 5}

    def test_counts_cache_invalidated_on_mutation(self):
        root = build_tree()
        _ = root.counts()
        section = root.children[0]
        section.add_child(
            OrganizationalUnit(LOD.PARAGRAPH, "1.9", own_counts={"new": 7})
        )
        assert root.counts()["new"] == 7

    def test_size_bytes(self):
        root = build_tree()
        assert root.size_bytes() == len(b"T" + b"S1" + b"p111" + b"p121" + b"p211")

    def test_subtree_payload_document_order(self):
        root = build_tree()
        assert root.subtree_payload() == b"TS1p111p121p211"


class TestUnitsAt:
    def test_document_lod_is_root(self):
        root = build_tree()
        assert root.units_at(LOD.DOCUMENT) == [root]

    def test_section_lod(self):
        root = build_tree()
        units = root.units_at(LOD.SECTION)
        # Root's own title text surfaces as an intrinsic leaf view.
        labels = [u.label for u in units]
        assert "1" in labels and "2" in labels
        assert any("(title)" in label for label in labels)

    def test_paragraph_lod_reaches_leaves(self):
        root = build_tree()
        labels = {u.label for u in root.units_at(LOD.PARAGRAPH)}
        assert {"1.1.1", "1.2.1", "2.1.1"} <= labels

    def test_childless_coarse_unit_stands_for_itself(self):
        root = OrganizationalUnit(LOD.DOCUMENT, "D")
        section = root.add_child(OrganizationalUnit(LOD.SECTION, "1", payload=b"x"))
        units = root.units_at(LOD.PARAGRAPH)
        assert units == [section]

    def test_intrinsic_view_shares_payload_and_counts(self):
        root = build_tree()
        views = [u for u in root.units_at(LOD.PARAGRAPH) if "(title)" in u.label]
        by_label = {v.label: v for v in views}
        s1_view = by_label["1(title)"]
        assert s1_view.payload == b"S1"
        assert s1_view.own_counts == {"web": 1}
        assert not s1_view.children


class TestStructuralCharacteristic:
    def make_sc(self):
        root = build_tree()
        return StructuralCharacteristic(root, OccurrenceVector(root.counts()))

    def test_root_must_be_document(self):
        unit = OrganizationalUnit(LOD.SECTION, "1")
        with pytest.raises(ValueError):
            StructuralCharacteristic(unit, OccurrenceVector({"a": 1}))

    def test_unit_lookup(self):
        sc = self.make_sc()
        assert sc.unit("1.2.1") is not None
        assert sc.unit("9.9") is None

    def test_paragraphs(self):
        sc = self.make_sc()
        assert len(sc.paragraphs()) == 3

    def test_annotate_and_table(self):
        sc = self.make_sc()
        sc.annotate("const", lambda unit: 0.5)
        table = sc.content_table("const")
        assert all(value == 0.5 for _label, value in table)
        assert len(table) == sum(1 for _ in sc.root.walk())

    def test_annotate_own_default(self):
        sc = self.make_sc()
        sc.annotate("m", lambda unit: 1.0)
        leaf = sc.unit("1.1.1")
        inner = sc.unit("1")
        assert leaf.own_content["m"] == 1.0   # leaves copy
        assert inner.own_content["m"] == 0.0  # inner units default to 0
