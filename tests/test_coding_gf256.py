"""Field-axiom tests for GF(2^8) arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.coding.gf256 import (
    FIELD_SIZE,
    gf_add,
    gf_div,
    gf_dot,
    gf_inv,
    gf_mul,
    gf_mul_bytes,
    gf_pow,
    gf_sub,
)

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestAdditiveGroup:
    @given(elements, elements)
    def test_commutative(self, a, b):
        assert gf_add(a, b) == gf_add(b, a)

    @given(elements)
    def test_self_inverse(self, a):
        assert gf_add(a, a) == 0
        assert gf_sub(a, a) == 0

    @given(elements)
    def test_zero_identity(self, a):
        assert gf_add(a, 0) == a


class TestMultiplicativeGroup:
    @given(elements, elements)
    def test_commutative(self, a, b):
        assert gf_mul(a, b) == gf_mul(b, a)

    @given(elements, elements, elements)
    def test_associative(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(elements)
    def test_one_identity(self, a):
        assert gf_mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf_mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf_mul(a, gf_inv(a)) == 1

    @given(elements, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf_div(a, b) == gf_mul(a, gf_inv(b))

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)
        with pytest.raises(ZeroDivisionError):
            gf_div(1, 0)


class TestDistributivity:
    @given(elements, elements, elements)
    def test_left_distributive(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))


class TestPow:
    @given(nonzero, st.integers(min_value=0, max_value=510))
    def test_pow_matches_repeated_mul(self, a, k):
        expected = 1
        for _ in range(k % 255):
            expected = gf_mul(expected, a)
        # a^k == a^(k mod 255) for nonzero a (multiplicative order 255).
        assert gf_pow(a, k % 255) == expected

    def test_zero_cases(self):
        assert gf_pow(0, 0) == 1
        assert gf_pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            gf_pow(0, -1)

    @given(nonzero)
    def test_negative_exponent(self, a):
        assert gf_pow(a, -1) == gf_inv(a)


class TestFieldIsComplete:
    def test_multiplicative_group_is_cyclic_of_order_255(self):
        """The generator 2 must enumerate all 255 nonzero elements."""
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = gf_mul(value, 2)
        assert len(seen) == 255
        assert value == 1  # full cycle


class TestVectorHelpers:
    @given(st.lists(elements, min_size=1, max_size=16))
    def test_dot_against_manual(self, row):
        column = [gf_add(v, 1) for v in row]
        manual = 0
        for a, b in zip(row, column):
            manual ^= gf_mul(a, b)
        assert gf_dot(row, column) == manual

    def test_dot_length_mismatch(self):
        with pytest.raises(ValueError):
            gf_dot([1, 2], [1])

    @given(elements, st.binary(min_size=0, max_size=64))
    def test_mul_bytes_matches_scalar_mul(self, scalar, data):
        result = gf_mul_bytes(scalar, data)
        assert len(result) == len(data)
        for original, scaled in zip(data, result):
            assert scaled == gf_mul(scalar, original)
