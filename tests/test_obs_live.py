"""Tier-1 tests for the live-operations observability pieces.

Socket-free: :class:`TraceContext` wire round-trips, the flight
recorder's bounded ring, the rolling SLO tracker, the Prometheus text
exposition, and the trace recorder's transfer-ID override.
"""

import pytest

from repro import obs
from repro.obs import (
    DEFAULT_FLIGHT_EVENTS,
    FlightRecorder,
    MetricsRegistry,
    SLOTracker,
    TraceContext,
    mint_transfer_id,
    prometheus_name,
    valid_trace_id,
)
from repro.obs.trace import NET_CONN_OPEN, TraceRecorder


class TestTraceContext:
    def test_mint_is_wire_safe_and_unique(self):
        first, second = TraceContext.mint(), TraceContext.mint()
        assert valid_trace_id(first.transfer_id)
        assert first.transfer_id != second.transfer_id
        assert first.span_id is None

    def test_next_connection_counts_spans(self):
        ctx = TraceContext("abc123")
        assert ctx.next_connection() == "abc123.c1"
        assert ctx.next_connection() == "abc123.c2"
        assert ctx.transfer_id == "abc123"

    def test_wire_roundtrip(self):
        ctx = TraceContext.mint()
        ctx.next_connection()
        parsed = TraceContext.from_wire(ctx.to_wire())
        assert parsed is not None
        assert parsed.transfer_id == ctx.transfer_id
        assert parsed.span_id == ctx.span_id

    def test_wire_without_span(self):
        parsed = TraceContext.from_wire({"xfer": "abc"})
        assert parsed is not None
        assert parsed.transfer_id == "abc"
        assert parsed.span_id is None

    @pytest.mark.parametrize(
        "junk",
        [
            None,
            "a-string",
            42,
            [],
            {},
            {"xfer": ""},
            {"xfer": 17},
            {"xfer": "has spaces"},
            {"xfer": "x" * 65},
            {"xfer": 'inj"ect'},
        ],
    )
    def test_from_wire_rejects_junk(self, junk):
        assert TraceContext.from_wire(junk) is None

    def test_junk_span_is_dropped_not_fatal(self):
        parsed = TraceContext.from_wire({"xfer": "ok-id", "span": "bad span"})
        assert parsed is not None
        assert parsed.transfer_id == "ok-id"
        assert parsed.span_id is None

    def test_invalid_constructor_args_raise(self):
        with pytest.raises(ValueError):
            TraceContext("not valid!")
        with pytest.raises(ValueError):
            TraceContext("ok", span_id="bad span")

    def test_mint_transfer_id_shape(self):
        tid = mint_transfer_id()
        assert len(tid) == 16
        assert valid_trace_id(tid)


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        ring = FlightRecorder(capacity=4)
        for index in range(10):
            ring.record("evt", index=index)
        assert len(ring) == 4
        assert ring.recorded == 10
        assert ring.dropped == 6
        kept = [event["index"] for event in ring.snapshot()]
        assert kept == [6, 7, 8, 9]  # oldest fell off first

    def test_dump_shape(self):
        ring = FlightRecorder(capacity=8)
        ring.record("hello", doc="doc")
        ring.record("round", round=1, sent=12)
        dump = ring.dump("client_gone")
        assert dump["reason"] == "client_gone"
        assert dump["recorded"] == 2
        assert dump["dropped"] == 0
        assert [event["event"] for event in dump["events"]] == ["hello", "round"]
        assert all("ts" in event for event in dump["events"])

    def test_timestamps_monotonic(self):
        ring = FlightRecorder()
        ring.record("a")
        ring.record("b")
        first, second = ring.snapshot()
        assert second["ts"] >= first["ts"] >= 0.0

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_FLIGHT_EVENTS

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSLOTracker:
    def test_clean_window(self):
        slo = SLOTracker(target_seconds=1.0, error_budget=0.1, window=16)
        for _ in range(8):
            slo.observe(0.1, ok=True)
        assert slo.error_rate == 0.0
        assert slo.error_budget_remaining == 1.0
        report = slo.report()
        assert report["count"] == 8
        assert report["errors"] == 0
        assert report["over_target"] == 0

    def test_percentiles_over_window(self):
        slo = SLOTracker(window=100)
        for index in range(1, 101):
            slo.observe(index / 100.0)
        report = slo.report()
        assert report["p50_seconds"] == pytest.approx(0.50, abs=0.02)
        assert report["p95_seconds"] == pytest.approx(0.95, abs=0.02)
        assert report["p99_seconds"] == pytest.approx(0.99, abs=0.02)
        assert report["mean_seconds"] == pytest.approx(0.505, abs=0.01)

    def test_error_budget_burns_down_to_zero(self):
        slo = SLOTracker(error_budget=0.5, window=10)
        for _ in range(5):
            slo.observe(0.1, ok=True)
        for _ in range(5):
            slo.observe(0.1, ok=False)
        # error rate 0.5 == budget: fully spent, clamped at zero.
        assert slo.error_rate == pytest.approx(0.5)
        assert slo.error_budget_remaining == 0.0

    def test_window_ages_out_old_traffic(self):
        slo = SLOTracker(error_budget=0.5, window=4)
        for _ in range(4):
            slo.observe(0.1, ok=False)
        assert slo.error_budget_remaining == 0.0
        for _ in range(4):
            slo.observe(0.1, ok=True)
        # The failures aged out; lifetime totals still remember them.
        assert slo.error_rate == 0.0
        assert slo.error_budget_remaining == 1.0
        assert slo.total_errors == 4
        assert slo.total_observed == 8

    def test_over_target_counts_slow_successes(self):
        slo = SLOTracker(target_seconds=1.0)
        slo.observe(0.5, ok=True)
        slo.observe(2.0, ok=True)
        assert slo.report()["over_target"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOTracker(target_seconds=0)
        with pytest.raises(ValueError):
            SLOTracker(error_budget=0.0)
        with pytest.raises(ValueError):
            SLOTracker(error_budget=1.5)
        with pytest.raises(ValueError):
            SLOTracker(window=0)

    def test_obs_mirroring_when_enabled(self):
        obs.enable()
        try:
            slo = SLOTracker()
            slo.observe(0.1, ok=True)
            slo.observe(0.2, ok=False)
            slo.report()
            metrics = obs.OBS.metrics
            counter = metrics.get("slo.observations")
            assert counter is not None
            assert counter.total == 2
            assert metrics.get("slo.error_budget_remaining") is not None
        finally:
            obs.disable(reset=True)


class TestPrometheusExposition:
    def test_name_sanitization(self):
        assert prometheus_name("net.frames_sent") == "net_frames_sent"
        assert prometheus_name("9lives") == "_9lives"
        assert prometheus_name("a-b c") == "a_b_c"

    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("net.frames", "frames moved").inc(3)
        registry.gauge("net.active").set(2)
        text = registry.render_prometheus()
        assert "# HELP net_frames frames moved" in text
        assert "# TYPE net_frames counter" in text
        assert "net_frames 3" in text
        assert "# TYPE net_active gauge" in text
        assert "net_active 2" in text
        assert text.endswith("\n")

    def test_labeled_children(self):
        registry = MetricsRegistry()
        family = registry.counter("fetches")
        family.labels(outcome="ok").inc(5)
        family.labels(outcome="failed").inc(1)
        text = registry.render_prometheus()
        assert 'fetches{outcome="ok"} 5' in text
        assert 'fetches{outcome="failed"} 1' in text
        # Pure family node (no direct observations) renders no bare line.
        assert "\nfetches 0" not in text

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 5.55" in text

    def test_prefix(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        text = registry.render_prometheus(prefix="repro.")
        assert "repro_x 1" in text

    def test_empty_registry(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestTransferIdOverride:
    def test_emit_override_does_not_disturb_scope(self):
        recorder = TraceRecorder()
        recorder.begin_transfer(document="doc")
        scoped = recorder.current_transfer
        record = recorder.emit(NET_CONN_OPEN, transfer_id="wire-id", document="doc")
        assert record.transfer == "wire-id"
        assert recorder.current_transfer == scoped
        assert recorder.emit("plain").transfer == scoped

    def test_begin_transfer_adopts_given_id(self):
        recorder = TraceRecorder()
        tid = recorder.begin_transfer(document="doc", transfer_id="abc.def")
        assert tid == "abc.def"
        assert recorder.current_transfer == "abc.def"
        assert recorder.events[0].transfer == "abc.def"

    def test_begin_transfer_still_mints_without_id(self):
        recorder = TraceRecorder()
        assert recorder.begin_transfer(document="doc") == "t1"
        assert recorder.begin_transfer(document="doc") == "t2"
