"""Tests for content-driven prefetching."""

import random

import pytest

from repro.coding.packets import Packetizer
from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.prefetch import PrefetchCandidate, Prefetcher
from repro.transport.sender import DocumentSender
from repro.transport.session import transfer_document


def make_candidates(count=3, size=2048):
    sender = DocumentSender(Packetizer(packet_size=256, redundancy_ratio=1.5))
    candidates = []
    for index in range(count):
        payload = bytes([index + 1]) * size
        prepared = sender.prepare_raw(f"doc{index}", payload)
        candidates.append(PrefetchCandidate(prepared=prepared, score=float(index)))
    return candidates


class TestGreedyOrder:
    def test_highest_score_first(self):
        cache = PacketCache()
        prefetcher = Prefetcher(cache)
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        candidates = make_candidates(3)
        # Budget for roughly one document only (m=8 packets + slack).
        one_doc_time = 9 * channel.transmission_time(260)
        report = prefetcher.run_idle_window(candidates, channel, one_doc_time)
        assert report.fetched == ["doc2"]  # score 2.0 wins

    def test_window_respected(self):
        cache = PacketCache()
        prefetcher = Prefetcher(cache)
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        report = prefetcher.run_idle_window(make_candidates(3), channel, 0.5)
        assert report.air_time_used <= 0.5 + 1e-9

    def test_partial_fetch_cached(self):
        cache = PacketCache()
        prefetcher = Prefetcher(cache)
        channel = WirelessChannel(alpha=0.0, rng=random.Random(0))
        # Tiny budget: only a couple of packets fit.
        report = prefetcher.run_idle_window(
            make_candidates(1), channel, 3 * channel.transmission_time(260)
        )
        assert report.partial == ["doc0"]
        assert cache.packet_count("doc0") > 0


class TestCacheSynergy:
    def test_prefetched_document_needs_no_air_time(self):
        cache = PacketCache()
        prefetcher = Prefetcher(cache)
        channel = WirelessChannel(alpha=0.0, rng=random.Random(1))
        candidates = make_candidates(1)
        report = prefetcher.run_idle_window(candidates, channel, 60.0)
        assert report.fetched == ["doc0"]

        # The explicit request afterwards completes without new frames.
        result = transfer_document(candidates[0].prepared, channel, cache=cache)
        assert result.success
        assert result.frames_sent == 0
        assert result.response_time == 0.0

    def test_already_cached_candidate_skipped(self):
        cache = PacketCache()
        prefetcher = Prefetcher(cache)
        channel = WirelessChannel(alpha=0.0, rng=random.Random(2))
        candidates = make_candidates(1)
        prefetcher.run_idle_window(candidates, channel, 60.0)
        frames_before = channel.frames_sent
        report = prefetcher.run_idle_window(candidates, channel, 60.0)
        assert report.fetched == ["doc0"]
        assert channel.frames_sent == frames_before  # nothing re-sent


class TestLossyPrefetch:
    def test_corruption_tolerated(self):
        cache = PacketCache()
        prefetcher = Prefetcher(cache)
        channel = WirelessChannel(alpha=0.1, rng=random.Random(3))
        report = prefetcher.run_idle_window(make_candidates(2), channel, 120.0)
        # The single prefetch pass has gamma=1.5 headroom; at alpha=0.1
        # both documents complete.  A document may land in `partial`
        # only if the round was unlucky beyond the redundancy.
        assert set(report.fetched) == {"doc1", "doc0"}

    def test_validation(self):
        prefetcher = Prefetcher(PacketCache())
        with pytest.raises(ValueError):
            prefetcher.run_idle_window([], WirelessChannel(), 0.0)
