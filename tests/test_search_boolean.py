"""Tests for the boolean query language."""

import pytest

from repro.search.boolean import (
    BooleanQueryParser,
    QuerySyntaxError,
    evaluate_boolean,
)
from repro.search.index import InvertedIndex
from repro.text.lemmatizer import Lemmatizer


def build_index():
    index = InvertedIndex()
    lem = Lemmatizer()
    corpus = {
        "d1": "mobile web browsing wireless",
        "d2": "mobile database caching",
        "d3": "web caching proxy",
        "d4": "energy disk spindown",
    }
    for doc_id, words in corpus.items():
        counts = {}
        for word in words.split():
            lemma = lem.lemma(word)
            counts[lemma] = counts.get(lemma, 0) + 1
        index.add_document(doc_id, counts)
    return index


INDEX = build_index()
UNIVERSE = {"d1", "d2", "d3", "d4"}


def query(text):
    return evaluate_boolean(text, INDEX, UNIVERSE)


class TestBasicOperators:
    def test_single_term(self):
        assert query("mobile") == {"d1", "d2"}

    def test_lemmatized_term(self):
        assert query("browsing") == {"d1"}
        assert query("browsers") == set()  # different lemma, absent

    def test_and(self):
        assert query("mobile AND caching") == {"d2"}

    def test_implicit_and(self):
        assert query("mobile caching") == {"d2"}

    def test_or(self):
        assert query("browsing OR proxy") == {"d1", "d3"}

    def test_not(self):
        assert query("NOT mobile") == {"d3", "d4"}

    def test_and_not(self):
        assert query("caching AND NOT mobile") == {"d3"}

    def test_case_insensitive_operators(self):
        assert query("mobile and caching") == {"d2"}
        assert query("browsing or proxy") == {"d1", "d3"}


class TestPrecedenceAndGrouping:
    def test_not_binds_tightest(self):
        # NOT mobile AND caching == (NOT mobile) AND caching
        assert query("NOT mobile AND caching") == {"d3"}

    def test_and_binds_tighter_than_or(self):
        # web AND caching OR energy == (web AND caching) OR energy
        assert query("web AND caching OR energy") == {"d3", "d4"}

    def test_parentheses_override(self):
        assert query("web AND (caching OR energy)") == {"d3"}

    def test_nested_parentheses(self):
        assert query("((mobile)) AND ((web) OR (database))") == {"d1", "d2"}

    def test_double_negation(self):
        assert query("NOT NOT mobile") == {"d1", "d2"}


class TestPhrases:
    def test_phrase_as_conjunction(self):
        assert query('"mobile web"') == {"d1"}

    def test_phrase_combined(self):
        assert query('"mobile web" OR database') == {"d1", "d2"}

    def test_empty_phrase(self):
        assert query('""') == set()


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "(mobile",
            "mobile)",
            "AND mobile",
            "mobile AND",
            "NOT",
            "mobile OR",
            "()",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            BooleanQueryParser().parse(bad)

    def test_unknown_term_matches_nothing(self):
        assert query("zeppelin") == set()
        assert query("NOT zeppelin") == UNIVERSE


class TestEngineIntegration:
    def test_search_boolean_filters_and_ranks(self):
        from repro.search.engine import SearchEngine
        from repro.xmlkit.parser import parse_xml

        engine = SearchEngine()
        for doc_id, words in [
            ("a", "mobile web browsing over wireless links"),
            ("b", "mobile database caching for disconnection"),
            ("c", "web proxy caching architecture"),
        ]:
            engine.add_document(
                doc_id,
                parse_xml(
                    f"<paper><title>{doc_id}</title><section><title>S</title>"
                    f"<paragraph>{words}</paragraph></section></paper>"
                ),
            )
        hits = engine.search_boolean("caching AND NOT database")
        assert [h.document_id for h in hits] == ["c"]
        # QIC annotated from the positive terms.
        assert "qic" in hits[0].sc.root.content

    def test_search_boolean_no_match(self):
        from repro.search.engine import SearchEngine

        engine = SearchEngine()
        assert engine.search_boolean("anything") == []
