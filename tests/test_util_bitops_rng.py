"""Tests for repro.util.bitops and repro.util.rngtools."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.util.bitops import chunk_bytes, pad_to_multiple, xor_bytes
from repro.util.rngtools import derive_rng, spawn_rngs


class TestXorBytes:
    def test_basic(self):
        assert xor_bytes(b"\x00\xff", b"\xff\xff") == b"\xff\x00"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")

    @given(st.binary(min_size=0, max_size=64))
    def test_self_inverse(self, data):
        key = bytes((b + 7) % 256 for b in data)
        assert xor_bytes(xor_bytes(data, key), key) == data


class TestPadToMultiple:
    def test_aligned_unchanged(self):
        assert pad_to_multiple(b"abcd", 4) == b"abcd"

    def test_pads_short(self):
        assert pad_to_multiple(b"abc", 4) == b"abc\x00"

    def test_custom_fill(self):
        assert pad_to_multiple(b"a", 3, fill=0x20) == b"a  "

    def test_empty(self):
        assert pad_to_multiple(b"", 8) == b""

    @given(st.binary(max_size=100), st.integers(min_value=1, max_value=32))
    def test_result_always_aligned(self, data, block):
        assert len(pad_to_multiple(data, block)) % block == 0


class TestChunkBytes:
    def test_even_split(self):
        assert chunk_bytes(b"abcdef", 2) == [b"ab", b"cd", b"ef"]

    def test_ragged_tail(self):
        assert chunk_bytes(b"abcde", 2) == [b"ab", b"cd", b"e"]

    def test_empty(self):
        assert chunk_bytes(b"", 4) == []

    @given(st.binary(max_size=200), st.integers(min_value=1, max_value=17))
    def test_concatenation_roundtrips(self, data, size):
        assert b"".join(chunk_bytes(data, size)) == data


class TestRngTools:
    def test_derive_is_deterministic(self):
        a = derive_rng(random.Random(1), "label")
        b = derive_rng(random.Random(1), "label")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_labels_decorrelate(self):
        parent = random.Random(1)
        a = derive_rng(parent, "alpha")
        parent = random.Random(1)
        b = derive_rng(parent, "beta")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_spawn_counts(self):
        rngs = spawn_rngs(42, ["a", "b", "c"])
        assert len(rngs) == 3
        streams = [tuple(r.random() for _ in range(3)) for r in rngs]
        assert len(set(streams)) == 3
