"""Cross-layer parity: one seeded model, identical schedules everywhere.

The refactor's core promise — every consumer calls ``decide()`` exactly
once per frame and never draws from the model's RNG itself — means a
seeded :class:`~repro.channel.ChannelModel` yields the *same* verdict
schedule whether it is consumed by the event-level
:class:`~repro.protocol.FaultInjector`, the simulated
:class:`~repro.transport.channel.ModelChannel`, or the byte-level
:class:`~repro.net.chaos.ChaosProxy`.  These tests pin that for all
three model families (i.i.d., Gilbert–Elliott, trace).

The socket half is ``net``-marked; the event/byte-simulation half runs
in tier 1.
"""

import asyncio
import random

import pytest

from repro.channel import (
    CORRUPT,
    DISCONNECT,
    DROP,
    GilbertElliottModel,
    IIDModel,
    RecordingModel,
    TraceModel,
    TraceSegment,
)
from repro.protocol import FaultInjector, FrameCorrupt, FrameDelivered, FrameLost
from repro.transport.channel import ModelChannel


def iid_factory(seed):
    return IIDModel(
        rng=random.Random(seed), drop=0.1, corrupt=0.15, disconnect=0.02,
        outage_events=3,
    )


def gilbert_factory(seed):
    return GilbertElliottModel.matched_to_alpha(
        0.2, burst_length=5.0, rng=random.Random(seed)
    )


def trace_factory(seed):
    return TraceModel(
        [
            TraceSegment(frames=20, corrupt=0.1, bandwidth_kbps=19.2),
            TraceSegment(frames=4, outage=True),
            TraceSegment(frames=30, drop=0.2, corrupt=0.3, bandwidth_kbps=4.8),
        ],
        rng=random.Random(seed),
        repeat=True,
    )


MODEL_FACTORIES = [iid_factory, gilbert_factory, trace_factory]
FACTORY_IDS = ["iid", "gilbert", "trace"]


def reference_schedule(factory, seed, frames):
    """The ground truth: the model consumed directly, no layer at all."""
    model = factory(seed)
    return [model.decide() for _ in range(frames)]


@pytest.mark.parametrize("factory", MODEL_FACTORIES, ids=FACTORY_IDS)
def test_fault_injector_consumes_the_exact_schedule(factory):
    """Event layer: inject() maps verdicts 1:1 onto typed events."""
    seed = 1234
    recorder = RecordingModel(factory(seed))
    # inject() never touches the engine, so none is needed here.
    injector = FaultInjector(None, model=recorder)
    events = [injector.inject(FrameDelivered(seq)) for seq in range(200)]
    assert recorder.verdicts == reference_schedule(factory, seed, 200)
    for seq, (event, verdict) in enumerate(zip(events, recorder.verdicts)):
        if verdict == CORRUPT:
            assert event == FrameCorrupt(seq)
        elif verdict in (DROP, DISCONNECT):
            assert event == FrameLost(seq)
        else:
            assert event == FrameDelivered(seq)


@pytest.mark.parametrize("factory", MODEL_FACTORIES, ids=FACTORY_IDS)
def test_simulated_channel_consumes_the_exact_schedule(factory):
    """Byte-simulation layer: ModelChannel's delivery mirrors decide()."""
    seed = 987
    recorder = RecordingModel(factory(seed))
    channel = ModelChannel(recorder, bandwidth_kbps=19.2, rng=random.Random(1))
    deliveries = [channel.send(bytes([seq % 256]) * 32) for seq in range(200)]
    assert recorder.verdicts == reference_schedule(factory, seed, 200)
    for delivery, verdict in zip(deliveries, recorder.verdicts):
        if verdict in (DROP, DISCONNECT):
            assert delivery.lost
        elif verdict == CORRUPT:
            assert delivery.corrupted and not delivery.lost
        else:
            assert not delivery.lost and not delivery.corrupted


@pytest.mark.net
@pytest.mark.parametrize("factory", MODEL_FACTORIES, ids=FACTORY_IDS)
def test_chaos_proxy_consumes_the_exact_schedule(factory):
    """Socket layer: the proxy burns one decision per relayed frame."""
    from repro.net import ChaosProxy, DocumentStore, NetClient, NetServer
    from repro.prep.request import TransferSettings
    from repro.transport.cache import PacketCache

    from tests.netutil import assert_no_leaked_tasks, make_prepared

    async def go():
        seed = 2026
        prepared, payload = make_prepared(size=4096, packet_size=64)
        store = DocumentStore()
        store.add(prepared)
        recorder = RecordingModel(factory(seed))
        async with NetServer(store) as server:
            async with ChaosProxy(
                server.host,
                server.port,
                model=recorder,
                max_disconnects=3,
            ) as proxy:
                client = NetClient(
                    proxy.host,
                    proxy.port,
                    cache=PacketCache(),
                    settings=TransferSettings(
                        round_timeout=2.0, max_reconnects=8
                    ),
                    reconnect_delay=0.01,
                )
                result = await client.fetch("doc")
        assert result.status == "decoded"
        assert result.payload == payload
        frames = len(recorder.verdicts)
        assert frames > 0
        assert recorder.verdicts == reference_schedule(factory, seed, frames)
        # The proxy's unified counters agree with the model's own books.
        counts = recorder.counters()
        assert proxy.stats["dropped"] == counts["dropped"]
        assert proxy.stats["corrupted"] == counts["corrupted"]
        await assert_no_leaked_tasks()

    asyncio.run(go())


@pytest.mark.parametrize("factory", MODEL_FACTORIES, ids=FACTORY_IDS)
def test_injector_and_simulated_channel_agree(factory):
    """The cross-layer statement itself: two consumers, one schedule."""
    seed = 5150
    injector_recorder = RecordingModel(factory(seed))
    injector = FaultInjector(None, model=injector_recorder)
    for seq in range(150):
        injector.inject(FrameDelivered(seq))

    channel_recorder = RecordingModel(factory(seed))
    channel = ModelChannel(
        channel_recorder, bandwidth_kbps=19.2, rng=random.Random(0)
    )
    for seq in range(150):
        channel.send(b"payload-%03d" % seq)

    assert injector_recorder.verdicts == channel_recorder.verdicts
