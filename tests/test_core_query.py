"""Tests for query parsing and querying-word weights (§3.2)."""

import math

import pytest

from repro.core.query import Query


class TestParsing:
    def test_keywords_lemmatized(self):
        query = Query("browsing browsers")
        assert len(query.keywords()) == 2  # brows + browser

    def test_stopwords_dropped(self):
        query = Query("the web of things")
        lemmas = query.keywords()
        assert all(lemma not in ("the", "of") for lemma in lemmas)

    def test_empty_query(self):
        query = Query("the of and")
        assert query.is_empty
        assert query.keywords() == frozenset()
        assert query.weight("anything") == 0.0

    def test_from_keywords(self):
        query = Query.from_keywords(["mobile", "web"])
        assert not query.is_empty
        assert query.total_occurrences() == 2


class TestWeights:
    def test_uniform_query_weights_are_one(self):
        """All |a_Q| = 1 = ‖V_Q‖∞ → ω^Q = 1 − log2(1) = 1."""
        query = Query("browsing mobile web")
        for lemma in query.keywords():
            assert query.weight(lemma) == pytest.approx(1.0)

    def test_absent_word_weight_zero(self):
        query = Query("mobile")
        assert query.weight("zebra") == 0.0

    def test_repetition_emphasis(self):
        """Repeating a word raises its count; with the infinity norm the
        repeated word pins ω = 1 while the others gain weight."""
        query = Query("mobile mobile web")
        mobile = [k for k in query.keywords() if k.startswith("mobil")][0]
        web = [k for k in query.keywords() if k == "web"][0]
        assert query.count(mobile) == 2
        assert query.weight(mobile) == pytest.approx(1.0)
        assert query.weight(web) == pytest.approx(1.0 + math.log2(2))

    def test_total_occurrences(self):
        assert Query("a mobile mobile web").total_occurrences() == 3

    def test_repr(self):
        assert "mobile" in repr(Query("mobile"))
