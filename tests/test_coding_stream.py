"""Tests for the incremental decoder against the batch decoder."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.rs import CodecError, RabinDispersal, SystematicRSCodec
from repro.coding.stream import IncrementalDecoder


def random_packets(rng, m, size=24):
    return [bytes(rng.randrange(256) for _ in range(size)) for _ in range(m)]


class TestIncrementalDecoding:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.booleans(),
    )
    def test_matches_batch_decoder(self, seed, m, extra, systematic):
        rng = random.Random(seed)
        codec_cls = SystematicRSCodec if systematic else RabinDispersal
        codec = codec_cls(m, m + extra)
        raw = random_packets(rng, m)
        cooked = codec.encode(raw)

        arrivals = list(range(codec.n))
        rng.shuffle(arrivals)
        decoder = IncrementalDecoder(codec)
        for sequence in arrivals:
            decoder.add(sequence, cooked[sequence])
            if decoder.complete:
                break
        assert decoder.solve() == raw

    def test_every_fresh_packet_is_useful(self):
        """Vandermonde codes are MDS: any subset of ≤ M rows is
        independent, so rank rises with every new packet."""
        rng = random.Random(1)
        codec = SystematicRSCodec(6, 12)
        cooked = codec.encode(random_packets(rng, 6))
        decoder = IncrementalDecoder(codec)
        order = rng.sample(range(12), 6)
        for expected_rank, sequence in enumerate(order, start=1):
            assert decoder.add(sequence, cooked[sequence]) is True
            assert decoder.rank == expected_rank
        assert decoder.complete

    def test_duplicates_rejected(self):
        rng = random.Random(2)
        codec = SystematicRSCodec(3, 6)
        cooked = codec.encode(random_packets(rng, 3))
        decoder = IncrementalDecoder(codec)
        assert decoder.add(0, cooked[0])
        assert not decoder.add(0, cooked[0])
        assert decoder.rank == 1

    def test_extra_packets_after_complete_ignored(self):
        rng = random.Random(3)
        codec = SystematicRSCodec(2, 5)
        cooked = codec.encode(random_packets(rng, 2))
        decoder = IncrementalDecoder(codec)
        decoder.add(3, cooked[3])
        decoder.add(4, cooked[4])
        assert decoder.complete
        assert not decoder.add(0, cooked[0])

    def test_needed_counts_down(self):
        rng = random.Random(4)
        codec = SystematicRSCodec(4, 8)
        cooked = codec.encode(random_packets(rng, 4))
        decoder = IncrementalDecoder(codec)
        assert decoder.needed == 4
        decoder.add(5, cooked[5])
        assert decoder.needed == 3

    def test_solve_document_trims(self):
        document = b"short document!"
        from repro.coding.packets import Packetizer

        packetizer = Packetizer(packet_size=4, redundancy_ratio=2.0)
        cooked_doc = packetizer.cook(document)
        decoder = IncrementalDecoder(cooked_doc.codec)
        for sequence in range(cooked_doc.m, 2 * cooked_doc.m):
            decoder.add(sequence, cooked_doc.cooked[sequence])
        assert decoder.solve_document(len(document)) == document


class TestErrors:
    def test_solve_before_complete(self):
        codec = SystematicRSCodec(3, 6)
        decoder = IncrementalDecoder(codec)
        with pytest.raises(CodecError, match="rank"):
            decoder.solve()

    def test_sequence_out_of_range(self):
        decoder = IncrementalDecoder(SystematicRSCodec(2, 4))
        with pytest.raises(CodecError, match="out of range"):
            decoder.add(9, b"xx")

    def test_inconsistent_payload_size(self):
        rng = random.Random(5)
        codec = SystematicRSCodec(2, 4)
        cooked = codec.encode(random_packets(rng, 2))
        decoder = IncrementalDecoder(codec)
        decoder.add(0, cooked[0])
        with pytest.raises(CodecError, match="size"):
            decoder.add(1, cooked[1][:-1])
