"""Tests for the negative binomial model, cross-checked against scipy."""

import math

import pytest
import scipy.stats as st_scipy
from hypothesis import given, settings, strategies as st

from repro.analysis.negbinom import (
    cdf,
    expectation,
    pmf,
    pmf_series,
    survival,
    variance,
)

# scipy's nbinom counts failures before the m-th success with success
# probability p = 1 - alpha; our P = m + failures.


class TestAgainstScipy:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=80),
        st.floats(min_value=0.01, max_value=0.9),
        st.integers(min_value=0, max_value=120),
    )
    def test_pmf(self, m, alpha, extra):
        x = m + extra
        expected = st_scipy.nbinom.pmf(extra, m, 1.0 - alpha)
        assert pmf(x, m, alpha) == pytest.approx(expected, rel=1e-9, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=80),
        st.floats(min_value=0.01, max_value=0.9),
        st.integers(min_value=0, max_value=120),
    )
    def test_cdf(self, m, alpha, extra):
        x = m + extra
        expected = st_scipy.nbinom.cdf(extra, m, 1.0 - alpha)
        assert cdf(x, m, alpha) == pytest.approx(expected, rel=1e-9, abs=1e-12)

    def test_paper_defaults(self):
        """M=40, alpha=0.1: E[P] = 40/0.9 ≈ 44.4."""
        assert expectation(40, 0.1) == pytest.approx(40 / 0.9)
        assert variance(40, 0.1) == pytest.approx(40 * 0.1 / 0.81)


class TestEdgeCases:
    def test_x_below_m_is_zero(self):
        assert pmf(5, 10, 0.2) == 0.0
        assert cdf(9, 10, 0.2) == 0.0

    def test_alpha_zero_degenerate(self):
        assert pmf(10, 10, 0.0) == 1.0
        assert pmf(11, 10, 0.0) == 0.0
        assert cdf(10, 10, 0.0) == 1.0

    def test_alpha_one_never_succeeds(self):
        assert pmf(100, 10, 1.0) == 0.0
        assert cdf(10**6, 10, 1.0) == 0.0
        assert expectation(10, 1.0) == math.inf

    def test_survival_complements_cdf(self):
        for x in (40, 50, 60):
            assert survival(x, 40, 0.2) == pytest.approx(1.0 - cdf(x, 40, 0.2))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pmf(10, 0, 0.1)
        with pytest.raises(ValueError):
            pmf(10, 5, 1.5)


class TestSeries:
    def test_series_matches_pointwise(self):
        series = pmf_series(8, 0.25, 30)
        for offset, value in enumerate(series):
            assert value == pytest.approx(pmf(8 + offset, 8, 0.25), rel=1e-9)

    def test_series_sums_toward_one(self):
        series = pmf_series(5, 0.2, 200)
        assert sum(series) == pytest.approx(1.0, abs=1e-9)

    def test_empty_when_upto_below_m(self):
        assert pmf_series(10, 0.3, 9) == []
