"""Tests for streaming (SAX-style) XML parsing."""

import pytest
from hypothesis import given, strategies as st

from repro.xmlkit.dom import Element, Text
from repro.xmlkit.errors import XmlSyntaxError
from repro.xmlkit.parser import parse_xml
from repro.xmlkit.sax import (
    ContentHandler,
    TreeBuilderHandler,
    iter_events,
    parse_streaming,
)
from repro.xmlkit.writer import serialize

SAMPLE = '<paper id="1"><title>T</title><!-- note -->body <b>bold</b></paper>'


class Recorder(ContentHandler):
    def __init__(self):
        self.calls = []

    def start_document(self):
        self.calls.append(("start_document",))

    def end_document(self):
        self.calls.append(("end_document",))

    def start_element(self, tag, attributes):
        self.calls.append(("start", tag, attributes))

    def end_element(self, tag):
        self.calls.append(("end", tag))

    def characters(self, data):
        self.calls.append(("text", data))

    def comment(self, data):
        self.calls.append(("comment", data))


class TestEvents:
    def test_event_sequence(self):
        recorder = Recorder()
        parse_streaming(SAMPLE, recorder)
        kinds = [call[0] for call in recorder.calls]
        assert kinds[0] == "start_document"
        assert kinds[-1] == "end_document"
        assert ("start", "paper", {"id": "1"}) in recorder.calls
        assert ("comment", " note ") in recorder.calls
        assert ("end", "paper") in recorder.calls

    def test_self_closing_fires_both(self):
        recorder = Recorder()
        parse_streaming("<a><br/></a>", recorder)
        assert ("start", "br", {}) in recorder.calls
        assert ("end", "br") in recorder.calls

    def test_iter_events(self):
        events = list(iter_events("<a>x<b/></a>"))
        assert events == [
            ("start", ("a", {})),
            ("text", "x"),
            ("start", ("b", {})),
            ("end", "b"),
            ("end", "a"),
        ]

    def test_entities_resolved(self):
        events = list(iter_events("<a>1 &lt; 2</a>"))
        assert ("text", "1 < 2") in events


class TestWellFormedness:
    @pytest.mark.parametrize(
        "source",
        ["<a><b></a></b>", "<a>", "<a/><b/>", "text<a/>", "</a>", ""],
    )
    def test_violations_raise(self, source):
        with pytest.raises(XmlSyntaxError):
            parse_streaming(source, ContentHandler())


class TestTreeEquivalence:
    CASES = [
        "<a/>",
        SAMPLE,
        "<a><b>x</b><b>y</b><!-- c --></a>",
        "<root>mixed <em>content</em> tail</root>",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_rebuilt_tree_matches_batch_parser(self, source):
        handler = TreeBuilderHandler()
        parse_streaming(source, handler)
        streamed = serialize(handler.document)
        batch = serialize(parse_xml(source))
        assert streamed == batch

    @given(st.data())
    def test_random_trees_equivalent(self, data):
        tags = st.sampled_from(["a", "b", "c"])
        texts = st.text(alphabet=st.sampled_from("xy <&"), min_size=1, max_size=5)

        @st.composite
        def trees(draw, depth=0):
            element = Element(draw(tags))
            if depth < 2:
                for _ in range(draw(st.integers(min_value=0, max_value=2))):
                    if draw(st.booleans()):
                        element.append(Text(draw(texts)))
                    else:
                        element.append(draw(trees(depth=depth + 1)))
            return element

        root = data.draw(trees())
        source = serialize(root)
        handler = TreeBuilderHandler()
        parse_streaming(source, handler)
        assert serialize(handler.document.root) == source
