"""Tests for the experiment metrics helpers."""

import pytest

from repro.simulation.metrics import SeriesPoint, improvement_ratio, series_table


class TestSeriesPoint:
    def test_statistics(self):
        point = SeriesPoint(1.5, [4.0, 4.2, 4.4])
        assert point.x == 1.5
        assert point.mean == pytest.approx(4.2)
        assert point.stdev == pytest.approx(0.2)
        assert point.ci_low < point.mean < point.ci_high

    def test_single_sample(self):
        point = SeriesPoint(0.1, [7.0])
        assert point.stdev == 0.0
        assert (point.ci_low, point.ci_high) == (7.0, 7.0)

    def test_relative_stdev(self):
        point = SeriesPoint(0.1, [9.0, 10.0, 11.0])
        assert point.relative_stdev() == pytest.approx(0.1)

    def test_relative_stdev_zero_mean(self):
        point = SeriesPoint(0.1, [0.0, 0.0])
        assert point.relative_stdev() == 0.0

    def test_samples_copied(self):
        data = [1.0, 2.0]
        point = SeriesPoint(0.0, data)
        data.append(99.0)
        assert point.samples == [1.0, 2.0]

    def test_paper_dispersion_claim_shape(self):
        """The paper reports 1–5% relative stdev; SeriesPoint exposes
        exactly that quantity for assertion in the benches."""
        point = SeriesPoint(1.5, [4.0, 4.05, 3.95, 4.02, 3.98])
        assert point.relative_stdev() < 0.05


class TestImprovementRatio:
    def test_faster_candidate_above_one(self):
        assert improvement_ratio(10.0, 8.0) == pytest.approx(1.25)

    def test_equal_is_one(self):
        assert improvement_ratio(5.0, 5.0) == 1.0

    def test_zero_candidate_rejected(self):
        with pytest.raises(ValueError):
            improvement_ratio(5.0, 0.0)


class TestSeriesTable:
    def test_flattening(self):
        series = {
            "b": [SeriesPoint(1.0, [2.0])],
            "a": [SeriesPoint(1.0, [3.0]), SeriesPoint(2.0, [4.0])],
        }
        rows = series_table(series)
        assert rows[0][0] == "a"  # sorted by name
        assert len(rows) == 3
        assert rows[0][2] == 3.0  # mean column

    def test_empty(self):
        assert series_table({}) == []
