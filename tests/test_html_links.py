"""Tests for link extraction and HTML cluster construction."""

import pytest

from repro.htmlkit.links import cluster_from_pages, extract_links, normalize_url


class TestNormalizeUrl:
    def test_fragment_stripped(self):
        assert normalize_url("http://a/b#sec") == "http://a/b"

    def test_relative_resolved(self):
        assert normalize_url("c.html", base="http://a/b/index.html") == "http://a/b/c.html"

    def test_parent_navigation(self):
        assert normalize_url("../x.html", base="http://a/b/c/d.html") == "http://a/b/x.html"

    def test_non_locations_dropped(self):
        assert normalize_url("javascript:void(0)") == ""
        assert normalize_url("mailto:a@b") == ""
        assert normalize_url("#top") == ""
        assert normalize_url("   ") == ""

    def test_query_kept(self):
        assert normalize_url("http://a/b?x=1#frag") == "http://a/b?x=1"


class TestExtractLinks:
    def test_basic(self):
        html = '<a href="one.html">1</a> <a href="two.html">2</a>'
        assert extract_links(html, base_url="http://s/") == [
            "http://s/one.html",
            "http://s/two.html",
        ]

    def test_duplicates_collapsed(self):
        html = '<a href="x">a</a><a href="x">b</a>'
        assert extract_links(html) == ["x"]

    def test_anchor_without_href_ignored(self):
        assert extract_links('<a name="top">x</a>') == []

    def test_tag_soup(self):
        html = '<p>text <a href=page.html>link</a> more <a href="#frag">skip'
        assert extract_links(html, base_url="http://s/") == ["http://s/page.html"]


SITE = {
    "http://s/index": (
        "<title>Index</title><h1>Home</h1><p>Start page.</p>"
        '<a href="/a">A</a> <a href="/b">B</a> <a href="http://other/x">ext</a>'
    ),
    "http://s/a": (
        "<title>A</title><h1>Alpha</h1><p>Alpha page content about caching "
        'strategies and more caching words here.</p><a href="/b">B</a>'
    ),
    "http://s/b": "<title>B</title><h1>Beta</h1><p>Short beta page.</p>",
}


class TestClusterFromPages:
    def test_structure(self):
        cluster = cluster_from_pages(SITE, entry_page="http://s/index")
        assert len(cluster) == 3
        assert cluster.links("http://s/index") == ["http://s/a", "http://s/b"]
        # External link dropped.
        assert all("other" not in t for t in cluster.links("http://s/index"))

    def test_distances(self):
        cluster = cluster_from_pages(SITE, entry_page="http://s/index")
        distances = cluster.distances()
        assert distances["http://s/index"] == 0
        assert distances["http://s/a"] == 1

    def test_scores_favor_heavier_pages(self):
        cluster = cluster_from_pages(SITE, entry_page="http://s/index")
        scores = cluster.content_scores()
        assert scores["http://s/a"] > scores["http://s/b"]

    def test_unknown_entry_rejected(self):
        with pytest.raises(ValueError):
            cluster_from_pages(SITE, entry_page="http://s/missing")

    def test_self_links_dropped(self):
        pages = {"u": '<h1>Self</h1><p>x</p><a href="u">me</a>'}
        cluster = cluster_from_pages(pages, entry_page="u")
        assert cluster.links("u") == []
