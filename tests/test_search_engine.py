"""Tests for the search engine and query-time QIC annotation."""

from repro.search.engine import SearchEngine
from repro.xmlkit.parser import parse_xml


def make_doc(title, body):
    return parse_xml(
        f"<paper><title>{title}</title><section><title>Main</title>"
        f"<paragraph>{body}</paragraph></section></paper>"
    )


def build_engine():
    engine = SearchEngine()
    engine.add_document(
        "browsing",
        make_doc(
            "Mobile Browsing",
            "mobile web browsing over wireless channels with caching support",
        ),
    )
    engine.add_document(
        "databases",
        make_doc(
            "Database Caching",
            "database caching strategies for disconnected operation and storage",
        ),
    )
    engine.add_document(
        "energy",
        make_doc("Energy", "battery energy and disk spin-down policies"),
    )
    return engine


class TestCorpus:
    def test_size(self):
        assert build_engine().size == 3

    def test_remove(self):
        engine = build_engine()
        engine.remove_document("energy")
        assert engine.size == 2
        assert engine.search("battery") == []

    def test_sc_accessible(self):
        engine = build_engine()
        assert engine.sc("browsing") is not None
        assert engine.sc("ghost") is None


class TestSearch:
    def test_relevant_document_ranks_first(self):
        hits = build_engine().search("mobile web browsing")
        assert hits[0].document_id == "browsing"

    def test_query_matching_two_documents(self):
        hits = build_engine().search("caching")
        ids = [h.document_id for h in hits]
        assert set(ids) == {"browsing", "databases"}

    def test_no_match(self):
        assert build_engine().search("quantum chromodynamics") == []

    def test_empty_query(self):
        assert build_engine().search("the of and") == []

    def test_limit(self):
        hits = build_engine().search("caching", limit=1)
        assert len(hits) == 1

    def test_scores_descending(self):
        hits = build_engine().search("caching storage database")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestQicAnnotation:
    def test_hits_carry_query_measures(self):
        hits = build_engine().search("mobile caching")
        for hit in hits:
            for unit in hit.sc.root.walk():
                assert "qic" in unit.content
                assert "mqic" in unit.content
                assert "tfidf" in unit.content

    def test_qic_reflects_query(self):
        engine = build_engine()
        (hit,) = [h for h in engine.search("caching") if h.document_id == "databases"]
        root_value = hit.sc.root.content["qic"]
        assert root_value > 0.99  # whole document normalizes to 1

    def test_parse_query_shares_lemmatizer(self):
        engine = build_engine()
        query = engine.parse_query("browsing browsers")
        assert len(query.keywords()) == 2
