"""Tests for the intact-packet cache."""

from repro.transport.cache import NullCache, PacketCache


class TestStoreLoad:
    def test_roundtrip(self):
        cache = PacketCache()
        cache.store("doc", 3, b"payload3")
        cache.store("doc", 7, b"payload7")
        assert cache.load("doc") == {3: b"payload3", 7: b"payload7"}

    def test_missing_document_empty(self):
        assert PacketCache().load("nope") == {}

    def test_duplicate_store_ignored(self):
        cache = PacketCache()
        cache.store("doc", 1, b"a" * 10)
        cache.store("doc", 1, b"a" * 10)
        assert cache.used_bytes == 10

    def test_discard(self):
        cache = PacketCache()
        cache.store("doc", 0, b"xxxx")
        cache.discard("doc")
        assert cache.load("doc") == {}
        assert cache.used_bytes == 0
        cache.discard("doc")  # idempotent

    def test_load_returns_copy(self):
        cache = PacketCache()
        cache.store("doc", 0, b"x")
        loaded = cache.load("doc")
        loaded[99] = b"intruder"
        assert 99 not in cache.load("doc")


class TestEviction:
    def test_lru_eviction(self):
        cache = PacketCache(capacity_bytes=100)
        cache.store("old", 0, b"a" * 60)
        cache.store("new", 0, b"b" * 60)
        assert cache.load("old") == {}
        assert cache.load("new") != {}

    def test_access_refreshes_lru(self):
        cache = PacketCache(capacity_bytes=100)
        cache.store("first", 0, b"a" * 40)
        cache.store("second", 0, b"b" * 40)
        cache.load("first")  # touch
        cache.store("third", 0, b"c" * 40)
        assert cache.load("first") != {}
        assert cache.load("second") == {}

    def test_single_document_never_evicted(self):
        """The active transfer's packets must survive even when larger
        than the nominal capacity."""
        cache = PacketCache(capacity_bytes=10)
        for sequence in range(5):
            cache.store("big", sequence, b"z" * 8)
        assert cache.packet_count("big") == 5

    def test_used_bytes_accounting(self):
        cache = PacketCache()
        cache.store("a", 0, b"12345")
        cache.store("b", 0, b"123")
        assert cache.used_bytes == 8
        cache.discard("a")
        assert cache.used_bytes == 3


class TestDunder:
    def test_contains_len(self):
        cache = PacketCache()
        cache.store("doc", 0, b"x")
        assert "doc" in cache
        assert len(cache) == 1


class TestNullCache:
    def test_never_retains(self):
        cache = NullCache()
        cache.store("doc", 0, b"payload")
        assert cache.load("doc") == {}
        assert cache.used_bytes == 0
