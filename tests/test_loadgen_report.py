"""Tier-1 tests for the loadgen SLO report and BENCH_net serialization.

Pure-function coverage: :func:`summarize_results` on synthetic
:class:`NetFetchResult` values and :func:`write_bench` round-tripping —
no sockets, no server.
"""

import json

import pytest

from repro.net.client import NetFetchResult
from repro.net.loadgen import (
    LoadgenReport,
    bench_record,
    summarize_results,
    write_bench,
)


def result(status="decoded", elapsed=0.1, payload=b"x" * 100, reconnects=0):
    return NetFetchResult(
        document_id="doc",
        status=status,
        success=status in ("decoded", "early_stop"),
        terminated_early=status == "early_stop",
        rounds=1,
        frames_received=10,
        reconnects=reconnects,
        elapsed=elapsed,
        content_received=1.0,
        payload=payload if status == "decoded" else None,
    )


class TestSummarize:
    def test_all_succeed(self):
        results = [result(elapsed=0.1 * (i + 1)) for i in range(10)]
        report = summarize_results(results, clients=10, elapsed=2.0)
        assert report.succeeded == 10
        assert report.failed == 0
        assert report.error_rate == 0.0
        assert report.error_budget_remaining == 1.0
        assert report.p50_seconds == pytest.approx(0.55, abs=0.06)
        assert report.p95_seconds >= report.p50_seconds
        assert report.p99_seconds >= report.p95_seconds
        assert report.payload_bytes == 1000
        assert report.served_mb_per_second == pytest.approx(
            1000 / (1024 * 1024) / 2.0
        )

    def test_failures_burn_the_budget(self):
        results = [result() for _ in range(8)] + [result(status="failed")] + [None]
        report = summarize_results(
            results, clients=10, elapsed=1.0, error_budget=0.5
        )
        assert report.failed == 2
        assert report.error_rate == pytest.approx(0.2)
        assert report.error_budget_remaining == pytest.approx(0.6)

    def test_budget_exhaustion_clamps_to_zero(self):
        results = [result(status="failed") for _ in range(4)]
        report = summarize_results(
            results, clients=4, elapsed=1.0, error_budget=0.05
        )
        assert report.error_rate == 1.0
        assert report.error_budget_remaining == 0.0

    def test_unreached_clients_count_as_failed(self):
        report = summarize_results([None, None], clients=2, elapsed=1.0)
        assert report.failed == 2
        assert report.succeeded == 0

    def test_early_stop_counts_as_success(self):
        report = summarize_results(
            [result(status="early_stop")], clients=1, elapsed=0.5
        )
        assert report.succeeded == 1
        assert report.early_stopped == 1
        assert report.error_rate == 0.0

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            summarize_results([], clients=1, elapsed=1.0, error_budget=0.0)

    def test_legacy_positional_construction_still_works(self):
        # Pre-SLO call sites built the tuple positionally with 13
        # fields; the appended fields must default.
        report = LoadgenReport(
            10, 9, 8, 1, 1, 3, 2.0, 0.2, 0.18, 0.3, 0.4, 5.0, 4096
        )
        assert report.clients == 10
        assert report.p95_seconds == 0.0
        assert report.error_budget_remaining == 1.0


class TestBenchRecord:
    def test_record_keys(self):
        report = summarize_results([result()], clients=1, elapsed=1.0)
        record = bench_record(report, document_id="doc", chaos={"corrupt": 0.1})
        for key in (
            "benchmark",
            "p50_seconds",
            "p95_seconds",
            "p99_seconds",
            "error_rate",
            "error_budget",
            "error_budget_remaining",
            "served_mb_per_second",
            "fetches_per_second",
            "reconnects",
        ):
            assert key in record, key
        assert record["document_id"] == "doc"
        assert record["chaos"] == {"corrupt": 0.1}

    def test_optional_fields_omitted(self):
        report = summarize_results([result()], clients=1, elapsed=1.0)
        record = bench_record(report)
        assert "document_id" not in record
        assert "chaos" not in record

    def test_write_bench_roundtrips(self, tmp_path):
        report = summarize_results(
            [result(elapsed=0.25)], clients=1, elapsed=1.0
        )
        path = tmp_path / "BENCH_net.json"
        written = write_bench(report, str(path), document_id="doc")
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert loaded["p50_seconds"] == pytest.approx(0.25)
        assert loaded["benchmark"] == "net_loadgen_slo"
