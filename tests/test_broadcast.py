"""Broadcast carousel suite: air index, scheduler, receiver — tier-1.

Everything here is sans-IO (the broadcast package never opens a
socket), so the suite runs unmarked.  The property tests pin the two
contracts the subsystem exists for:

* **any-M decode, from anywhere** — a receiver joining the shared
  stream at a uniformly random slot offset, behind seeded iid or
  Gilbert–Elliott loss, reconstructs the document byte-identically to
  a unicast fetch;
* **bounded tuning latency** — on a clean channel the first air index
  arrives within one period of tune-in, whatever the offset.
"""

import random

import pytest

from repro.broadcast import (
    AirIndex,
    CarouselEntry,
    CarouselReceiver,
    CarouselScheduler,
    encode_broadcast_frame,
)
from repro.broadcast.airindex import BCAST_FRAME_OVERHEAD, MAX_TAG
from repro.channel import parse_model_spec
from repro.coding.packets import Packetizer
from repro.prep.prepare import DocumentSender
from repro.protocol import Decoded, Failed


def make_prepared(document_id="doc", size=2048, packet_size=64, seed=99):
    payload = bytes(random.Random(seed).randrange(256) for _ in range(size))
    sender = DocumentSender(Packetizer(packet_size=packet_size, redundancy_ratio=1.5))
    return sender.prepare_raw(document_id, payload), payload


def build_carousel(documents=2, **kwargs):
    """A small carousel plus {document_id: payload} for decode checks."""
    scheduler = CarouselScheduler(**kwargs)
    payloads = {}
    for index in range(documents):
        prepared, payload = make_prepared(f"doc-{index}", seed=index + 1)
        scheduler.add_document(prepared, hotness=100 // (index + 1))
        payloads[prepared.document_id] = payload
    scheduler.build()
    return scheduler, payloads


def play(scheduler, receiver, offset=0, max_cycles=50):
    """Feed the carousel stream to *receiver* starting at slot *offset*."""
    slot = 0
    for cycle in range(max_cycles):
        index = scheduler.air_index(cycle)
        if slot >= offset:
            if receiver.on_air_index(index) is not None:
                return receiver.finished
        slot += 1
        for tag, _sequence, envelope in scheduler.frame_slots():
            if slot >= offset:
                frame = bytes(envelope[BCAST_FRAME_OVERHEAD:])
                if receiver.on_frame(tag, frame) is not None:
                    return receiver.finished
            slot += 1
    return receiver.abort()


class TestCarouselEntry:
    def test_wire_roundtrip(self):
        entry = CarouselEntry(
            document_id="d", tag=3, m=4, n=6, packet_size=64,
            original_size=200, repeats=2, profile=(0.5, 0.2, 0.2, 0.1),
        )
        assert CarouselEntry.from_wire(entry.to_wire()) == entry

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError, match="geometry"):
            CarouselEntry(
                document_id="d", tag=0, m=6, n=4, packet_size=64, original_size=1
            )

    def test_tag_range_enforced(self):
        with pytest.raises(ValueError, match="tag"):
            CarouselEntry(
                document_id="d", tag=MAX_TAG + 1, m=1, n=1,
                packet_size=64, original_size=1,
            )


class TestAirIndex:
    def entry(self, tag=0):
        return CarouselEntry(
            document_id=f"doc-{tag}", tag=tag, m=2, n=3,
            packet_size=64, original_size=100,
        )

    def index(self):
        return AirIndex(
            cycle=7,
            schedule="flat",
            entries=(self.entry(0), self.entry(1)),
            layout=((0, 3), (1, 3)),
        )

    def test_wire_roundtrip(self):
        index = self.index()
        assert AirIndex.from_wire(index.to_wire()) == index

    def test_period_counts_the_index_slot(self):
        assert self.index().period_slots == 7

    def test_entry_lookup(self):
        index = self.index()
        assert index.entry_for("doc-1").tag == 1
        assert index.entry_for("nope") is None
        assert index.entry_for_tag(0).document_id == "doc-0"

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: w.update(schedule="zigzag"),
            lambda w: w.update(entries=[]),
            lambda w: w.update(cycle=-1),
            lambda w: w.update(layout=[[9, 3]]),        # unknown tag
            lambda w: w.update(layout=[[0, 0]]),        # zero count
            lambda w: w.update(layout=[[0]]),           # malformed segment
            lambda w: w["entries"].append(w["entries"][0]),  # duplicate tag
        ],
    )
    def test_junk_rejected(self, mutate):
        wire = self.index().to_wire()
        mutate(wire)
        with pytest.raises(ValueError):
            AirIndex.from_wire(wire)

    def test_broadcast_frame_tag_bounds(self):
        assert encode_broadcast_frame(0, b"x")[5] == 0
        with pytest.raises(ValueError):
            encode_broadcast_frame(MAX_TAG + 1, b"x")


class TestScheduler:
    def test_flat_layout_airs_every_frame_once(self):
        scheduler, _ = build_carousel(documents=3, schedule="flat")
        slots = scheduler.frame_slots()
        per_tag = {}
        for tag, sequence, _envelope in slots:
            per_tag.setdefault(tag, []).append(sequence)
        for tag, sequences in per_tag.items():
            assert sequences == list(range(len(sequences)))
        assert scheduler.period_slots == 1 + len(slots)

    def test_tags_follow_hotness_order(self):
        scheduler = CarouselScheduler()
        cold, _ = make_prepared("cold", seed=1)
        hot, _ = make_prepared("hot", seed=2)
        scheduler.add_document(cold, hotness=1)
        scheduler.add_document(hot, hotness=100)
        scheduler.build()
        assert scheduler.documents == ["hot", "cold"]
        assert scheduler.air_index().entry_for("hot").tag == 0

    def test_skewed_repeats_follow_sqrt_rule(self):
        scheduler = CarouselScheduler(schedule="skewed")
        hot, _ = make_prepared("hot", seed=1)
        cold, _ = make_prepared("cold", seed=2)
        scheduler.add_document(hot, hotness=900)    # sqrt(900/100) = 3
        scheduler.add_document(cold, hotness=100)
        scheduler.build()
        index = scheduler.air_index()
        assert index.entry_for("hot").repeats == 3
        assert index.entry_for("cold").repeats == 1
        # Appearances are interleaved, not bunched: the cold document
        # airs between hot appearances, near mid-cycle.
        tags = [tag for tag, _count in index.layout]
        assert tags.count(0) == 3 and tags.count(1) == 1
        assert tags != [0, 0, 0, 1]

    def test_skewed_repeats_are_capped(self):
        scheduler = CarouselScheduler(schedule="skewed", max_repeats=2)
        hot, _ = make_prepared("hot", seed=1)
        cold, _ = make_prepared("cold", seed=2)
        scheduler.add_document(hot, hotness=10_000)
        scheduler.add_document(cold, hotness=1)
        scheduler.build()
        assert scheduler.air_index().entry_for("hot").repeats == 2

    def test_envelopes_are_tagged_wire_images(self):
        scheduler, _ = build_carousel(documents=2)
        for tag, _sequence, envelope in scheduler.frame_slots():
            frame = bytes(envelope[BCAST_FRAME_OVERHEAD:])
            assert bytes(envelope) == encode_broadcast_frame(tag, frame)

    def test_duplicate_document_rejected(self):
        scheduler = CarouselScheduler()
        prepared, _ = make_prepared()
        scheduler.add_document(prepared)
        with pytest.raises(ValueError, match="already"):
            scheduler.add_document(prepared)

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            CarouselScheduler().build()

    def test_add_after_build_rejected(self):
        scheduler, _ = build_carousel()
        prepared, _ = make_prepared("late")
        with pytest.raises(RuntimeError):
            scheduler.add_document(prepared)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="schedule"):
            CarouselScheduler(schedule="zigzag")

    def test_air_cycle_advances_counters(self):
        scheduler, _ = build_carousel()
        slots = list(scheduler.air_cycle(0))
        assert slots[0][0] == "index"
        assert len(slots) == scheduler.period_slots
        stats = scheduler.stats()
        assert stats["cycles_aired"] == 1
        assert stats["frames_aired"] == scheduler.period_slots - 1
        assert stats["bytes_aired"] == scheduler.cycle_bytes(0)


class TestReceiver:
    def test_clean_channel_decodes_byte_identically(self):
        scheduler, payloads = build_carousel(documents=2)
        receiver = CarouselReceiver("doc-1")
        terminal = play(scheduler, receiver)
        assert isinstance(terminal, Decoded)
        assert receiver.payload() == payloads["doc-1"]

    def test_absent_document_is_flagged(self):
        scheduler, _ = build_carousel()
        receiver = CarouselReceiver("nope")
        receiver.on_air_index(scheduler.air_index(0))
        assert receiver.absent and not receiver.synced

    def test_payload_before_decode_raises(self):
        receiver = CarouselReceiver("doc")
        with pytest.raises(RuntimeError):
            receiver.payload()

    def test_abort_before_sync_fails_cleanly(self):
        receiver = CarouselReceiver("doc")
        assert isinstance(receiver.abort(), Failed)

    def test_geometry_change_mid_collect_aborts(self):
        scheduler, _ = build_carousel()
        receiver = CarouselReceiver("doc-0")
        receiver.on_air_index(scheduler.air_index(0))
        entry = receiver.entry
        recooked = CarouselEntry(
            document_id="doc-0", tag=entry.tag, m=entry.m + 1,
            n=entry.n + 1, packet_size=entry.packet_size,
            original_size=entry.original_size,
        )
        terminal = receiver.on_air_index(
            AirIndex(
                cycle=1, schedule="flat", entries=(recooked,),
                layout=((entry.tag, recooked.n),),
            )
        )
        assert isinstance(terminal, Failed)

    def test_max_cycles_bounds_the_collection(self):
        # Feed only air indexes (every frame slot drowned): the
        # receiver must give up after max_cycles cycle boundaries.
        scheduler, _ = build_carousel()
        receiver = CarouselReceiver("doc-0", max_cycles=3)
        for cycle in range(10):
            receiver.on_air_index(scheduler.air_index(cycle))
            if receiver.finished is not None:
                break
        assert isinstance(receiver.finished, Failed)


class TestTuneInProperties:
    """The satellite property suite: random offsets, seeded loss."""

    @pytest.mark.parametrize("spec", [None, "iid:corrupt=0.15,drop=0.05",
                                      "gilbert:alpha=0.15,burst=4"])
    @pytest.mark.parametrize("trial", range(6))
    def test_random_offset_decodes_byte_identically(self, spec, trial):
        scheduler, payloads = build_carousel(documents=2, schedule="skewed")
        rng = random.Random(1000 * trial + (hash(spec) % 1000))
        offset = rng.randrange(scheduler.period_slots)
        document_id = rng.choice(sorted(payloads))
        channel = (
            parse_model_spec(spec, seed=7 + trial) if spec else None
        )
        receiver = CarouselReceiver(document_id, channel=channel)
        terminal = play(scheduler, receiver, offset=offset)
        assert isinstance(terminal, Decoded), (spec, trial, offset)
        # Byte-identical to the unicast path, which reconstructs the
        # original payload exactly (any M intact packets suffice).
        assert receiver.payload() == payloads[document_id]

    def test_air_index_bounds_tuning_to_one_period(self):
        scheduler, _ = build_carousel(documents=2, schedule="skewed")
        period = scheduler.period_slots
        for offset in range(period):
            receiver = CarouselReceiver("doc-0")
            play(scheduler, receiver, offset=offset)
            assert receiver.synced
            # On a clean channel the next air index is at most one
            # period away, whatever the tune-in slot.
            assert receiver.slots_before_sync < period, offset

    def test_seeded_channels_make_runs_reproducible(self):
        scheduler, payloads = build_carousel(documents=2)

        def run_once():
            receiver = CarouselReceiver(
                "doc-0", channel=parse_model_spec("iid:corrupt=0.2", seed=42)
            )
            play(scheduler, receiver, offset=5)
            return (
                receiver.slots_seen,
                receiver.frames_intact,
                receiver.frames_corrupt,
                receiver.payload(),
            )

        assert run_once() == run_once()
