"""Tests for the ORB-lite broker and interceptors."""

import pytest

from repro.prototype.broker import (
    BrokerError,
    ObjectRequestBroker,
    PassthroughInterceptor,
)


class Echo:
    def shout(self, text):
        return text.upper()

    def fail(self):
        raise RuntimeError("servant error")


class TestRegistryAndInvoke:
    def test_basic_invocation(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        assert broker.invoke("echo", "shout", "hi") == "HI"
        assert broker.invocations == 1

    def test_unknown_servant(self):
        broker = ObjectRequestBroker()
        with pytest.raises(BrokerError, match="no servant"):
            broker.invoke("ghost", "shout", "hi")

    def test_unknown_method(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        with pytest.raises(BrokerError, match="no method"):
            broker.invoke("echo", "whisper", "hi")

    def test_servant_exceptions_propagate(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        with pytest.raises(RuntimeError, match="servant error"):
            broker.invoke("echo", "fail")

    def test_rebind_replaces(self):
        broker = ObjectRequestBroker()
        broker.register("x", Echo())

        class Other:
            def shout(self, text):
                return text

        broker.register("x", Other())
        assert broker.invoke("x", "shout", "hi") == "hi"

    def test_unregister_and_contains(self):
        broker = ObjectRequestBroker()
        broker.register("x", Echo())
        assert "x" in broker
        broker.unregister("x")
        assert "x" not in broker


class Tagger(PassthroughInterceptor):
    def __init__(self, tag):
        self.tag = tag

    def outbound(self, payload):
        return f"{payload}>{self.tag}"

    def inbound(self, payload):
        return f"{payload}<{self.tag}"


class TestInterceptors:
    def test_outbound_order_and_inbound_reverse(self):
        broker = ObjectRequestBroker()

        class Identity:
            def run(self, value):
                return value

        broker.register("id", Identity())
        broker.add_interceptor(Tagger("A"))
        broker.add_interceptor(Tagger("B"))
        result = broker.invoke("id", "run", "x")
        # outbound: x >A >B ; inbound through B then A.
        assert result == "x>A>B<B<A"

    def test_compression_interceptor_transparent(self):
        from repro.transport.compress import CompressionInterceptor

        broker = ObjectRequestBroker()

        class ByteEcho:
            def run(self, blob):
                return blob  # server sees (and returns) compressed bytes

        broker.register("echo", ByteEcho())
        broker.add_interceptor(CompressionInterceptor())
        payload = b"multi-resolution " * 50
        assert broker.invoke("echo", "run", payload) == payload
