"""Tests for the ORB-lite broker and interceptors."""

import pytest

from repro.prototype.broker import (
    BrokerError,
    ObjectRequestBroker,
    PassthroughInterceptor,
)


class Echo:
    def shout(self, text):
        return text.upper()

    def fail(self):
        raise RuntimeError("servant error")


class TestRegistryAndInvoke:
    def test_basic_invocation(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        assert broker.invoke("echo", "shout", "hi") == "HI"
        assert broker.invocations == 1

    def test_unknown_servant(self):
        broker = ObjectRequestBroker()
        with pytest.raises(BrokerError, match="no servant"):
            broker.invoke("ghost", "shout", "hi")

    def test_unknown_method(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        with pytest.raises(BrokerError, match="no method"):
            broker.invoke("echo", "whisper", "hi")

    def test_servant_exceptions_propagate(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        with pytest.raises(RuntimeError, match="servant error"):
            broker.invoke("echo", "fail")

    def test_rebind_replaces(self):
        broker = ObjectRequestBroker()
        broker.register("x", Echo())

        class Other:
            def shout(self, text):
                return text

        broker.register("x", Other())
        assert broker.invoke("x", "shout", "hi") == "hi"

    def test_unregister_and_contains(self):
        broker = ObjectRequestBroker()
        broker.register("x", Echo())
        assert "x" in broker
        broker.unregister("x")
        assert "x" not in broker


class Tagger(PassthroughInterceptor):
    def __init__(self, tag):
        self.tag = tag

    def outbound(self, payload):
        return f"{payload}>{self.tag}"

    def inbound(self, payload):
        return f"{payload}<{self.tag}"


class TestInterceptors:
    def test_outbound_order_and_inbound_reverse(self):
        broker = ObjectRequestBroker()

        class Identity:
            def run(self, value):
                return value

        broker.register("id", Identity())
        broker.add_interceptor(Tagger("A"))
        broker.add_interceptor(Tagger("B"))
        result = broker.invoke("id", "run", "x")
        # outbound: x >A >B ; inbound through B then A.
        assert result == "x>A>B<B<A"

    def test_compression_interceptor_transparent(self):
        from repro.transport.compress import CompressionInterceptor

        broker = ObjectRequestBroker()

        class ByteEcho:
            def run(self, blob):
                return blob  # server sees (and returns) compressed bytes

        broker.register("echo", ByteEcho())
        broker.add_interceptor(CompressionInterceptor())
        payload = b"multi-resolution " * 50
        assert broker.invoke("echo", "run", payload) == payload

    def test_empty_chain_is_identity(self):
        """The documented guarantee holds trivially for zero interceptors."""
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        assert broker.invoke("echo", "shout", "hi") == "HI"
        assert broker.invocations == 1

    def test_chain_order_with_three_interceptors(self):
        broker = ObjectRequestBroker()

        class Identity:
            def run(self, value):
                return value

        broker.register("id", Identity())
        for tag in ("A", "B", "C"):
            broker.add_interceptor(Tagger(tag))
        # Registration order outbound, exact reverse order inbound.
        assert broker.invoke("id", "run", "x") == "x>A>B>C<C<B<A"

    def test_outbound_interceptor_raising_propagates(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())

        calls = []

        class Recording(PassthroughInterceptor):
            def outbound(self, payload):
                calls.append("first-outbound")
                return payload

            def inbound(self, payload):
                calls.append("first-inbound")
                return payload

        class Exploding(PassthroughInterceptor):
            def outbound(self, payload):
                raise ValueError("outbound failure")

        broker.add_interceptor(Recording())
        broker.add_interceptor(Exploding())
        with pytest.raises(ValueError, match="outbound failure"):
            broker.invoke("echo", "shout", "hi")
        # The first interceptor ran outbound but never saw the inbound
        # pass, and the servant was never invoked.
        assert calls == ["first-outbound"]
        assert broker.invocations == 0

    def test_inbound_interceptor_raising_propagates(self):
        broker = ObjectRequestBroker()
        broker.register("echo", Echo())

        class ExplodingInbound(PassthroughInterceptor):
            def inbound(self, payload):
                raise ValueError("inbound failure")

        broker.add_interceptor(ExplodingInbound())
        with pytest.raises(ValueError, match="inbound failure"):
            broker.invoke("echo", "shout", "hi")
        # The servant call itself happened before the inbound pass.
        assert broker.invocations == 1

    def test_kwargs_bypass_the_chain(self):
        """Only positional arguments flow through interceptors."""
        broker = ObjectRequestBroker()

        class KeywordEcho:
            def run(self, *, text="?"):
                return text

        broker.register("kw", KeywordEcho())
        broker.add_interceptor(Tagger("A"))
        assert broker.invoke("kw", "run", text="hi") == "hi<A"


class TestTracingInterceptor:
    def _broker_with_tracer(self):
        from repro.obs import TracingInterceptor

        broker = ObjectRequestBroker()
        broker.register("echo", Echo())
        tracer = TracingInterceptor()
        broker.add_interceptor(tracer)
        return broker, tracer

    def test_records_method_payload_and_wall_time(self):
        broker, tracer = self._broker_with_tracer()
        broker.invoke("echo", "shout", "hello")
        assert len(tracer) == 1
        record = tracer.records[0]
        assert record.servant == "echo"
        assert record.method == "shout"
        assert record.payload_bytes == len(b"hello")
        assert record.seconds >= 0.0
        assert record.error is None

    def test_records_servant_errors(self):
        broker, tracer = self._broker_with_tracer()
        with pytest.raises(RuntimeError):
            broker.invoke("echo", "fail")
        assert tracer.records[0].error == "RuntimeError"
        assert tracer.records[0].method == "fail"

    def test_payload_size_sums_positional_args(self):
        broker, tracer = self._broker_with_tracer()

        class Sizer:
            def run(self, a, b):
                return len(a) + len(b)

        broker.register("sizer", Sizer())
        broker.invoke("sizer", "run", b"12345", "abc")
        assert tracer.records[-1].payload_bytes == 5 + 3

    def test_observation_runs_in_registration_order_after_inbound(self):
        broker, tracer = self._broker_with_tracer()
        broker.add_interceptor(Tagger("Z"))
        result = broker.invoke("echo", "shout", "x")
        assert result == "X>Z<Z"  # tracer is payload-transparent
        assert len(tracer) == 1

    def test_feeds_global_telemetry_when_enabled(self):
        from repro import obs

        broker, tracer = self._broker_with_tracer()
        obs.enable()
        try:
            broker.invoke("echo", "shout", "hello")
            counter = obs.OBS.metrics.counter("orb.invocations").labels(
                servant="echo", method="shout", outcome="ok"
            )
            assert counter.value == 1
            orb_events = [
                e for e in obs.OBS.trace.events if e.event == "orb_invoke"
            ]
            assert len(orb_events) == 1
            assert orb_events[0].fields["payload_bytes"] == 5
        finally:
            obs.disable(reset=True)

    def test_local_records_accumulate_without_global_switch(self):
        from repro import obs

        broker, tracer = self._broker_with_tracer()
        assert not obs.enabled()
        broker.invoke("echo", "shout", "a")
        broker.invoke("echo", "shout", "b")
        assert len(tracer) == 2
        assert len(obs.OBS.trace) == 0
        tracer.clear()
        assert len(tracer) == 0
