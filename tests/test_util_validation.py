"""Tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
    check_range,
)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        assert check_probability(0.5) == 0.5

    def test_accepts_int(self):
        assert check_probability(1) == 1.0

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 5, -3])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad)

    @pytest.mark.parametrize("bad", ["0.5", None, True, [0.5]])
    def test_rejects_wrong_types(self, bad):
        with pytest.raises(TypeError):
            check_probability(bad)

    def test_message_names_parameter(self):
        with pytest.raises(ValueError, match="alpha"):
            check_probability(2.0, "alpha")


class TestCheckFraction:
    def test_excludes_zero_includes_one(self):
        with pytest.raises(ValueError):
            check_fraction(0.0)
        assert check_fraction(1.0) == 1.0
        assert check_fraction(1e-9) == 1e-9


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.001) == 0.001
        assert check_positive(1_000_000) == 1_000_000.0

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(1) == 1
        assert check_positive_int(10**9) == 10**9

    def test_rejects_zero_and_negative(self):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                check_positive_int(bad)

    def test_rejects_bool_and_float(self):
        with pytest.raises(TypeError):
            check_positive_int(True)
        with pytest.raises(TypeError):
            check_positive_int(1.0)


class TestCheckRange:
    def test_inclusive(self):
        assert check_range(1.0, 1.0, 2.0) == 1.0
        assert check_range(2.0, 1.0, 2.0) == 2.0

    def test_outside(self):
        with pytest.raises(ValueError):
            check_range(0.99, 1.0, 2.0)
        with pytest.raises(ValueError):
            check_range(2.01, 1.0, 2.0)
