"""Legacy setup shim.

The canonical metadata lives in pyproject.toml; this file exists so
``pip install -e . --no-use-pep517`` works in offline environments
that lack the ``wheel`` package required for PEP 660 editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Fault-tolerant multi-resolution transmission for weakly-connected "
        "mobile web browsing (reproduction of Leong/McLeod/Si/Yau, ICDCS 2000)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
