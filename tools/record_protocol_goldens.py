"""Record golden §4.2 protocol outcomes into tests/data/protocol_goldens.json.

The fixture pins the observable behaviour of the transfer protocol —
success, rounds, frames on the air, early termination, response time,
received content — across seeded geometries and both cache policies,
for both the byte-exact path (``repro.transport.session``) and the
oracle-mode path (``repro.simulation.runner``).

It was first generated from the pre-``repro.protocol`` implementations
(the three hand-maintained copies of the §4.2 state machine) and is the
regression anchor of ``tests/test_integration_transport_vs_runner.py``:
any refactor of the engine or its drivers must reproduce these outcomes
bit-for-bit.  Regenerate only when the protocol is *intentionally*
changed::

    PYTHONPATH=src python tools/record_protocol_goldens.py
"""

from __future__ import annotations

import json
import random
from pathlib import Path

from repro.coding.packets import Packetizer
from repro.simulation.runner import simulate_transfer
from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.sender import DocumentSender
from repro.transport.session import transfer_document

OUTPUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "protocol_goldens.json"

#: (document_size, gamma) geometries for the byte-exact path.
BYTE_GEOMETRIES = [(2048, 1.5), (5120, 1.2), (3072, 2.0)]
#: (m, n) geometries for the oracle path.
ORACLE_GEOMETRIES = [(8, 12), (20, 24), (40, 60)]
ALPHAS = [0.0, 0.2, 0.45]
SEEDS = [1, 2, 3]
MAX_ROUNDS = 12
PACKET_SIZE = 256
PACKET_TIME = (PACKET_SIZE + 4) * 8.0 / 19200.0


def byte_cases() -> list:
    cases = []
    for doc_size, gamma in BYTE_GEOMETRIES:
        sender = DocumentSender(
            Packetizer(packet_size=PACKET_SIZE, redundancy_ratio=gamma)
        )
        payload = bytes(range(256)) * (doc_size // 256)
        prepared = sender.prepare_raw("golden", payload)
        for alpha in ALPHAS:
            for caching in (True, False):
                for threshold in (None, 0.4):
                    for seed in SEEDS:
                        channel = WirelessChannel(
                            alpha=alpha, rng=random.Random(seed)
                        )
                        cache = PacketCache() if caching else None
                        result = transfer_document(
                            prepared,
                            channel,
                            cache=cache,
                            relevance_threshold=threshold,
                            max_rounds=MAX_ROUNDS,
                        )
                        cases.append(
                            {
                                "doc_size": doc_size,
                                "gamma": gamma,
                                "alpha": alpha,
                                "caching": caching,
                                "threshold": threshold,
                                "seed": seed,
                                "m": prepared.m,
                                "n": prepared.n,
                                "success": result.success,
                                "terminated_early": result.terminated_early,
                                "rounds": result.rounds,
                                "frames_sent": result.frames_sent,
                                "response_time": result.response_time,
                                "content_received": result.content_received,
                                "payload_ok": (
                                    result.payload == payload
                                    if result.payload is not None
                                    else None
                                ),
                            }
                        )
    return cases


def oracle_cases() -> list:
    cases = []
    for m, n in ORACLE_GEOMETRIES:
        for alpha in ALPHAS:
            for caching in (True, False):
                for threshold in (None, 0.4):
                    profile = [1.0 / m] * m if threshold is not None else None
                    for seed in SEEDS:
                        outcome = simulate_transfer(
                            m=m,
                            n=n,
                            alpha=alpha,
                            packet_time=PACKET_TIME,
                            rng=random.Random(seed),
                            caching=caching,
                            relevance_threshold=threshold,
                            content_profile=profile,
                            max_rounds=MAX_ROUNDS,
                        )
                        cases.append(
                            {
                                "m": m,
                                "n": n,
                                "alpha": alpha,
                                "caching": caching,
                                "threshold": threshold,
                                "seed": seed,
                                "success": outcome.success,
                                "terminated_early": outcome.terminated_early,
                                "rounds": outcome.rounds,
                                "packets_sent": outcome.packets_sent,
                                "response_time": outcome.response_time,
                            }
                        )
    return cases


def main() -> None:
    goldens = {
        "packet_size": PACKET_SIZE,
        "packet_time": PACKET_TIME,
        "max_rounds": MAX_ROUNDS,
        "transport": byte_cases(),
        "oracle": oracle_cases(),
    }
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    print(
        f"wrote {len(goldens['transport'])} transport + "
        f"{len(goldens['oracle'])} oracle cases -> {OUTPUT}"
    )


if __name__ == "__main__":
    main()
