"""Layering lint: enforce the sans-IO import DAG (run in CI).

The refactor that introduced :mod:`repro.protocol` only stays honest
if the dependency directions hold.  This script AST-parses every
module under ``src/repro`` and fails the build when:

1. ``repro.protocol`` imports any I/O layer — it may only use the
   standard library, :mod:`repro.obs` (telemetry bridge),
   :mod:`repro.util`, and itself;
2. ``repro.simulation`` or ``repro.prototype`` imports
   ``repro.transport.session`` — the byte driver's internals are not a
   library for other layers; shared decision logic lives in
   ``repro.protocol`` (the prototype drives the engine itself, and the
   oracle runner must not silently fall back to the byte path);
3. ``repro.obs`` imports any protocol or I/O layer (telemetry is a
   leaf: everything may report to it, it depends on nothing).

Usage::

    python tools/check_layering.py [--root src/repro]

Exit status 0 when clean, 1 with one ``file:line: message`` per
violation otherwise.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: package prefix → module prefixes it must never import.
#: Checked against absolute imports of ``repro.*`` (the codebase uses
#: no relative imports across packages).
FORBIDDEN: List[Tuple[str, Tuple[str, ...], str]] = [
    (
        "repro.channel",
        (
            "repro.protocol",
            "repro.broadcast",
            "repro.net",
            "repro.transport",
            "repro.simulation",
            "repro.prototype",
            "repro.coding",
            "repro.cli",
            "repro.figures",
            "repro.xmlkit",
            "repro.htmlkit",
            "repro.search",
            "repro.core",
            "repro.text",
            "repro.analysis",
            "repro.data",
            "repro.prep",
        ),
        "repro.channel is the shared decision core below every consumer: "
        "only stdlib, repro.obs, and repro.util",
    ),
    (
        "repro.protocol",
        (
            "repro.broadcast",
            "repro.net",
            "repro.transport",
            "repro.simulation",
            "repro.prototype",
            "repro.coding",
            "repro.cli",
            "repro.figures",
            "repro.xmlkit",
            "repro.htmlkit",
            "repro.search",
            "repro.core",
            "repro.text",
            "repro.analysis",
            "repro.data",
        ),
        "repro.protocol is sans-IO: only stdlib, repro.channel, "
        "repro.obs, and repro.util",
    ),
    (
        "repro.simulation",
        ("repro.transport.session",),
        "the oracle runner drives repro.protocol, not the byte driver",
    ),
    (
        "repro.prototype",
        ("repro.transport.session",),
        "the prototype drives repro.protocol, not the byte driver",
    ),
    (
        "repro.obs",
        (
            "repro.channel",
            "repro.protocol",
            "repro.broadcast",
            "repro.net",
            "repro.transport",
            "repro.simulation",
            "repro.prototype",
            "repro.coding",
        ),
        "repro.obs is a leaf: layers report to it, never the reverse",
    ),
    (
        "repro.net",
        (
            "repro.simulation",
            "repro.prototype",
            "repro.cli",
            "repro.figures",
            "repro.xmlkit",
            "repro.htmlkit",
            "repro.search",
            "repro.core",
            "repro.text",
            "repro.analysis.planner",
            "repro.analysis.negbinom",
            "repro.analysis.response",
            "repro.analysis.sequential",
            "repro.data",
        ),
        "repro.net sits beside repro.transport: it drives repro.protocol "
        "over sockets and may reuse coding/transport state plus the "
        "EWMA estimators, nothing above",
    ),
    (
        "repro.broadcast",
        (
            "repro.net",
            "repro.transport",
            "repro.simulation",
            "repro.prototype",
            "repro.coding",
            "repro.cli",
            "repro.figures",
            "repro.xmlkit",
            "repro.htmlkit",
            "repro.search",
            "repro.core",
            "repro.text",
            "repro.analysis",
            "repro.data",
        ),
        "repro.broadcast is sans-IO like repro.protocol: it schedules "
        "and receives over prep's cooked artifacts using only "
        "repro.protocol, repro.prep, repro.channel, repro.obs, and "
        "repro.util — the socket layer subscribes to it, never the "
        "reverse",
    ),
    (
        "repro.transport",
        ("repro.net", "repro.broadcast"),
        "the simulated byte driver must not depend on the socket layer",
    ),
    (
        "repro.prep",
        (
            "repro.net",
            "repro.broadcast",
            "repro.transport",
            "repro.prototype",
            "repro.simulation",
            "repro.cli",
            "repro.figures",
        ),
        "repro.prep cooks documents for every driver: it may use the "
        "core/coding/text substrate, never the layers that call it",
    ),
    (
        "repro.prep.diskstore",
        (
            "repro.core",
            "repro.text",
            "repro.xmlkit",
            "repro.htmlkit",
            "repro.search",
            "repro.analysis",
            "repro.channel",
            "repro.protocol",
        ),
        "the bundle store persists finished wire frames: stdlib + "
        "repro.coding + repro.obs + repro.prep.prepare only — loading "
        "a bundle must never need the pipeline substrate",
    ),
]


def module_name(root: Path, path: Path) -> str:
    """``src/repro/a/b.py`` → ``repro.a.b`` (packages keep their name)."""
    relative = path.relative_to(root.parent)
    parts = list(relative.with_suffix("").parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def imported_modules(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, module)`` for every import in *tree*."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.level == 0:
                yield node.lineno, node.module


def _violates(imported: str, banned: str) -> bool:
    return imported == banned or imported.startswith(banned + ".")


def check_tree(root: Path) -> List[str]:
    violations: List[str] = []
    for path in sorted(root.rglob("*.py")):
        module = module_name(root, path)
        rules = [
            (banned_prefixes, why)
            for package, banned_prefixes, why in FORBIDDEN
            if module == package or module.startswith(package + ".")
        ]
        if not rules:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for lineno, imported in imported_modules(tree):
            for banned_prefixes, why in rules:
                for banned in banned_prefixes:
                    if _violates(imported, banned):
                        violations.append(
                            f"{path}:{lineno}: {module} imports {imported} ({why})"
                        )
    return violations


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(Path(__file__).resolve().parent.parent / "src" / "repro"),
        help="package root to lint (default: src/repro)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    violations = check_tree(root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} layering violation(s)", file=sys.stderr)
        return 1
    print("layering OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
