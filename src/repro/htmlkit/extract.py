"""Heuristic extraction of ``research-paper`` structure from HTML.

The paper's §6 names this as work in progress: "algorithms to extract
the structure of an HTML document from its content", so the
multi-resolution scheme can serve the vast body of unstructured HTML.
We implement the natural heading-outline heuristic:

* ``<h1>``..``<h6>`` define an outline; consecutive heading levels map
  to section → subsection → subsubsection;
* block-level text runs (``<p>``, ``<li>``, bare text between
  headings) become paragraphs;
* ``<b>``/``<strong>``/``<i>``/``<em>`` content is preserved as
  ``emph`` inline markup, since specially formatted words qualify as
  keywords (§3.3);
* the document ``<title>`` (or the first ``<h1>``) becomes the paper
  title.

The output is a :class:`~repro.xmlkit.dom.Document` valid against the
``research-paper`` DTD, so everything downstream (SC generation,
multi-resolution transmission) works on converted HTML unchanged.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.htmlkit.parser import parse_html
from repro.xmlkit.dom import Document, Element, Text

_HEADING_TAGS = {"h1": 1, "h2": 2, "h3": 3, "h4": 4, "h5": 5, "h6": 6}
_PARAGRAPH_TAGS = frozenset(["p", "li", "blockquote", "pre", "dd", "dt"])
_EMPHASIS_TAGS = frozenset(["b", "strong", "i", "em", "u"])
_SKIP_TAGS = frozenset(["script", "style", "head", "title", "nav"])
_WS_RE = re.compile(r"\s+")


def html_to_research_paper(source: str) -> Document:
    """Convert an HTML string to a ``research-paper`` XML document."""
    html_doc = parse_html(source)
    return structure_from_dom(html_doc)


def structure_from_dom(html_doc: Document) -> Document:
    """Convert an already-parsed HTML DOM to ``research-paper`` XML."""
    title = _document_title(html_doc)
    blocks = _collect_blocks(html_doc.root)

    paper = Element("paper")
    title_el = paper.append(Element("title"))
    title_el.append_text(title)

    # Outline levels: 1 → section, 2 → subsection, 3+ → subsubsection.
    # Heading levels are normalized so the smallest heading seen maps
    # to level 1 (a page whose headings start at <h2> still yields
    # sections, not subsections).
    heading_levels = sorted({level for kind, level, _ in blocks if kind == "heading"})
    level_rank = {level: rank + 1 for rank, level in enumerate(heading_levels)}

    current: List[Element] = [paper]  # current[i] is the open container at depth i

    for kind, level, payload in blocks:
        if kind == "heading":
            rank = min(level_rank[level], 3)
            _open_unit(current, rank, payload)
        else:
            container = _paragraph_container(current)
            paragraph = container.append(Element("paragraph"))
            _fill_paragraph(paragraph, payload)

    _absorb_leading_paragraphs(paper)
    return Document(paper)


def _document_title(html_doc: Document) -> str:
    title_el = html_doc.root.find("title")
    if title_el is not None:
        text = _normalize(title_el.text_content())
        if text:
            return text
    h1 = html_doc.root.find("h1")
    if h1 is not None:
        text = _normalize(h1.text_content())
        if text:
            return text
    return "Untitled document"


Block = Tuple[str, int, object]


def _collect_blocks(root: Element) -> List[Block]:
    """Flatten the HTML body into (heading | paragraph) blocks."""
    blocks: List[Block] = []
    pending_text: List[object] = []

    def flush() -> None:
        if pending_text:
            text = _normalize(
                "".join(
                    node.data if isinstance(node, Text) else node.text_content()
                    for node in pending_text
                )
            )
            if text:
                blocks.append(("paragraph", 0, list(pending_text)))
            pending_text.clear()

    def visit(element: Element) -> None:
        for child in element.children:
            if isinstance(child, Text):
                if child.data.strip():
                    pending_text.append(child)
                continue
            if not isinstance(child, Element):
                continue
            tag = child.tag
            if tag in _SKIP_TAGS:
                continue
            if tag in _HEADING_TAGS:
                flush()
                text = _normalize(child.text_content())
                if text:
                    blocks.append(("heading", _HEADING_TAGS[tag], text))
                continue
            if tag in _PARAGRAPH_TAGS:
                flush()
                if _normalize(child.text_content()):
                    blocks.append(("paragraph", 0, list(child.children)))
                continue
            if tag in _EMPHASIS_TAGS:
                pending_text.append(child)
                continue
            visit(child)

    body = root.find("body") or root
    visit(body)
    flush()
    return blocks


def _open_unit(current: List[Element], rank: int, title: str) -> None:
    """Open a section/subsection/subsubsection at outline depth *rank*."""
    tags = {1: "section", 2: "subsection", 3: "subsubsection"}
    # A heading deeper than (open depth + 1) is clamped: an <h3> right
    # under the paper opens a section, not an orphan subsubsection.
    rank = min(rank, len(current))
    del current[rank:]
    unit = current[-1].append(Element(tags[rank]))
    title_el = unit.append(Element("title"))
    title_el.append_text(title)
    current.append(unit)


def _paragraph_container(current: List[Element]) -> Element:
    return current[-1]


def _fill_paragraph(paragraph: Element, payload: object) -> None:
    """Copy HTML inline content into a research-paper paragraph."""
    if isinstance(payload, str):
        paragraph.append_text(payload)
        return
    for node in payload:  # type: ignore[assignment]
        if isinstance(node, Text):
            paragraph.append_text(_normalize_keep_edges(node.data))
        elif isinstance(node, Element):
            if node.tag in _EMPHASIS_TAGS:
                emph = paragraph.append(Element("emph"))
                emph.append_text(_normalize(node.text_content()))
            else:
                text = _normalize(node.text_content())
                if text:
                    paragraph.append_text(text)


def _absorb_leading_paragraphs(paper: Element) -> None:
    """Move paragraphs that precede the first section into an abstract.

    The research-paper DTD does not allow bare paragraphs under
    <paper>; text before the first heading plays the role the abstract
    plays in the paper's own Table 1 ("the abstract is considered as
    Section 0").
    """
    leading = []
    for child in list(paper.children):
        if isinstance(child, Element) and child.tag == "paragraph":
            leading.append(child)
            paper.children.remove(child)
    if leading:
        abstract = Element("abstract")
        for paragraph in leading:
            abstract.append(paragraph)
        # Insert after title/author, before the first section.
        insert_at = 0
        for index, child in enumerate(paper.children):
            if isinstance(child, Element) and child.tag in ("title", "author"):
                insert_at = index + 1
        paper.children.insert(insert_at, abstract)
        abstract.parent = paper


def _normalize(text: str) -> str:
    return _WS_RE.sub(" ", text).strip()


def _normalize_keep_edges(text: str) -> str:
    return _WS_RE.sub(" ", text)
