"""Hyperlink extraction and cluster construction from HTML pages.

Completes the HTML story: parse tag-soup pages, pull their ``<a
href>`` links, and assemble a
:class:`~repro.core.cluster.DocumentCluster` whose per-page SCs come
from the heading-outline structure extractor.  URLs are normalized
just enough for intra-site clustering (fragments dropped, relative
paths resolved against the page URL).
"""

from __future__ import annotations

import posixpath
from typing import Dict, List, Mapping, Optional, Tuple
from urllib.parse import urljoin, urlsplit, urlunsplit

from repro.core.cluster import DocumentCluster
from repro.core.pipeline import SCPipeline
from repro.htmlkit.extract import structure_from_dom
from repro.htmlkit.parser import parse_html
from repro.xmlkit.dom import Document


def normalize_url(url: str, base: Optional[str] = None) -> str:
    """Resolve *url* against *base* and strip the fragment.

    Returns an empty string for links that carry no location
    (``javascript:``, ``mailto:``, bare fragments).
    """
    url = url.strip()
    if not url or url.startswith("#"):
        return ""
    lowered = url.lower()
    if lowered.startswith(("javascript:", "mailto:", "data:")):
        return ""
    resolved = urljoin(base, url) if base else url
    scheme, netloc, path, query, _fragment = urlsplit(resolved)
    if path:
        path = posixpath.normpath(path)
        if resolved.endswith("/") and not path.endswith("/"):
            path += "/"
        if path == ".":
            path = ""
    return urlunsplit((scheme, netloc, path, query, ""))


def extract_links(html_source: str, base_url: Optional[str] = None) -> List[str]:
    """All outgoing link URLs of a page, normalized, in document order.

    Duplicates are collapsed (first occurrence wins).
    """
    document = parse_html(html_source)
    seen = set()
    links: List[str] = []
    for anchor in document.root.find_all("a"):
        href = anchor.get("href")
        if not href:
            continue
        normalized = normalize_url(href, base=base_url)
        if normalized and normalized not in seen:
            seen.add(normalized)
            links.append(normalized)
    return links


def cluster_from_pages(
    pages: Mapping[str, str],
    entry_page: str,
    pipeline: Optional[SCPipeline] = None,
    distance_decay: float = 0.7,
) -> DocumentCluster:
    """Build a document cluster from raw HTML pages.

    *pages* maps URL → HTML source.  Each page is structure-extracted
    and pipelined into an SC; links pointing outside *pages* are kept
    by the extractor but dropped by the cluster (the web has edges we
    did not crawl).
    """
    if entry_page not in pages:
        raise ValueError(f"entry page {entry_page!r} not among the pages")
    if pipeline is None:
        pipeline = SCPipeline()

    cluster = DocumentCluster(entry_page=entry_page, distance_decay=distance_decay)
    for url, source in pages.items():
        html_doc = parse_html(source)
        research_paper: Document = structure_from_dom(html_doc)
        sc = pipeline.run(research_paper)
        links = [
            target
            for target in extract_links(source, base_url=url)
            if target in pages and target != url
        ]
        cluster.add_page(url, sc, links=links)
    return cluster
