"""Tolerant tag-soup HTML parser.

Real-world HTML of the paper's era (and today) omits end tags, leaves
attributes unquoted, and interleaves block elements freely.  This
parser accepts all of that and produces the same DOM classes as the
XML parser, so the structure extractor can treat both uniformly.

Recovery rules implemented:

* void elements (``br``, ``img``, ...) never take children;
* ``p``/``li``/``td``/``tr``/``option`` auto-close when a sibling of
  the same kind opens;
* an end tag with no matching open element is ignored;
* an end tag for an outer element closes every inner element;
* unknown entities are left verbatim.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.xmlkit.dom import Comment, Document, Element, Text
from repro.xmlkit.tokenizer import resolve_entities

VOID_ELEMENTS = frozenset(
    "area base br col embed hr img input link meta param source track wbr".split()
)

# Opening any tag in the value set closes an open tag in the key.
_AUTO_CLOSE: Dict[str, frozenset] = {
    "p": frozenset(
        "p div ul ol li table h1 h2 h3 h4 h5 h6 blockquote pre form hr section".split()
    ),
    "li": frozenset(["li"]),
    "dt": frozenset(["dt", "dd"]),
    "dd": frozenset(["dt", "dd"]),
    "tr": frozenset(["tr"]),
    "td": frozenset(["td", "th", "tr"]),
    "th": frozenset(["td", "th", "tr"]),
    "option": frozenset(["option", "optgroup"]),
}

# Content of these elements is raw text up to the matching end tag.
_RAW_TEXT_ELEMENTS = frozenset(["script", "style"])

_TAG_RE = re.compile(
    r"<(?P<end>/?)(?P<name>[A-Za-z][A-Za-z0-9:_\-]*)(?P<attrs>[^>]*?)(?P<self>/?)>",
)
_COMMENT_RE = re.compile(r"<!--(?P<data>.*?)-->", re.S)
_DOCTYPE_RE = re.compile(r"<!(?P<data>[^>]*)>")
_ATTR_RE = re.compile(
    r"""(?P<name>[A-Za-z_:][A-Za-z0-9_:.\-]*)\s*
        (?:=\s*(?P<quoted>"[^"]*"|'[^']*')|=\s*(?P<bare>[^\s"'>]+))?""",
    re.X,
)


def parse_html(source: str) -> Document:
    """Parse *source* leniently; always succeeds on any input string.

    The returned document's root is the ``<html>`` element when
    present, otherwise a synthetic ``html`` root wrapping whatever was
    found.
    """
    root = Element("html")
    stack: List[Element] = [root]
    pos = 0
    length = len(source)

    while pos < length:
        lt = source.find("<", pos)
        if lt < 0:
            _append_text(stack[-1], source[pos:])
            break
        if lt > pos:
            _append_text(stack[-1], source[pos:lt])
            pos = lt

        comment = _COMMENT_RE.match(source, pos)
        if comment:
            stack[-1].append(Comment(comment.group("data")))
            pos = comment.end()
            continue

        tag = _TAG_RE.match(source, pos)
        if tag:
            pos = tag.end()
            name = tag.group("name").lower()
            if tag.group("end"):
                _close_tag(stack, name)
            else:
                attrs = _parse_attributes(tag.group("attrs"))
                self_closing = bool(tag.group("self")) or name in VOID_ELEMENTS
                pos = _open_tag(stack, name, attrs, self_closing, source, pos)
            continue

        doctype = _DOCTYPE_RE.match(source, pos)
        if doctype:
            pos = doctype.end()
            continue

        # A bare '<' that opens no recognizable markup is literal text.
        _append_text(stack[-1], "<")
        pos += 1

    html = _find_html_element(root)
    return Document(html if html is not None else root)


def _append_text(parent: Element, raw: str) -> None:
    if not raw:
        return
    data = resolve_entities(raw, strict=False)
    parent.append(Text(data))


def _parse_attributes(raw: str) -> Dict[str, str]:
    attrs: Dict[str, str] = {}
    for match in _ATTR_RE.finditer(raw):
        name = match.group("name").lower()
        quoted = match.group("quoted")
        bare = match.group("bare")
        if quoted is not None:
            value = resolve_entities(quoted[1:-1], strict=False)
        elif bare is not None:
            value = resolve_entities(bare, strict=False)
        else:
            value = name  # boolean attribute, e.g. <input disabled>
        attrs.setdefault(name, value)
    return attrs


def _open_tag(
    stack: List[Element],
    name: str,
    attrs: Dict[str, str],
    self_closing: bool,
    source: str,
    pos: int,
) -> int:
    # Auto-close siblings that cannot nest (e.g. <p> inside <p>).
    while len(stack) > 1:
        open_name = stack[-1].tag
        closers = _AUTO_CLOSE.get(open_name)
        if closers and name in closers:
            stack.pop()
        else:
            break

    element = Element(name, attrs)
    stack[-1].append(element)
    if self_closing:
        return pos

    if name in _RAW_TEXT_ELEMENTS:
        end_re = re.compile(rf"</{name}\s*>", re.I)
        match = end_re.search(source, pos)
        end = match.start() if match else len(source)
        raw = source[pos:end]
        if raw:
            element.append(Text(raw))
        return match.end() if match else len(source)

    stack.append(element)
    return pos


def _close_tag(stack: List[Element], name: str) -> None:
    for index in range(len(stack) - 1, 0, -1):
        if stack[index].tag == name:
            del stack[index:]
            return
    # No matching open element: ignore the stray end tag.


def _find_html_element(root: Element) -> Optional[Element]:
    for child in root.child_elements():
        if child.tag == "html":
            return child
    return None
