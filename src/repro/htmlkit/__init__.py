"""Tolerant HTML parsing and research-paper structure extraction.

Implements the paper's §6 direction of serving unstructured HTML by
recovering an XML-like structure from headings and block elements.
"""

from repro.htmlkit.parser import VOID_ELEMENTS, parse_html
from repro.htmlkit.extract import html_to_research_paper, structure_from_dom
from repro.htmlkit.links import cluster_from_pages, extract_links, normalize_url

__all__ = [
    "parse_html",
    "VOID_ELEMENTS",
    "html_to_research_paper",
    "structure_from_dom",
    "extract_links",
    "normalize_url",
    "cluster_from_pages",
]
