"""Bundled data files (the Table 1 draft paper)."""

from __future__ import annotations

from pathlib import Path

_DATA_DIR = Path(__file__).resolve().parent


def draft_paper_path() -> Path:
    """Path of the bundled draft-paper XML used by Table 1."""
    return _DATA_DIR / "draft_paper.xml"


def draft_paper_source() -> str:
    """The bundled draft-paper XML as a string."""
    return draft_paper_path().read_text(encoding="utf-8")
