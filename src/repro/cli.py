"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro sc document.xml              # print the SC tree
    python -m repro sc page.html --html          # via structure extraction
    python -m repro schedule document.xml --query "mobile web" --lod paragraph
    python -m repro plan --m 40 --alpha 0.3 --success 0.95
    python -m repro transfer document.xml --alpha 0.3 --gamma 1.5 --seed 7
    python -m repro transfer document.xml --trace out.jsonl
    python -m repro obs-summary out.jsonl
    python -m repro figure table1|table2|fig2|...|fig7
"""

from __future__ import annotations

import argparse
import random
import sys
import warnings
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.analysis.planner import minimal_cooked_packets
from repro.channel import legacy_chaos_spec
from repro.core.information import annotate_sc
from repro.core.lod import LOD
from repro.core.multires import TransmissionSchedule
from repro.core.pipeline import SCPipeline
from repro.core.query import Query
from repro.htmlkit.extract import html_to_research_paper
from repro.prep import DeliveryMode, PreparationService, PrepRequest, TransferSettings
from repro.prep.request import KNOWN_MEASURES
from repro.protocol import DEFAULT_MAX_ROUNDS, DEFAULT_ROUND_TIMEOUT
from repro.text.keywords import KeywordExtractor
from repro.transport.cache import PacketCache
from repro.transport.channel import ModelChannel, WirelessChannel
from repro.transport.session import transfer_document
from repro.xmlkit.parser import parse_xml


def _load_document(path: str, html: bool):
    source = Path(path).read_text(encoding="utf-8")
    if html:
        return html_to_research_paper(source)
    return parse_xml(source)


def _build_annotated_sc(args):
    pipeline = SCPipeline()
    document = _load_document(args.path, getattr(args, "html", False))
    sc = pipeline.run(document)
    query = None
    query_text = getattr(args, "query", "") or ""
    if query_text.strip():
        extractor = KeywordExtractor(lemmatizer=pipeline.shared_lemmatizer)
        query = Query(query_text, extractor=extractor)
    annotate_sc(sc, query=query)
    return sc, query


def cmd_sc(args) -> int:
    """Print the structural characteristic as an indented tree."""
    sc, query = _build_annotated_sc(args)
    measure = "mqic" if query is not None and not query.is_empty else "ic"
    print(f"# measure: {measure}")
    for unit in sc.root.walk():
        indent = "  " * unit.lod.value
        title = f" {unit.title!r}" if unit.title else ""
        value = unit.content.get(measure, 0.0)
        print(
            f"{indent}{unit.label:12s} {unit.lod.name.lower():13s} "
            f"{value:8.5f}  {unit.size_bytes():6d}B{title}"
        )
    return 0


def cmd_schedule(args) -> int:
    """Print the transmission schedule at the chosen LOD."""
    sc, query = _build_annotated_sc(args)
    measure = args.measure
    if measure == "auto":
        measure = "mqic" if query is not None and not query.is_empty else "ic"
    schedule = TransmissionSchedule(sc, lod=LOD[args.lod.upper()], measure=measure)
    print(f"# lod: {schedule.lod.name.lower()}  measure: {measure}")
    cumulative = 0.0
    for segment in schedule.segments():
        cumulative += segment.content
        print(
            f"{segment.label:14s} {segment.size:6d}B  "
            f"content={segment.content:8.5f}  cumulative={cumulative:8.5f}"
        )
    return 0


def cmd_plan(args) -> int:
    """Solve for the minimal cooked-packet count."""
    n = minimal_cooked_packets(args.m, args.alpha, args.success)
    print(f"M={args.m} alpha={args.alpha:g} S={args.success:g}")
    print(f"N={n}  gamma={n / args.m:.3f}  expected packets={args.m / (1 - args.alpha):.1f}")
    return 0


def _resolve_chaos_model(args) -> Optional[str]:
    """Fold the retired per-flag chaos surface into ``--chaos-model``.

    The deprecated ``--chaos-drop`` / ``--chaos-corrupt`` /
    ``--chaos-disconnect`` flags are translated by the one shared
    :func:`repro.channel.legacy_chaos_spec` parser into the
    ``iid:...`` spec they always meant, with a ``DeprecationWarning``
    naming the replacement.  Both surfaces at once is an error (exit
    2), matching the historical behaviour.
    """
    spec = getattr(args, "chaos_model", None)
    legacy = legacy_chaos_spec(
        drop=getattr(args, "chaos_drop", 0.0),
        corrupt=getattr(args, "chaos_corrupt", 0.0),
        disconnect=getattr(args, "chaos_disconnect", 0.0),
    )
    if spec and legacy:
        print(
            "error: give either --chaos-model or the deprecated "
            "--chaos-drop/--chaos-corrupt/--chaos-disconnect flags, not both"
        )
        raise SystemExit(2)
    if legacy:
        warnings.warn(
            "--chaos-drop/--chaos-corrupt/--chaos-disconnect are deprecated; "
            f"use --chaos-model {legacy}",
            DeprecationWarning,
            stacklevel=2,
        )
        return legacy
    return spec


def cmd_transfer(args) -> int:
    """Simulate one fault-tolerant transfer of a document file."""
    from repro.coding.backend import get_backend

    tracing = bool(getattr(args, "trace", None))
    chaos_model = _resolve_chaos_model(args)
    if tracing:
        obs.enable()
        obs.OBS.trace.emit(
            "run_config",
            seed=args.seed,
            alpha=args.alpha,
            chaos_model=chaos_model,
            gamma=args.gamma,
            bandwidth=args.bandwidth,
            packet_size=args.packet_size,
            lod=args.lod,
            cache=bool(args.cache),
            stop_at=args.stop_at,
            coding_backend=get_backend(args.coding_backend).name,
        )
    try:
        backend = get_backend(args.coding_backend).name if args.coding_backend else None
        service = PreparationService()
        document_id = service.add_path(
            Path(args.path), html=getattr(args, "html", False)
        )
        prepared = service.prepare(
            document_id,
            PrepRequest(
                lod=args.lod,
                query=getattr(args, "query", "") or "",
                packet_size=args.packet_size,
                gamma=args.gamma,
                backend=backend,
            ),
        )
        if chaos_model:
            from repro.channel import parse_model_spec

            # --chaos-model replaces the i.i.d. --alpha channel: the
            # model owns the fault schedule (seeded by --seed) while a
            # separate RNG keeps garbling layer-independent.
            channel = ModelChannel(
                parse_model_spec(chaos_model, seed=args.seed),
                bandwidth_kbps=args.bandwidth,
                rng=random.Random(args.seed + 1),
            )
        else:
            channel = WirelessChannel(
                bandwidth_kbps=args.bandwidth,
                alpha=args.alpha,
                rng=random.Random(args.seed),
            )
        cache = PacketCache() if args.cache else None
        result = transfer_document(
            prepared,
            channel,
            cache=cache,
            settings=TransferSettings(
                relevance_threshold=args.stop_at,
                max_rounds=args.max_rounds,
            ),
        )
        if tracing:
            obs.OBS.trace.emit(
                "metrics_snapshot",
                metrics=obs.OBS.metrics.snapshot(),
                prep=dict(service.stats),
            )
            try:
                lines = obs.OBS.trace.export_jsonl(args.trace)
            except OSError as exc:
                print(f"error: cannot write trace: {exc}")
                return 2
    finally:
        if tracing:
            obs.disable(reset=True)
    status = "early-stop" if result.terminated_early else ("ok" if result.success else "FAILED")
    print(
        f"{status}: {result.response_time:.2f}s, {result.rounds} round(s), "
        f"{result.frames_sent} frames (M={prepared.m}, N={prepared.n}), "
        f"content={result.content_received:.3f}, seed={args.seed}"
    )
    if tracing:
        print(f"trace: {lines} events -> {args.trace}")
    return 0 if result.success else 1


def _default_prep_request(args) -> PrepRequest:
    """The server-side default preparation parameters from CLI flags."""
    return PrepRequest(
        lod=args.lod,
        query=getattr(args, "query", "") or "",
        packet_size=args.packet_size,
        gamma=args.gamma,
    )


def _build_net_store(args) -> PreparationService:
    """Register every document path with a lazy preparation service.

    One shared pipeline serves all documents, the CLI ``--query`` /
    ``--lod`` / ``--gamma`` flags become the service's *default*
    request (used for clients that send no ``prep`` parameters), and
    nothing is cooked until the first fetch — unless ``--warmup``
    prefetches the default request for every document.
    """
    disk_budget_mb = getattr(args, "disk_budget_mb", None)
    service = PreparationService(
        default_request=_default_prep_request(args),
        sc_budget_bytes=args.sc_budget_mb * 1024 * 1024,
        cooked_budget_bytes=args.cooked_budget_mb * 1024 * 1024,
        disk_path=getattr(args, "disk_cache", None),
        disk_budget_bytes=(
            disk_budget_mb * 1024 * 1024 if disk_budget_mb else None
        ),
    )
    for path in args.paths:
        document_id = service.add_path(Path(path), html=getattr(args, "html", False))
        print(f"serving {document_id!r} from {path}")
    if args.warmup:
        count = service.warmup()
        print(f"warmed up {count} document(s) with the default request")
    return service


def _serve_workers(args) -> int:
    """Multi-process serving: N workers over one port + shared disk tier.

    The ``--warmup`` fix lives here: the parent cooks every document
    into the **shared disk tier once, before any worker exists** —
    each worker then serves its first request as a disk hit instead of
    re-running the pipeline N times (``prep.misses{cooked}`` stays 1
    cluster-wide however many workers fork).
    """
    import asyncio
    import signal
    import tempfile

    from repro.net.stats_http import StatsHTTP
    from repro.net.workers import HAVE_REUSE_PORT, WorkerConfig, WorkerPool

    disk_root = getattr(args, "disk_cache", None)
    if disk_root is None:
        # Workers without a shared tier would each cook their own copy
        # of everything; an ephemeral root restores sharing.
        disk_root = tempfile.mkdtemp(prefix="repro-net-cache-")
        print(f"no --disk-cache given; using ephemeral {disk_root}")
    disk_budget_mb = getattr(args, "disk_budget_mb", None)
    disk_budget = disk_budget_mb * 1024 * 1024 if disk_budget_mb else None
    if args.warmup:
        service = PreparationService(
            default_request=_default_prep_request(args),
            disk_path=disk_root,
            disk_budget_bytes=disk_budget,
        )
        for path in args.paths:
            service.add_path(Path(path), html=getattr(args, "html", False))
        count = service.warmup()
        print(f"warmed {count} document(s) into the shared disk tier")
    config = WorkerConfig(
        host=args.host,
        port=args.port,
        paths=tuple(str(path) for path in args.paths),
        html=getattr(args, "html", False),
        default_request=_default_prep_request(args),
        sc_budget_bytes=args.sc_budget_mb * 1024 * 1024,
        cooked_budget_bytes=args.cooked_budget_mb * 1024 * 1024,
        disk_root=disk_root,
        disk_budget_bytes=disk_budget,
        warmup=False,  # cooked once above, served from disk below
        max_rounds=args.max_rounds,
        round_timeout=args.round_timeout,
        adaptive_gamma=getattr(args, "adaptive_gamma", False),
        gamma_floor=getattr(args, "gamma_floor", 1.0),
        gamma_ceiling=getattr(args, "gamma_ceiling", 3.0),
    )
    pool = WorkerPool(config, args.workers)
    pool.start()
    mode = "SO_REUSEPORT" if pool.config.reuse_port else "shared listener"
    print(
        f"listening on {pool.host}:{pool.port} with {args.workers} "
        f"worker(s) via {mode} (ctrl-c to stop)"
    )
    for path in args.paths:
        print(f"serving {Path(path).stem!r} from {path}")

    async def _wait() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):
                pass
        metrics_http = None
        if getattr(args, "metrics_port", None) is not None:
            metrics_http = StatsHTTP(
                lambda: pool.stats_snapshot(timeout=2.0),
                args.host,
                args.metrics_port,
            )
            await metrics_http.start()
            print(
                f"merged metrics on http://{metrics_http.host}:"
                f"{metrics_http.port}/metrics (also /stats.json, /healthz)"
            )
        try:
            await stop.wait()
        finally:
            if metrics_http is not None:
                await metrics_http.stop()

    try:
        asyncio.run(_wait())
    except KeyboardInterrupt:
        pass
    # Drain fan-out: every worker finishes in-flight transfers within
    # the round timeout, reports a final snapshot, and exits.
    finals = pool.stop(drain_timeout=args.round_timeout)
    completed = sum(
        snapshot["server"].get("completed", 0)
        for snapshot in finals
        if snapshot is not None
    )
    frames = sum(
        snapshot["server"].get("frames_sent", 0)
        for snapshot in finals
        if snapshot is not None
    )
    print(
        f"served {completed} transfer(s), {frames} frame(s) across "
        f"{len([s for s in finals if s is not None])}/{args.workers} worker(s)"
    )
    return 0


def cmd_net_serve(args) -> int:
    """Serve cooked documents over TCP until interrupted."""
    import asyncio

    from repro.net.server import NetServer

    if getattr(args, "carousel", False) and getattr(args, "via_broker", False):
        print("error: --carousel is not supported with --via-broker")
        return 2
    if getattr(args, "workers", 1) > 1:
        if getattr(args, "via_broker", False):
            print("error: --workers is not supported with --via-broker")
            return 2
        if getattr(args, "carousel", False):
            # Each worker would air its own independent stream; one
            # shared carousel across processes needs a shared medium.
            print("error: --carousel is not supported with --workers > 1")
            return 2
        return _serve_workers(args)

    async def _serve() -> int:
        if getattr(args, "via_broker", False):
            if getattr(args, "adaptive_gamma", False):
                print("warning: --adaptive-gamma is not supported with --via-broker")
            from repro.prototype.broker import ObjectRequestBroker
            from repro.prototype.netmode import serve_broker
            from repro.prototype.server import (
                DatabaseGateway,
                DocumentTransmitterService,
            )

            gateway = DatabaseGateway()
            for path in args.paths:
                document_id = Path(path).stem
                gateway.put(document_id, Path(path).read_text(encoding="utf-8"))
                print(f"serving {document_id!r} from {path} (via broker)")
            broker = ObjectRequestBroker()
            broker.register(
                "transmitter",
                DocumentTransmitterService(gateway, packet_size=args.packet_size),
            )
            server = await serve_broker(
                broker,
                args.host,
                args.port,
                request=_default_prep_request(args),
                max_rounds=args.max_rounds,
                round_timeout=args.round_timeout,
            )
        else:
            store = _build_net_store(args)
            carousel = None
            if getattr(args, "carousel", False):
                from repro.broadcast import CarouselScheduler

                carousel = CarouselScheduler.from_service(
                    store,
                    schedule=args.carousel_schedule,
                    max_repeats=args.carousel_max_repeats,
                    limit=args.carousel_limit,
                )
                print(
                    f"carousel on: {len(carousel.documents)} document(s), "
                    f"{carousel.period_slots} slot(s)/cycle "
                    f"({args.carousel_schedule})"
                )
            server = NetServer(
                store,
                args.host,
                args.port,
                max_rounds=args.max_rounds,
                round_timeout=args.round_timeout,
                adaptive_gamma=getattr(args, "adaptive_gamma", False),
                gamma_floor=getattr(args, "gamma_floor", 1.0),
                gamma_ceiling=getattr(args, "gamma_ceiling", 3.0),
                carousel=carousel,
            )
            await server.start()
            if getattr(args, "adaptive_gamma", False):
                print(
                    f"adaptive gamma on "
                    f"(floor={args.gamma_floor:g} ceiling={args.gamma_ceiling:g})"
                )
        print(f"listening on {server.host}:{server.port} (ctrl-c to stop)")
        metrics_http = None
        if getattr(args, "metrics_port", None) is not None:
            if not hasattr(server, "stats_snapshot"):
                print("warning: --metrics-port is not supported with --via-broker")
            else:
                from repro.net.stats_http import StatsHTTP

                metrics_http = StatsHTTP(
                    server.stats_snapshot, args.host, args.metrics_port
                )
                await metrics_http.start()
                print(
                    f"metrics on http://{metrics_http.host}:{metrics_http.port}"
                    "/metrics (also /stats.json, /healthz)"
                )
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            if metrics_http is not None:
                await metrics_http.stop()
            await server.stop()
            stats = server.stats
            print(
                f"served {stats['completed']} transfer(s), "
                f"{stats['rounds_served']} round(s), "
                f"{stats['frames_sent']} frame(s)"
            )
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _client_prep_request(args) -> Optional[PrepRequest]:
    """Per-fetch preparation parameters, or None when none were given.

    ``None`` keeps the ``prep`` field off the wire entirely, so the
    server cooks with *its* configured default — the right behaviour
    for clients that don't care.
    """
    supplied = {
        name: value
        for name, value in (
            ("query", args.query),
            ("lod", args.lod),
            ("measure", args.measure),
            ("gamma", args.gamma),
            ("packet_size", args.prep_packet_size),
            ("delivery", getattr(args, "delivery", None)),
        )
        if value is not None
    }
    return PrepRequest(**supplied) if supplied else None


def _client_settings(args) -> TransferSettings:
    return TransferSettings(
        relevance_threshold=args.stop_at,
        max_rounds=args.max_rounds,
        round_timeout=args.round_timeout,
        max_reconnects=args.max_reconnects,
    )


def cmd_net_fetch(args) -> int:
    """Fetch one document from a running net server."""
    import asyncio

    from repro.net import ConnectionLost, NetClient, WireError

    client = NetClient(
        args.host,
        args.port,
        cache=PacketCache() if args.cache else None,
        settings=_client_settings(args),
        request=_client_prep_request(args),
    )
    try:
        result = asyncio.run(client.fetch(args.document_id))
    except (ConnectionLost, WireError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    status = (
        "early-stop" if result.terminated_early
        else ("ok" if result.success else "FAILED")
    )
    size = len(result.payload) if result.payload is not None else 0
    print(
        f"{status}: {result.document_id} in {result.elapsed:.3f}s, "
        f"{result.rounds} round(s), {result.frames_received} frame(s), "
        f"{result.reconnects} reconnect(s), "
        f"content={result.content_received:.3f}, {size} byte(s)"
    )
    if args.out and result.payload is not None:
        Path(args.out).write_bytes(result.payload)
        print(f"wrote {size} byte(s) -> {args.out}")
    return 0 if result.success else 1


def cmd_net_loadgen(args) -> int:
    """Fan out concurrent fetches, optionally through a chaos proxy."""
    import asyncio

    from repro.net import ChaosProxy, run_loadgen, write_bench

    chaos_params = None
    # One chaos surface: the deprecated per-flag probabilities forward
    # through the shared legacy_chaos_spec parser into the same seeded
    # model-spec path (byte-identical verdict schedules either way).
    chaos_model = _resolve_chaos_model(args)

    async def _run():
        nonlocal chaos_params
        proxy = None
        host, port = args.host, args.port
        if chaos_model:
            from repro.channel import parse_model_spec

            try:
                model = parse_model_spec(chaos_model, seed=args.seed)
            except (ValueError, OSError) as exc:
                raise SystemExit(f"error: bad --chaos-model: {exc}")
            proxy = ChaosProxy(args.host, args.port, model=model)
            await proxy.start()
            host, port = proxy.host, proxy.port
            chaos_params = {"model": chaos_model, "seed": args.seed}
            print(
                f"chaos proxy on {host}:{port} "
                f"(model={chaos_model} seed={args.seed})"
            )
        try:
            if getattr(args, "processes", 1) > 1:
                # Multi-process drivers: the blocking fan-out runs in
                # an executor thread so a chaos proxy on this loop
                # keeps relaying while the client fleet hammers it.
                from functools import partial

                from repro.net import run_loadgen_mp

                loop = asyncio.get_running_loop()
                report, _results = await loop.run_in_executor(
                    None,
                    partial(
                        run_loadgen_mp,
                        host,
                        port,
                        args.document_id,
                        clients=args.clients,
                        processes=args.processes,
                        use_cache=args.cache,
                        settings=_client_settings(args),
                        request=_client_prep_request(args),
                        error_budget=args.error_budget,
                    ),
                )
            else:
                report, _results = await run_loadgen(
                    host,
                    port,
                    args.document_id,
                    clients=args.clients,
                    use_cache=args.cache,
                    settings=_client_settings(args),
                    request=_client_prep_request(args),
                    error_budget=args.error_budget,
                )
        finally:
            if proxy is not None:
                await proxy.stop()
                print(f"proxy stats: {proxy.stats}")
        return report

    report = asyncio.run(_run())
    print(
        f"{report.succeeded}/{report.clients} succeeded "
        f"({report.decoded} decoded, {report.early_stopped} early-stop, "
        f"{report.failed} failed), {report.reconnects} reconnect(s)"
    )
    print(
        f"latency: mean={report.mean_seconds:.3f}s p50={report.p50_seconds:.3f}s "
        f"p95={report.p95_seconds:.3f}s p99={report.p99_seconds:.3f}s"
    )
    print(
        f"throughput: {report.fetches_per_second:.1f} fetches/s, "
        f"{report.payload_bytes} payload byte(s) "
        f"({report.served_mb_per_second:.3f} MB/s) in {report.elapsed:.3f}s"
    )
    print(
        f"slo: error_rate={report.error_rate:.3f} "
        f"budget={report.error_budget:g} "
        f"remaining={report.error_budget_remaining:.1%}"
    )
    if args.bench:
        write_bench(
            report,
            args.bench,
            document_id=args.document_id,
            chaos=chaos_params,
            label=args.bench_label,
            append_row=args.bench_append,
        )
        mode = "row appended" if args.bench_append else "record"
        print(f"bench {mode} -> {args.bench}")
    return 0 if report.error_budget_remaining > 0 else 1


def cmd_net_stats(args) -> int:
    """Query a running server's operational snapshot (STATS frame)."""
    import asyncio
    import json

    from repro.net import ConnectionLost, WireError, fetch_stats

    try:
        snapshot = asyncio.run(fetch_stats(args.host, args.port))
    except (ConnectionLost, WireError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    server = snapshot.get("server", {})
    print(
        f"connections={server.get('connections', 0)} "
        f"active={snapshot.get('active_connections', 0)} "
        f"completed={server.get('completed', 0)} "
        f"rounds={server.get('rounds_served', 0)} "
        f"frames={server.get('frames_sent', 0)} "
        f"flight_dumps={server.get('flight_dumps', 0)}"
    )
    slo = snapshot.get("slo", {})
    if slo:
        print(
            f"slo: count={slo.get('count', 0)} "
            f"p50={slo.get('p50_seconds', 0):.3f}s "
            f"p95={slo.get('p95_seconds', 0):.3f}s "
            f"p99={slo.get('p99_seconds', 0):.3f}s "
            f"error_rate={slo.get('error_rate', 0):.3f} "
            f"budget_remaining={slo.get('error_budget_remaining', 1.0):.1%}"
        )
    prep = snapshot.get("prep")
    if prep:
        print(
            f"prep: sc {prep.get('sc_hits', 0)}/{prep.get('sc_misses', 0)} "
            f"hit/miss, cooked {prep.get('cooked_hits', 0)}"
            f"/{prep.get('cooked_misses', 0)} hit/miss, "
            f"{prep.get('evictions', 0)} eviction(s)"
        )
    for conn in snapshot.get("connections", []):
        print(
            f"  conn {conn.get('conn_id')}: {conn.get('document')!r} "
            f"transfer={conn.get('transfer_id')} rounds={conn.get('rounds')} "
            f"sendq={conn.get('sendq_depth')} age={conn.get('age_seconds'):.1f}s"
        )
    return 0


def cmd_obs_summary(args) -> int:
    """Summarize a telemetry JSONL trace (timeline + histogram table)."""
    from repro.obs.summary import print_summary

    try:
        return print_summary(args.path)
    except BrokenPipeError:
        # Reader (e.g. ``| head``) closed stdout: not an error.  Point
        # stdout at devnull so the interpreter's final flush is quiet.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 2


def cmd_figure(args) -> int:
    """Reproduce a paper artifact (see repro.figures)."""
    import repro.figures as figures
    from repro.simulation.parallel import resolve_jobs
    from repro.simulation.parameters import from_environment

    jobs = resolve_jobs(args.jobs)
    printers = {
        "table1": figures.print_table1,
        "table2": figures.print_table2,
        "fig2": figures.print_figure2,
        "fig3": figures.print_figure3,
        "fig4": lambda: figures.print_figure4(from_environment(), jobs=jobs),
        "fig5": lambda: figures.print_figure5(from_environment(), jobs=jobs),
        "fig6": lambda: figures.print_figure6(from_environment(), jobs=jobs),
        "fig7": lambda: figures.print_figure7(from_environment(), jobs=jobs),
    }
    if args.artifact == "list":
        for name in sorted(printers):
            print(name)
        return 0
    printer = printers.get(args.artifact)
    if printer is None:
        print(f"unknown artifact {args.artifact!r}; choose from {sorted(printers)}")
        return 2
    printer()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-tolerant multi-resolution web transmission (ICDCS 2000 reproduction)",
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sc = sub.add_parser("sc", help="print a document's structural characteristic")
    p_sc.add_argument("path")
    p_sc.add_argument("--html", action="store_true", help="treat input as HTML")
    p_sc.add_argument("--query", default="", help="query for QIC/MQIC annotation")
    p_sc.set_defaults(func=cmd_sc)

    p_sched = sub.add_parser("schedule", help="print a transmission schedule")
    p_sched.add_argument("path")
    p_sched.add_argument("--html", action="store_true")
    p_sched.add_argument("--query", default="")
    p_sched.add_argument(
        "--lod",
        default="paragraph",
        choices=[lod.name.lower() for lod in LOD],
    )
    p_sched.add_argument(
        "--measure",
        default="auto",
        help="content measure key (auto = mqic with a query, else ic)",
    )
    p_sched.set_defaults(func=cmd_schedule)

    p_plan = sub.add_parser("plan", help="minimal cooked packets for (M, alpha, S)")
    p_plan.add_argument("--m", type=int, required=True)
    p_plan.add_argument("--alpha", type=float, required=True)
    p_plan.add_argument("--success", type=float, default=0.95)
    p_plan.set_defaults(func=cmd_plan)

    p_xfer = sub.add_parser("transfer", help="simulate one document transfer")
    p_xfer.add_argument("path")
    p_xfer.add_argument("--html", action="store_true")
    p_xfer.add_argument("--query", default="")
    p_xfer.add_argument("--lod", default="paragraph",
                        choices=[lod.name.lower() for lod in LOD])
    p_xfer.add_argument("--alpha", type=float, default=0.1)
    p_xfer.add_argument("--gamma", type=float, default=1.5)
    p_xfer.add_argument("--bandwidth", type=float, default=19.2)
    p_xfer.add_argument("--packet-size", type=int, default=256)
    p_xfer.add_argument("--seed", type=int, default=0)
    p_xfer.add_argument("--cache", action="store_true", help="enable the packet cache")
    p_xfer.add_argument("--stop-at", type=float, default=None,
                        help="relevance threshold F for early termination")
    p_xfer.add_argument("--max-rounds", type=int, default=DEFAULT_MAX_ROUNDS,
                        metavar="N",
                        help="retransmission-round bound before giving up "
                             f"(default: {DEFAULT_MAX_ROUNDS})")
    p_xfer.add_argument("--trace", default=None, metavar="PATH",
                        help="record a telemetry trace to PATH (JSON Lines)")
    p_xfer.add_argument("--chaos-model", default=None, metavar="SPEC",
                        help="channel model replacing the i.i.d. --alpha one: "
                             "iid:drop=0.1,corrupt=0.2 | "
                             "gilbert:alpha=0.2,burst=5 | trace:FILE.json "
                             "(seeded by --seed)")
    p_xfer.add_argument("--chaos-drop", type=float, default=0.0,
                        help="deprecated: use --chaos-model iid:drop=P")
    p_xfer.add_argument("--chaos-corrupt", type=float, default=0.0,
                        help="deprecated: use --chaos-model iid:corrupt=P")
    p_xfer.add_argument("--chaos-disconnect", type=float, default=0.0,
                        help="deprecated: use --chaos-model iid:disconnect=P")
    p_xfer.add_argument(
        "--coding-backend",
        default=None,
        metavar="NAME",
        help="GF(2^8) kernel: baseline, fused, numpy, or auto "
        "(default: $REPRO_CODING_BACKEND, else best available)",
    )
    p_xfer.set_defaults(func=cmd_transfer)

    p_fig = sub.add_parser("figure", help="reproduce a paper table/figure")
    p_fig.add_argument("artifact")
    p_fig.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation sweeps "
        "(0 = cpu count; default: $REPRO_JOBS, else 1)",
    )
    p_fig.set_defaults(func=cmd_figure)

    p_net = sub.add_parser("net", help="run the §4.2 protocol over real sockets")
    net_sub = p_net.add_subparsers(dest="net_command", required=True)

    p_serve = net_sub.add_parser("serve", help="serve cooked documents over TCP")
    p_serve.add_argument("paths", nargs="+", help="XML document file(s) to serve")
    p_serve.add_argument("--html", action="store_true", help="treat inputs as HTML")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (0 picks a free port)")
    p_serve.add_argument("--query", default="", help="query for MQIC ordering")
    p_serve.add_argument("--lod", default="paragraph",
                         choices=[lod.name.lower() for lod in LOD])
    p_serve.add_argument("--gamma", type=float, default=1.5)
    p_serve.add_argument("--packet-size", type=int, default=256)
    p_serve.add_argument("--max-rounds", type=int, default=DEFAULT_MAX_ROUNDS)
    p_serve.add_argument("--round-timeout", type=float,
                         default=DEFAULT_ROUND_TIMEOUT, metavar="SECONDS")
    p_serve.add_argument("--via-broker", action="store_true",
                         help="route each fetch through the prototype ORB "
                              "(interceptors see networked requests)")
    p_serve.add_argument("--warmup", action="store_true",
                         help="cook every document with the default request "
                              "before accepting connections")
    p_serve.add_argument("--sc-budget-mb", type=int, default=64,
                         help="byte budget for the SC cache tier (MiB)")
    p_serve.add_argument("--cooked-budget-mb", type=int, default=256,
                         help="byte budget for the cooked cache tier (MiB)")
    p_serve.add_argument("--adaptive-gamma", action="store_true",
                         help="adapt per-client redundancy to the observed "
                              "loss rate (EWMA) instead of a fixed gamma")
    p_serve.add_argument("--gamma-floor", type=float, default=1.0,
                         help="lower bound for the adaptive gamma (default: 1.0)")
    p_serve.add_argument("--gamma-ceiling", type=float, default=3.0,
                         help="upper bound for the adaptive gamma (default: 3.0)")
    p_serve.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                         help="serve /metrics (Prometheus text), /stats.json, "
                              "and /healthz on this HTTP port (0 picks one)")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="serving processes sharing the port via "
                              "SO_REUSEPORT (fallback: one shared listener); "
                              "each runs its own event loop (default: 1)")
    p_serve.add_argument("--disk-cache", default=None, metavar="DIR",
                         help="persistent cooked-bundle cache root shared by "
                              "all workers and across restarts (multi-worker "
                              "default: an ephemeral directory)")
    p_serve.add_argument("--disk-budget-mb", type=int, default=None,
                         help="soft byte budget for the disk cache (MiB; "
                              "default: unbounded)")
    p_serve.add_argument("--carousel", action="store_true",
                         help="air a broadcast carousel of the served "
                              "documents next to unicast serving; clients "
                              "subscribe with --delivery carousel")
    p_serve.add_argument("--carousel-schedule", default="flat",
                         choices=["flat", "skewed"],
                         help="flat: every document once per cycle; skewed: "
                              "broadcast-disk repeats by sqrt(demand)")
    p_serve.add_argument("--carousel-limit", type=int, default=16,
                         metavar="N",
                         help="hottest documents put on air (default: 16)")
    p_serve.add_argument("--carousel-max-repeats", type=int, default=8,
                         metavar="N",
                         help="per-document appearance ceiling per cycle "
                              "under the skewed schedule (default: 8)")
    p_serve.set_defaults(func=cmd_net_serve)

    def add_prep_flags(p) -> None:
        """Per-request preparation parameters (unset → server default)."""
        p.add_argument("--query", default=None,
                       help="query for QIC/MQIC ordering of this fetch")
        p.add_argument("--lod", default=None,
                       choices=[lod.name.lower() for lod in LOD],
                       help="level of detail for this fetch")
        p.add_argument("--measure", default=None,
                       choices=sorted(KNOWN_MEASURES),
                       help="content measure (default: auto)")
        p.add_argument("--gamma", type=float, default=None,
                       help="redundancy ratio for this fetch")
        p.add_argument("--prep-packet-size", type=int, default=None,
                       help="packet size the server should cook with")
        p.add_argument("--delivery", default=None,
                       choices=[mode.value for mode in DeliveryMode],
                       help="delivery mode: per-client unicast rounds "
                            "(default) or the server's shared broadcast "
                            "carousel")

    p_fetch = net_sub.add_parser("fetch", help="fetch one document from a server")
    p_fetch.add_argument("document_id")
    p_fetch.add_argument("--host", default="127.0.0.1")
    p_fetch.add_argument("--port", type=int, default=8642)
    p_fetch.add_argument("--no-cache", dest="cache", action="store_false",
                         help="disable the §4.2 packet cache (no resume)")
    p_fetch.add_argument("--stop-at", type=float, default=None,
                         help="relevance threshold F for early termination")
    p_fetch.add_argument("--max-rounds", type=int, default=DEFAULT_MAX_ROUNDS)
    p_fetch.add_argument("--round-timeout", type=float,
                         default=DEFAULT_ROUND_TIMEOUT, metavar="SECONDS")
    p_fetch.add_argument("--max-reconnects", type=int, default=4)
    p_fetch.add_argument("--out", default=None, metavar="PATH",
                         help="write the reconstructed document to PATH")
    add_prep_flags(p_fetch)
    p_fetch.set_defaults(func=cmd_net_fetch)

    p_load = net_sub.add_parser(
        "loadgen", help="fan out concurrent fetches, optionally through chaos"
    )
    p_load.add_argument("document_id")
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=8642)
    p_load.add_argument("--clients", type=int, default=50)
    p_load.add_argument("--processes", type=int, default=1, metavar="N",
                        help="client driver processes; splits --clients "
                             "across N processes so client-side CPU stops "
                             "capping the measured rate (default: 1)")
    p_load.add_argument("--no-cache", dest="cache", action="store_false")
    p_load.add_argument("--stop-at", type=float, default=None)
    p_load.add_argument("--max-rounds", type=int, default=DEFAULT_MAX_ROUNDS)
    p_load.add_argument("--round-timeout", type=float,
                        default=DEFAULT_ROUND_TIMEOUT, metavar="SECONDS")
    p_load.add_argument("--max-reconnects", type=int, default=4)
    p_load.add_argument("--chaos-drop", type=float, default=0.0,
                        help="deprecated: use --chaos-model iid:drop=P")
    p_load.add_argument("--chaos-corrupt", type=float, default=0.0,
                        help="deprecated: use --chaos-model iid:corrupt=P")
    p_load.add_argument("--chaos-disconnect", type=float, default=0.0,
                        help="deprecated: use --chaos-model iid:disconnect=P")
    p_load.add_argument("--chaos-model", default=None, metavar="SPEC",
                        help="channel model for the proxy: "
                             "iid:drop=0.1,corrupt=0.2 | "
                             "gilbert:alpha=0.2,burst=5 | trace:FILE.json "
                             "(seeded by --seed; excludes the deprecated "
                             "--chaos-* probability flags)")
    p_load.add_argument("--seed", type=int, default=0,
                        help="chaos channel-model seed")
    p_load.add_argument("--error-budget", type=float, default=0.05,
                        metavar="RATE",
                        help="tolerated error rate; exit 1 once the budget "
                             "is exhausted (default: 0.05)")
    p_load.add_argument("--bench", default=None, metavar="PATH",
                        help="write the SLO benchmark record (BENCH_net.json "
                             "format) to PATH")
    p_load.add_argument("--bench-label", default=None, metavar="NAME",
                        help="label this run variant in the bench record "
                             "(e.g. bursty-adaptive)")
    p_load.add_argument("--bench-append", action="store_true",
                        help="append the record to the bench file's rows "
                             "list instead of replacing the file (A/B legs)")
    add_prep_flags(p_load)
    p_load.set_defaults(func=cmd_net_loadgen)

    p_stats = net_sub.add_parser(
        "stats", help="query a running server's operational snapshot"
    )
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, default=8642)
    p_stats.add_argument("--json", action="store_true",
                         help="print the raw snapshot as JSON")
    p_stats.set_defaults(func=cmd_net_stats)

    p_obs = sub.add_parser(
        "obs-summary",
        help="print the per-transfer timeline and metrics of a JSONL trace",
    )
    p_obs.add_argument("path")
    p_obs.set_defaults(func=cmd_obs_summary)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
