"""Disk-backed cooked-bundle store: the third preparation-cache tier.

The two in-memory tiers of the
:class:`~repro.prep.service.PreparationService` die with the process.
:class:`DiskCookedStore` persists the *cooked* tier below them so that
restarts — and sibling worker processes sharing one cache root — serve
previously-cooked content without re-running the pipeline or the
encode.  The unit of storage is a **bundle**: the complete wire image
of one prepared document, i.e. exactly the ``MSG_FRAME`` envelope
arena that :meth:`~repro.prep.prepare.PreparedDocument.wire_frames`
serves, plus a JSON header carrying everything needed to rebuild the
:class:`~repro.prep.prepare.PreparedDocument` around it.

Bundle file format (version ``RPB1``, all integers big-endian)::

    offset 0   magic        4 bytes   b"RPB1"
    offset 4   header_len   4 bytes   uint32
    offset 8   header       JSON (UTF-8): document_id, digest, m, n,
                            packet_size, original_size, systematic,
                            measure, backend, content_profile,
                            frame_count, arena_bytes
    ...        arena        frame_count MSG_FRAME wire envelopes,
                            back to back (the zero-copy serving arena)
    last 32    checksum     SHA-256 over every preceding byte

Safety discipline:

* **atomic visibility** — bundles are written to a same-directory
  temporary file, flushed, fsynced, and ``os.replace``d into place; a
  writer killed mid-bundle leaves only an invisible ``*.tmp.*`` file
  (swept lazily), never a half-written bundle under the real name;
* **whole-file checksum** — :meth:`get` verifies the SHA-256 trailer
  before trusting a byte; a failed check (torn rename-less write,
  bit rot, truncation) **quarantines** the file under
  ``<root>/quarantine/`` and reports a miss, so the caller re-cooks;
* **zero-copy reads** — a verified bundle is ``mmap``-ed and its
  envelopes are served as memoryview slices of the mapping, the same
  shape the in-memory arena path produces;
* **cross-process single-flight** — :meth:`lock` takes an exclusive
  ``flock`` on a per-bundle lock file, so N workers missing the same
  key cook it exactly once cluster-wide (the losers block, then find
  the winner's bundle).  Locks die with their holder, so a crashed
  cook never wedges the tier.

Layout on disk: ``<root>/<digest>/<keyhash>.bundle`` — one directory
per content digest, so digest invalidation is a directory removal.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.coding.packets import CookedDocument
from repro.coding.rs import RabinDispersal, SystematicRSCodec
from repro.obs.runtime import OBS
from repro.prep.prepare import (
    _ENVELOPE_OVERHEAD,
    _FRAME_MSG_TYPE,
    PreparedDocument,
)

#: Bundle format magic + version (bump on any layout change).
BUNDLE_MAGIC = b"RPB1"

#: SHA-256 trailer length.
_CHECKSUM_BYTES = 32

#: magic + header_len prefix.
_PREFIX_BYTES = 8

#: Subdirectory for checksum-rejected bundles awaiting inspection.
QUARANTINE_DIR = "quarantine"

try:  # POSIX advisory locks back the cross-process single-flight.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


def key_digest(key: Tuple) -> str:
    """Stable filename hash of a canonical cooked-tier cache key.

    The key is a flat tuple of primitives (digest, lod, measure,
    query, packet size, gamma, backend, systematic, pipeline token),
    so its ``repr`` is deterministic across processes and restarts.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class DiskCookedStore:
    """Persistent cooked-bundle tier below the in-memory LRUs.

    Parameters
    ----------
    root:
        Cache directory (created on first use).  Safe to share across
        processes; every write is atomic and every read verified.
    max_bytes:
        Soft budget for the sum of bundle sizes; exceeded space is
        reclaimed oldest-access-first after each write.  ``None``
        disables pruning.
    """

    def __init__(self, root, *, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.root.mkdir(parents=True, exist_ok=True)
        #: Always-on counters (mirrored into ``prep.disk.*`` when
        #: telemetry is enabled).
        self.stats: Dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "rejected": 0,
            "quarantined": 0,
            "pruned": 0,
        }

    # -- paths -------------------------------------------------------------

    def bundle_path(self, key: Tuple) -> Path:
        """Where the bundle for *key* lives (``<root>/<digest>/<hash>.bundle``)."""
        digest = str(key[0])
        return self.root / digest / f"{key_digest(key)}.bundle"

    def _quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- cross-process single-flight ---------------------------------------

    @contextmanager
    def lock(self, key: Tuple) -> Iterator[None]:
        """Exclusive cross-process lock for one bundle's cook.

        Blocks until the current holder releases (or dies — ``flock``
        locks evaporate with their process).  On platforms without
        ``fcntl`` the lock degrades to a no-op: atomic rename plus the
        checksum still keep readers safe, only duplicate cooks are
        possible.
        """
        path = self.bundle_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        lock_path = path.with_suffix(".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    # -- write path --------------------------------------------------------

    def put(self, key: Tuple, prepared: PreparedDocument) -> Path:
        """Persist *prepared* as the bundle for *key* (atomic, fsynced)."""
        envelopes = prepared.wire_frames()
        cooked = prepared.cooked
        header = {
            "version": 1,
            "document_id": prepared.document_id,
            "digest": str(key[0]),
            "m": prepared.m,
            "n": prepared.n,
            "packet_size": cooked.packet_size,
            "original_size": cooked.original_size,
            "systematic": bool(getattr(cooked.codec, "systematic", False)),
            "measure": prepared.measure,
            "backend": getattr(
                getattr(cooked.codec, "backend", None), "name", ""
            ),
            "content_profile": list(prepared.content_profile),
            "frame_count": len(envelopes),
            "arena_bytes": sum(len(view) for view in envelopes),
        }
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        path = self.bundle_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f"{path.name}.tmp.{os.getpid()}"
        hasher = hashlib.sha256()
        try:
            with open(tmp, "wb") as handle:
                for chunk in (
                    BUNDLE_MAGIC,
                    len(header_bytes).to_bytes(4, "big"),
                    header_bytes,
                ):
                    hasher.update(chunk)
                    handle.write(chunk)
                for view in envelopes:
                    hasher.update(view)
                    handle.write(view)
                handle.write(hasher.digest())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            # A failed (or killed-then-resumed) write must never leave
            # a visible bundle; the tmp file is invisible to readers.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.stats["writes"] += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "prep.disk.writes", "cooked bundles persisted to disk"
            ).inc()
        if self.max_bytes is not None:
            self._prune(keep=path)
        return path

    # -- read path ---------------------------------------------------------

    def get(self, key: Tuple) -> Optional[PreparedDocument]:
        """The verified bundle for *key*, or None (absent or rejected).

        A bundle that fails any structural or checksum test is moved
        to the quarantine directory and reported as a miss — the
        caller re-cooks and overwrites.
        """
        path = self.bundle_path(key)
        try:
            handle = open(path, "rb")
        except OSError:
            self.stats["misses"] += 1
            return None
        try:
            with handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError):
            # Empty or vanished file: treat as a torn write.
            self._reject(path)
            return None
        prepared = self._parse(mapped, path)
        if prepared is None:
            return None
        self.stats["hits"] += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "prep.disk.hits", "cooked bundles served from disk"
            ).inc()
        return prepared

    def _parse(
        self, mapped: mmap.mmap, path: Path
    ) -> Optional[PreparedDocument]:
        window = memoryview(mapped)
        size = len(window)
        if size < _PREFIX_BYTES + _CHECKSUM_BYTES:
            self._reject(path, window)
            return None
        if bytes(window[:4]) != BUNDLE_MAGIC:
            self._reject(path, window)
            return None
        expected = bytes(window[size - _CHECKSUM_BYTES :])
        actual = hashlib.sha256(window[: size - _CHECKSUM_BYTES]).digest()
        if actual != expected:
            self._reject(path, window)
            return None
        header_len = int.from_bytes(window[4:8], "big")
        arena_start = _PREFIX_BYTES + header_len
        arena_end = size - _CHECKSUM_BYTES
        if arena_start > arena_end:
            self._reject(path, window)
            return None
        try:
            header = json.loads(bytes(window[_PREFIX_BYTES:arena_start]))
            prepared = self._rebuild(header, window[arena_start:arena_end])
        except (ValueError, KeyError, TypeError):
            self._reject(path, window)
            return None
        # Anchor the mapping to the cooked document: the served
        # memoryviews stay valid for as long as the entry is cached.
        prepared.cooked._disk_mmap = mapped
        return prepared

    @staticmethod
    def _rebuild(
        header: Dict[str, Any], arena: memoryview
    ) -> PreparedDocument:
        """A PreparedDocument whose frames/envelopes view the mapping.

        Raises ``ValueError`` on any structural inconsistency — the
        caller folds that into the quarantine path.
        """
        m = int(header["m"])
        n = int(header["n"])
        frame_count = int(header["frame_count"])
        if frame_count != n:
            raise ValueError("frame count does not match n")
        if len(arena) != int(header["arena_bytes"]):
            raise ValueError("arena size mismatch")
        envelopes: List[memoryview] = []
        frames: List[memoryview] = []
        cooked_payloads: List[memoryview] = []
        offset = 0
        for _ in range(frame_count):
            if offset + _ENVELOPE_OVERHEAD > len(arena):
                raise ValueError("truncated envelope")
            length = int.from_bytes(arena[offset : offset + 4], "big")
            total = 4 + length
            if arena[offset + 4] != _FRAME_MSG_TYPE or offset + total > len(arena):
                raise ValueError("malformed envelope")
            envelopes.append(arena[offset : offset + total])
            frame = arena[offset + _ENVELOPE_OVERHEAD : offset + total]
            frames.append(frame)
            # frame = seq(2) + payload + crc(2); see repro.coding.packets.
            if len(frame) < 4:
                raise ValueError("frame shorter than its overhead")
            cooked_payloads.append(frame[2 : len(frame) - 2])
            offset += total
        if offset != len(arena):
            raise ValueError("trailing bytes after the last envelope")
        backend = str(header.get("backend") or "") or None
        codec_cls = (
            SystematicRSCodec if header.get("systematic", True) else RabinDispersal
        )
        codec = codec_cls(m, n, backend=backend)
        cooked = CookedDocument(
            original_size=int(header["original_size"]),
            packet_size=int(header["packet_size"]),
            codec=codec,
            cooked=cooked_payloads,
        )
        # Pre-seed both serving caches with the mapped views so a disk
        # hit is exactly as zero-copy as an in-memory one.
        cooked._frames = frames
        cooked._wire_envelopes = envelopes
        return PreparedDocument(
            str(header["document_id"]),
            cooked,
            [float(value) for value in header["content_profile"]],
            measure=str(header.get("measure", "")),
        )

    def _reject(self, path: Path, window: Optional[memoryview] = None) -> None:
        """Quarantine a bundle that failed verification."""
        if window is not None:
            window.release()
        self.stats["misses"] += 1
        self.stats["rejected"] += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "prep.disk.rejected", "bundles that failed verification"
            ).inc()
        quarantine = self._quarantine_dir()
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / f"{path.parent.name}-{path.name}")
            self.stats["quarantined"] += 1
        except OSError:
            # Another process may have quarantined (or replaced) it
            # first; either way the bad bytes are out of the read path.
            pass

    # -- invalidation ------------------------------------------------------

    def drop_digest(self, digest: str) -> int:
        """Remove every bundle derived from *digest*; returns the count."""
        directory = self.root / str(digest)
        removed = 0
        try:
            entries = list(directory.iterdir())
        except OSError:
            return 0
        for entry in entries:
            try:
                entry.unlink()
            except OSError:
                continue
            if entry.suffix == ".bundle":
                removed += 1
        try:
            directory.rmdir()
        except OSError:
            pass
        return removed

    def clear(self) -> int:
        """Drop every bundle in the store; returns the count removed."""
        removed = 0
        for path in self.root.glob("*/*.bundle"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    # -- budget ------------------------------------------------------------

    def _prune(self, keep: Optional[Path] = None) -> None:
        """Reclaim space oldest-access-first once over ``max_bytes``."""
        bundles: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self.root.glob("*/*.bundle"):
            try:
                stat = path.stat()
            except OSError:
                continue
            bundles.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        if self.max_bytes is None or total <= self.max_bytes:
            return
        bundles.sort()
        for _mtime, size, path in bundles:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            self.stats["pruned"] += 1

    # -- housekeeping ------------------------------------------------------

    def sweep_tmp(self) -> int:
        """Remove leftover ``*.tmp.*`` files from killed writers."""
        removed = 0
        for path in self.root.glob("*/*.tmp.*"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def info(self) -> Dict[str, Any]:
        """Snapshot: bundle count, byte total, budget, counters."""
        count = 0
        total = 0
        for path in self.root.glob("*/*.bundle"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return {
            "root": str(self.root),
            "bundles": count,
            "bytes": total,
            "max_bytes": self.max_bytes,
            "stats": dict(self.stats),
        }
