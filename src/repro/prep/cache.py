"""Thread-safe byte-budget LRU cache for the preparation tiers.

Both tiers of the :class:`~repro.prep.service.PreparationService` —
pipeline output keyed by content digest, cooked documents keyed by the
full request tuple — need the same discipline: bounded memory measured
in **bytes** (entries vary over orders of magnitude, so an entry count
is the wrong budget), least-recently-used eviction, and explicit
invalidation by predicate (drop everything derived from one document
digest).  :class:`ByteBudgetLRU` provides exactly that behind one lock;
single-flight deduplication lives in the service, not here.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

#: Distinguishes "absent" from a cached ``None`` (never stored, but the
#: sentinel keeps ``get`` unambiguous).
MISS: Any = type("_Miss", (), {"__repr__": lambda self: "<miss>"})()


class ByteBudgetLRU:
    """An LRU mapping bounded by the total byte size of its values.

    Parameters
    ----------
    budget_bytes:
        Soft ceiling on the sum of entry sizes; ``None`` disables
        eviction.  Inserting over budget evicts from the LRU end —
        including, for an entry larger than the whole budget, the new
        entry itself (it is accepted, counted, and immediately
        evicted, so the budget invariant always holds).
    name:
        Label used by callers for metrics; the cache itself emits none.
    """

    def __init__(self, budget_bytes: Optional[int], name: str = "cache") -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self.name = name
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0

    # -- core mapping ------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The cached value (freshened to MRU), or :data:`MISS`."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS
            self._entries.move_to_end(key)
            return entry[0]

    def peek(self, key: Hashable) -> Any:
        """Like :meth:`get` without touching recency."""
        with self._lock:
            entry = self._entries.get(key)
            return MISS if entry is None else entry[0]

    def put(self, key: Hashable, value: Any, size: int) -> List[Hashable]:
        """Insert (or replace) an entry; returns the evicted keys."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            evicted: List[Hashable] = []
            if self.budget_bytes is not None:
                while self._bytes > self.budget_bytes and self._entries:
                    victim, (_value, victim_size) = self._entries.popitem(
                        last=False
                    )
                    self._bytes -= victim_size
                    evicted.append(victim)
            return evicted

    def discard(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            return True

    def discard_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies *predicate*."""
        with self._lock:
            victims = [key for key in self._entries if predicate(key)]
            for key in victims:
                self._bytes -= self._entries.pop(key)[1]
            return len(victims)

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            return count

    # -- introspection -----------------------------------------------------

    @property
    def bytes(self) -> int:
        with self._lock:
            return self._bytes

    def audit(self) -> Tuple[int, int]:
        """``(tracked_bytes, recomputed_sum)`` under one lock hold.

        The two must always be equal; the concurrency stress suite
        hammers the mutation API from many threads and asserts the
        gauge never drifts from the ground truth.
        """
        with self._lock:
            return self._bytes, sum(
                size for _value, size in self._entries.values()
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> List[Hashable]:
        with self._lock:
            return list(self._entries)

    def info(self) -> Dict[str, Any]:
        """A snapshot for diagnostics: entry count, bytes, budget."""
        with self._lock:
            return {
                "name": self.name,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "budget_bytes": self.budget_bytes,
            }
