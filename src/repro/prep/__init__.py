"""repro.prep — on-demand content preparation behind a two-tier cache.

The package owns everything between "here is a document" and "here are
cooked packets ready for the §4.2 transfer protocol":

* :class:`~repro.prep.request.PrepRequest` /
  :class:`~repro.prep.request.TransferSettings` — the canonical
  request objects replacing per-module keyword sprawl;
* :class:`~repro.prep.prepare.DocumentSender` /
  :class:`~repro.prep.prepare.PreparedDocument` — the schedule →
  packets step (moved from ``repro.transport.sender``);
* :class:`~repro.prep.service.PreparationService` — lazy pipeline +
  annotate + schedule + cook behind SC-tier and cooked-tier byte-budget
  LRU caches with single-flight miss deduplication.

Layering: prep sits above ``core``/``coding``/``obs`` and below
``transport``/``net``/``prototype`` — it never imports a transport.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.prep.cache import MISS, ByteBudgetLRU
from repro.prep.diskstore import DiskCookedStore
from repro.prep.prepare import DocumentSender, PreparedDocument
from repro.prep.request import (
    UNSET,
    DeliveryMode,
    PrepRequest,
    TransferSettings,
    request_from_legacy,
    settings_from_legacy,
)
from repro.prep.service import (
    DEFAULT_COOKED_BUDGET,
    DEFAULT_SC_BUDGET,
    PreparationService,
    UnknownDocumentError,
    content_digest,
)

__all__ = [
    "ByteBudgetLRU",
    "DEFAULT_COOKED_BUDGET",
    "DEFAULT_SC_BUDGET",
    "DeliveryMode",
    "DiskCookedStore",
    "DocumentSender",
    "MISS",
    "PreparationService",
    "PrepRequest",
    "PreparedDocument",
    "TransferSettings",
    "UNSET",
    "UnknownDocumentError",
    "content_digest",
    "default_service",
    "prepare",
    "request_from_legacy",
    "settings_from_legacy",
]

_default_service: Optional[PreparationService] = None


def default_service() -> PreparationService:
    """The process-wide service backing :func:`prepare` (lazy singleton)."""
    global _default_service
    if _default_service is None:
        _default_service = PreparationService()
    return _default_service


def prepare(
    document: Union[str, Path],
    request: Optional[PrepRequest] = None,
    *,
    html: bool = False,
    service: Optional[PreparationService] = None,
    **request_fields,
) -> PreparedDocument:
    """One-shot preparation: document in, cooked packets out.

    *document* may be a :class:`~pathlib.Path` (or a string naming an
    existing file), or raw markup.  Request parameters come either as
    a :class:`PrepRequest` or as its keyword fields (``query=...``,
    ``lod=...``); repeated calls against the default service hit the
    cache.
    """
    if request is not None and request_fields:
        raise TypeError("pass either request= or its keyword fields, not both")
    if request is None:
        request = PrepRequest(**request_fields)
    svc = service if service is not None else default_service()
    if isinstance(document, Path):
        document_id = svc.add_path(document, html=html)
    else:
        text = str(document)
        candidate = Path(text)
        is_markup = text.lstrip().startswith("<")
        if not is_markup and candidate.is_file():
            document_id = svc.add_path(candidate, html=html)
        elif is_markup:
            document_id = f"inline-{content_digest(text, html=html)[:12]}"
            svc.add_document(document_id, text, html=html)
        else:
            raise ValueError(
                f"document must be markup or an existing file, got {text!r}"
            )
    return svc.prepare(document_id, request)
