"""The inverse of cooking: intact frames back into document bytes.

Every receiver — the unicast :class:`~repro.net.client.NetClient`, the
broadcast :class:`~repro.broadcast.receiver.CarouselReceiver` — ends a
transfer the same way: M intact cooked payloads go through the codec
and the join is truncated to the original size.  This module is the
one shared implementation, living in :mod:`repro.prep` because prep
owns the cook and therefore its inverse (and because the layering DAG
lets both ``repro.net`` and ``repro.broadcast`` import prep, while
neither may import the other).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.coding.packets import Frame, decode_frame
from repro.coding.rs import RabinDispersal, SystematicRSCodec

__all__ = ["Frame", "parse_frame", "reconstruct_payload"]


def parse_frame(wire: bytes) -> Frame:
    """CRC-check one raw cooked frame (re-export of ``decode_frame``)."""
    return decode_frame(wire)


def reconstruct_payload(
    m: int,
    n: int,
    original_size: int,
    intact: Dict[int, bytes],
    *,
    systematic: bool = True,
    backend: Optional[object] = None,
) -> bytes:
    """Decode *intact* (sequence → payload) into the original bytes.

    Requires at least M intact payloads; the codec raises otherwise.
    Byte-identical across receivers: the decode is a pure function of
    the geometry and the intact set, so a carousel receiver holding any
    M packets reproduces exactly the unicast result.
    """
    codec_cls = SystematicRSCodec if systematic else RabinDispersal
    codec = codec_cls(m, n, backend=backend)
    raw = codec.decode(intact)
    return b"".join(raw)[:original_size]
