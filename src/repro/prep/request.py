"""Frozen request objects for content preparation and transfer.

Before this module existed the knobs of a fetch — LOD, query,
packet size, redundancy ratio, coding backend, retransmission bounds —
were threaded ad hoc as keyword arguments through ``cli.py``,
``transport/session.py``, ``net/client.py``, and
``prototype/client.py``, each with its own defaults and its own subset.
Two dataclasses consolidate the sprawl:

* :class:`PrepRequest` — everything the **server** needs to cook a
  document: it is hashable, canonicalized, wire-serializable, and its
  :meth:`PrepRequest.cache_key` is the cooked-tier cache key of the
  :class:`~repro.prep.service.PreparationService`;
* :class:`TransferSettings` — everything the **client** needs to run
  the §4.2 protocol: relevance threshold, retransmission bound, round
  timeout, reconnect budget.

Old keyword signatures keep working everywhere through
:func:`settings_from_legacy` / :func:`request_from_legacy`, which merge
explicitly-passed legacy values into the new objects while emitting a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional, Tuple

from repro.core.lod import LOD
from repro.protocol import DEFAULT_MAX_ROUNDS, DEFAULT_ROUND_TIMEOUT
from repro.util.validation import check_positive_int

#: Sentinel distinguishing "not passed" from an explicit ``None`` in
#: the deprecation shims.
UNSET: Any = type("_Unset", (), {"__repr__": lambda self: "<unset>"})()


class DeliveryMode(str, enum.Enum):
    """How cooked packets reach the client.

    ``UNICAST`` is the paper's per-client §4.2 protocol: dedicated
    rounds, explicit retransmission, one stream per reader.
    ``CAROUSEL`` subscribes the client to a shared broadcast carousel
    (:mod:`repro.broadcast`): the server cycles the cooked packets of
    hot documents on one stream and the receiver collects any M intact
    packets across cycles — no retransmission protocol at all.

    The mode is a first-class part of the request contract: carried in
    the ``HELLO`` ``prep`` wire form, folded into the cooked-tier
    cache key, and validated through the same bad-parameter error path
    as every other field.  A ``str`` subclass so wire/JSON encoding and
    cache-key hashing need no special cases.
    """

    UNICAST = "unicast"
    CAROUSEL = "carousel"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


def _coerce_delivery(value: Any) -> DeliveryMode:
    """Parse a delivery mode, raising ``ValueError`` on junk."""
    if isinstance(value, DeliveryMode):
        return value
    if not isinstance(value, str):
        raise ValueError(
            f"delivery must be a string, got {value!r}"
        )
    try:
        return DeliveryMode(value.strip().lower())
    except ValueError:
        raise ValueError(
            f"unknown delivery mode {value!r}; choose from "
            f"{sorted(mode.value for mode in DeliveryMode)}"
        ) from None

_LOD_NAMES = frozenset(lod.name.lower() for lod in LOD)

#: Content-measure keys a request may name ("auto" resolves per query);
#: matches the measures :func:`repro.core.information.annotate_sc` emits.
KNOWN_MEASURES = frozenset(
    {"auto", "ic", "qic", "mqic", "proportional", "tfidf"}
)


def _normalize_query(query: str) -> str:
    """Canonical query key: collapsed whitespace, case-folded."""
    return " ".join(query.split()).lower()


@dataclass(frozen=True)
class PrepRequest:
    """One canonical content-preparation request.

    Parameters
    ----------
    lod:
        Level-of-detail name (``"paragraph"`` … ``"document"``),
        case-insensitive.
    measure:
        Content-measure key ranking the units; ``"auto"`` resolves to
        ``"mqic"`` when a query is present, ``"ic"`` otherwise.
    query:
        Free-text query driving query-based measures.  Part of the
        cache key in normalized form (whitespace-collapsed,
        case-folded).
    packet_size:
        Raw payload bytes per packet (the paper's ``s_p``).
    gamma:
        Redundancy ratio γ = N/M (≥ 1).
    backend:
        GF(2^8) kernel name (``"baseline"``/``"fused"``/``"numpy"``),
        or ``None`` for the environment default.
    systematic:
        True for the paper's clear-text-prefix code.
    delivery:
        :class:`DeliveryMode` selecting unicast rounds or the shared
        broadcast carousel (string values accepted, canonicalized).
    """

    lod: str = "paragraph"
    measure: str = "auto"
    query: str = ""
    packet_size: int = 256
    gamma: float = 1.5
    backend: Optional[str] = None
    systematic: bool = True
    delivery: DeliveryMode = DeliveryMode.UNICAST

    def __post_init__(self) -> None:
        object.__setattr__(self, "delivery", _coerce_delivery(self.delivery))
        object.__setattr__(self, "lod", str(self.lod).strip().lower())
        object.__setattr__(self, "measure", str(self.measure).strip().lower())
        object.__setattr__(self, "query", str(self.query))
        if self.lod not in _LOD_NAMES:
            raise ValueError(
                f"unknown lod {self.lod!r}; choose from {sorted(_LOD_NAMES)}"
            )
        if self.measure not in KNOWN_MEASURES:
            raise ValueError(
                f"unknown measure {self.measure!r}; "
                f"choose from {sorted(KNOWN_MEASURES)}"
            )
        check_positive_int(self.packet_size, "packet_size")
        if self.gamma < 1.0:
            raise ValueError(f"gamma must be >= 1, got {self.gamma}")
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(
                f"backend must be a kernel name or None, got {self.backend!r}"
            )

    # -- canonical views ---------------------------------------------------

    @property
    def query_key(self) -> str:
        """The normalized query used for cache keying."""
        return _normalize_query(self.query)

    @property
    def resolved_measure(self) -> str:
        """``measure`` with ``"auto"`` resolved against the query."""
        if self.measure != "auto":
            return self.measure
        return "mqic" if self.query_key else "ic"

    @property
    def lod_level(self) -> LOD:
        return LOD[self.lod.upper()]

    def cache_key(self, digest: str) -> Tuple:
        """The full canonical cooked-tier key for a document *digest*."""
        return (
            digest,
            self.lod,
            self.resolved_measure,
            self.query_key,
            self.packet_size,
            self.gamma,
            self.backend or "",
            self.systematic,
            self.delivery.value,
        )

    def replace(self, **changes: Any) -> "PrepRequest":
        """A copy with *changes* applied (re-validated)."""
        return replace(self, **changes)

    # -- wire form ---------------------------------------------------------

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe dict carried in the ``HELLO`` ``prep`` field."""
        wire: Dict[str, Any] = {
            "lod": self.lod,
            "measure": self.measure,
            "query": self.query,
            "packet_size": self.packet_size,
            "gamma": self.gamma,
            "systematic": self.systematic,
        }
        if self.backend:
            wire["backend"] = self.backend
        if self.delivery is not DeliveryMode.UNICAST:
            # Omitted when unicast so pre-DeliveryMode peers keep
            # parsing HELLO{prep} unchanged.
            wire["delivery"] = self.delivery.value
        return wire

    @classmethod
    def from_wire(cls, fields_in: Dict[str, Any]) -> "PrepRequest":
        """Parse and validate a wire dict; raises ``ValueError`` on junk."""
        if not isinstance(fields_in, dict):
            raise ValueError("prep parameters must be an object")
        known = {f.name for f in fields(cls)}
        unknown = set(fields_in) - known
        if unknown:
            raise ValueError(f"unknown prep parameter(s) {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for name in ("lod", "measure", "query"):
            if name in fields_in:
                value = fields_in[name]
                if not isinstance(value, str):
                    raise ValueError(f"{name} must be a string, got {value!r}")
                kwargs[name] = value
        if "packet_size" in fields_in:
            value = fields_in["packet_size"]
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(f"packet_size must be an int, got {value!r}")
            kwargs["packet_size"] = value
        if "gamma" in fields_in:
            value = fields_in["gamma"]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"gamma must be a number, got {value!r}")
            kwargs["gamma"] = float(value)
        if "backend" in fields_in:
            value = fields_in["backend"]
            if value is not None and not isinstance(value, str):
                raise ValueError(f"backend must be a string, got {value!r}")
            kwargs["backend"] = value or None
        if "systematic" in fields_in:
            value = fields_in["systematic"]
            if not isinstance(value, bool):
                raise ValueError(f"systematic must be a bool, got {value!r}")
            kwargs["systematic"] = value
        if "delivery" in fields_in:
            kwargs["delivery"] = _coerce_delivery(fields_in["delivery"])
        return cls(**kwargs)


@dataclass(frozen=True)
class TransferSettings:
    """Client-side knobs for one §4.2 transfer.

    Parameters
    ----------
    relevance_threshold:
        The paper's F — early-stop once received content reaches it;
        ``None`` downloads to completion.
    max_rounds:
        Retransmission-round bound before the transfer fails.
    round_timeout:
        Wall-clock (or channel-time) bound on one round, seconds.
    max_reconnects:
        Redials allowed per networked fetch.
    use_cache:
        Selects the paper's Caching policy (packets survive stalls and
        disconnections) where the caller doesn't pass a cache object.
    delivery:
        :class:`DeliveryMode` the client drives: ``UNICAST`` runs the
        round/NEXT_ROUND loop, ``CAROUSEL`` subscribes to the shared
        broadcast stream and collects packets passively.
    """

    relevance_threshold: Optional[float] = None
    max_rounds: int = DEFAULT_MAX_ROUNDS
    round_timeout: float = DEFAULT_ROUND_TIMEOUT
    max_reconnects: int = 4
    use_cache: bool = False
    delivery: DeliveryMode = DeliveryMode.UNICAST

    def __post_init__(self) -> None:
        object.__setattr__(self, "delivery", _coerce_delivery(self.delivery))
        check_positive_int(self.max_rounds, "max_rounds")
        if self.round_timeout <= 0:
            raise ValueError(
                f"round_timeout must be positive, got {self.round_timeout}"
            )
        if self.max_reconnects < 0:
            raise ValueError(
                f"max_reconnects must be >= 0, got {self.max_reconnects}"
            )

    def replace(self, **changes: Any) -> "TransferSettings":
        return replace(self, **changes)


def _merge_legacy(
    target,
    caller: str,
    kind: str,
    legacy: Dict[str, Any],
):
    supplied = {
        name: value for name, value in legacy.items() if value is not UNSET
    }
    if not supplied:
        return target
    warnings.warn(
        f"{caller}: keyword argument(s) {sorted(supplied)} are deprecated; "
        f"pass {kind} instead",
        DeprecationWarning,
        stacklevel=4,
    )
    return replace(target, **supplied)


def legacy_value(value: Any, default: Any) -> Any:
    """Map a legacy keyword back to :data:`UNSET` when left at default.

    Shimmed signatures keep their original defaults (introspection and
    help text stay truthful), so "was it passed?" is approximated by
    "does it differ from the default?" — callers explicitly passing
    the default value lose nothing, since the settings object defaults
    to the same value.
    """
    return UNSET if value is default or value == default else value


def settings_from_legacy(
    settings: Optional[TransferSettings],
    caller: str,
    **legacy: Any,
) -> TransferSettings:
    """Fold explicitly-passed legacy keywords into a settings object.

    Values equal to :data:`UNSET` were not passed; anything else
    triggers one :class:`DeprecationWarning` naming *caller* and is
    merged over *settings* (or the defaults).
    """
    return _merge_legacy(
        settings if settings is not None else TransferSettings(),
        caller,
        "settings=TransferSettings(...)",
        legacy,
    )


def request_from_legacy(
    request: Optional[PrepRequest],
    caller: str,
    **legacy: Any,
) -> PrepRequest:
    """:func:`settings_from_legacy`, but for :class:`PrepRequest`."""
    return _merge_legacy(
        request if request is not None else PrepRequest(),
        caller,
        "request=PrepRequest(...)",
        legacy,
    )
