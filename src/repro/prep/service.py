"""The on-demand preparation service: lazy, shared, metered cooking.

:class:`PreparationService` is the single place content preparation
happens anywhere in the codebase.  Given a
:class:`~repro.prep.request.PrepRequest` it lazily runs the paper's
full server-side chain — parse → five-module SC pipeline (§3.3) →
measure annotation → :class:`~repro.core.multires.TransmissionSchedule`
→ :meth:`~repro.prep.prepare.DocumentSender.prepare` — behind two
cache tiers:

* the **SC tier**, keyed by document content digest (plus the pipeline
  configuration token): pipeline output is query-independent, so one
  SC serves every request against the same bytes;
* the **cooked tier**, keyed by the full canonical request tuple
  ``(digest, lod, measure, query_key, packet_size, gamma, backend,
  systematic)``: byte-identical requests share one encode.

Both tiers use byte-budget LRU eviction
(:class:`~repro.prep.cache.ByteBudgetLRU`).  Concurrent misses for the
same key are **single-flighted**: exactly one caller runs the pipeline
and encode, everyone else blocks on the flight and shares the result.
The mechanism is a plain ``threading.Event``, which is correct both
for plain threads (transport/prototype callers) and for asyncio
callers that off-load via :meth:`PreparationService.prepare_async` /
``run_in_executor`` (the :class:`~repro.net.server.NetServer` does).

Telemetry (``prep.hits`` / ``prep.misses`` / ``prep.evictions``
labeled by tier, the ``prep.inflight`` gauge, ``prep.*.seconds``
stage timers) flows through :mod:`repro.obs` when enabled; the plain
:attr:`PreparationService.stats` counters are always on.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.coding.packets import Packetizer
from repro.core.information import annotate_sc
from repro.core.multires import TransmissionSchedule
from repro.core.pipeline import SCPipeline
from repro.core.query import Query
from repro.core.structure import StructuralCharacteristic
from repro.obs.runtime import OBS
from repro.obs.timing import timed
from repro.prep.cache import MISS, ByteBudgetLRU
from repro.prep.diskstore import DiskCookedStore
from repro.prep.prepare import DocumentSender, PreparedDocument
from repro.prep.request import PrepRequest
from repro.text.keywords import KeywordExtractor
from repro.xmlkit.parser import parse_xml

#: Default byte budgets: generous for a document corpus, small enough
#: that a long-lived server cannot grow without bound.
DEFAULT_SC_BUDGET = 64 * 1024 * 1024
DEFAULT_COOKED_BUDGET = 256 * 1024 * 1024


class UnknownDocumentError(KeyError):
    """The requested document_id is not registered with the service."""


class _SourceRecord:
    """One registered document: source text, origin, content digest."""

    __slots__ = ("document_id", "source", "html", "digest", "path")

    def __init__(
        self,
        document_id: str,
        source: str,
        html: bool,
        path: Optional[Path],
    ) -> None:
        self.document_id = document_id
        self.source = source
        self.html = html
        self.path = path
        self.digest = content_digest(source, html=html)


class _ScEntry:
    """Cached pipeline output plus the lock serializing annotation.

    ``annotate_sc`` mutates the SC in place (it attaches per-query
    measure values to every unit), so every build that reuses this SC
    must hold :attr:`lock` from annotation through packetization.
    """

    __slots__ = ("sc", "lock")

    def __init__(self, sc: StructuralCharacteristic) -> None:
        self.sc = sc
        self.lock = threading.Lock()


class _Flight:
    """One in-progress computation shared by concurrent requesters."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


def content_digest(source: str, *, html: bool = False) -> str:
    """The cache digest of a document source (parse-mode aware)."""
    hasher = hashlib.sha256(b"html\x00" if html else b"xml\x00")
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


def _sc_size(sc: StructuralCharacteristic) -> int:
    """Byte-budget weight of a cached SC (payload + per-unit overhead)."""
    units = list(sc.root.walk())
    return sum(unit.size_bytes() for unit in units) + 64 * len(units)


def _cooked_size(prepared: PreparedDocument) -> int:
    """Byte-budget weight of a cached cooked document.

    Counts the precomputed wire-envelope arena alongside the cooked
    payloads (envelopes live next to the packets for the document's
    whole cache lifetime) plus the content-profile floats.
    """
    return (
        prepared.cooked_bytes
        + prepared.wire_bytes
        + 8 * len(prepared.content_profile)
    )


class PreparationService:
    """Lazy document preparation behind a shared two-tier cache.

    Satisfies the net-server store contract twice over: ``get`` cooks
    with the service's default request, ``prepare`` with any request —
    so per-request FETCH parameters and plain stores interoperate.

    Parameters
    ----------
    pipeline:
        The shared :class:`SCPipeline`; one instance serves every
        document (its configuration is part of the SC-tier key).
    default_request:
        Used by :meth:`get`, :meth:`warmup`, and whenever ``prepare``
        receives ``request=None``.
    sc_budget_bytes / cooked_budget_bytes:
        LRU byte budgets per tier; ``None`` disables eviction.
    disk_store / disk_path:
        Optional third tier below the cooked LRU: a
        :class:`~repro.prep.diskstore.DiskCookedStore` (or a path to
        create one at).  A disk hit counts as a **cooked-tier hit** —
        the pipeline and encode never ran, the contract a warm restart
        is measured by — and cooked misses persist their bundle so
        sibling workers and future processes share the cook.
    disk_budget_bytes:
        Soft byte budget for a store created from ``disk_path``.
    """

    def __init__(
        self,
        *,
        pipeline: Optional[SCPipeline] = None,
        default_request: Optional[PrepRequest] = None,
        sc_budget_bytes: Optional[int] = DEFAULT_SC_BUDGET,
        cooked_budget_bytes: Optional[int] = DEFAULT_COOKED_BUDGET,
        disk_store: Optional[DiskCookedStore] = None,
        disk_path=None,
        disk_budget_bytes: Optional[int] = None,
    ) -> None:
        self._pipeline = pipeline if pipeline is not None else SCPipeline()
        self.default_request = (
            default_request if default_request is not None else PrepRequest()
        )
        self._sc_tier = ByteBudgetLRU(sc_budget_bytes, name="sc")
        self._cooked_tier = ByteBudgetLRU(cooked_budget_bytes, name="cooked")
        if disk_store is None and disk_path is not None:
            disk_store = DiskCookedStore(disk_path, max_bytes=disk_budget_bytes)
        self._disk = disk_store
        self._records: Dict[str, _SourceRecord] = {}
        self._flights: Dict[Tuple, _Flight] = {}
        self._lock = threading.Lock()
        #: Always-on counters (the OBS ``prep.*`` family mirrors them
        #: when telemetry is enabled).
        self.stats: Dict[str, int] = {
            "sc_hits": 0,
            "sc_misses": 0,
            "cooked_hits": 0,
            "cooked_misses": 0,
            "disk_hits": 0,
            "disk_misses": 0,
            "disk_writes": 0,
            "disk_errors": 0,
            "inflight_waits": 0,
            "evictions": 0,
            "invalidations": 0,
        }
        #: Per-document demand counters (every ``prepare`` call, hit or
        #: miss) — the hotness signal the broadcast carousel ranks by.
        self.document_hits: Dict[str, int] = {}

    @property
    def disk_store(self) -> Optional[DiskCookedStore]:
        """The persistent cooked tier, when configured."""
        return self._disk

    # -- document registry -------------------------------------------------

    def add_document(
        self, document_id: str, source: str, *, html: bool = False
    ) -> str:
        """Register (or refresh) a document source; returns its digest.

        Re-adding unchanged content is a cheap no-op; changed content
        replaces the record and drops every cache entry derived from
        the superseded digest (unless another document still shares
        it).
        """
        record = _SourceRecord(document_id, source, html, path=None)
        return self._install(record)

    def add_path(
        self,
        path,
        *,
        document_id: Optional[str] = None,
        html: bool = False,
    ) -> str:
        """Register a document file; returns the document_id (its stem).

        The path is remembered so :meth:`invalidate` can re-read it.
        """
        path = Path(path)
        if document_id is None:
            document_id = path.stem
        record = _SourceRecord(
            document_id, path.read_text(encoding="utf-8"), html, path=path
        )
        self._install(record)
        return document_id

    def _install(self, record: _SourceRecord) -> str:
        with self._lock:
            previous = self._records.get(record.document_id)
            self._records[record.document_id] = record
        if previous is not None and previous.digest != record.digest:
            self._drop_digest(previous.digest)
        return record.digest

    def remove(self, document_id: str) -> None:
        """Unregister a document and drop its (unshared) cache entries."""
        with self._lock:
            record = self._records.pop(document_id, None)
        if record is None:
            raise UnknownDocumentError(document_id)
        self._drop_digest(record.digest)

    def invalidate(self, document_id: str) -> int:
        """Force re-preparation of *document_id*; returns entries dropped.

        Path-backed documents are re-read from disk, so an edited file
        gets a new digest and fresh cache entries on the next request;
        in-memory documents simply lose their cached tiers.
        """
        with self._lock:
            record = self._records.get(document_id)
        if record is None:
            raise UnknownDocumentError(document_id)
        self.stats["invalidations"] += 1
        if record.path is not None:
            fresh = _SourceRecord(
                record.document_id,
                record.path.read_text(encoding="utf-8"),
                record.html,
                path=record.path,
            )
            with self._lock:
                self._records[document_id] = fresh
        return self._drop_digest(record.digest)

    def _drop_digest(self, digest: str) -> int:
        """Drop cache entries for *digest* unless another doc shares it."""
        with self._lock:
            shared = any(
                record.digest == digest for record in self._records.values()
            )
        if shared:
            return 0
        dropped = self._sc_tier.discard_where(lambda key: key[0] == digest)
        dropped += self._cooked_tier.discard_where(lambda key: key[0] == digest)
        if self._disk is not None:
            dropped += self._disk.drop_digest(digest)
        self._update_size_gauges()
        return dropped

    def digest(self, document_id: str) -> str:
        """The current content digest of a registered document."""
        with self._lock:
            record = self._records.get(document_id)
        if record is None:
            raise UnknownDocumentError(document_id)
        return record.digest

    def document_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._records)

    def __contains__(self, document_id: str) -> bool:
        with self._lock:
            return document_id in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- preparation -------------------------------------------------------

    def prepare(
        self, document_id: str, request: Optional[PrepRequest] = None
    ) -> PreparedDocument:
        """The prepared document for ``(document_id, request)``.

        Cache hit, single-flight wait, or full build — always the same
        bytes for the same canonical request.  Raises
        :class:`UnknownDocumentError` for an unregistered id.
        """
        if request is None:
            request = self.default_request
        with self._lock:
            record = self._records.get(document_id)
        if record is None:
            raise UnknownDocumentError(document_id)
        with self._lock:
            self.document_hits[document_id] = (
                self.document_hits.get(document_id, 0) + 1
            )
        key = request.cache_key(record.digest)
        prepared = self._fetch(
            self._cooked_tier,
            key,
            "cooked",
            lambda: self._build_cooked(record, request),
            _cooked_size,
            # The disk key additionally carries the pipeline token:
            # bundle files outlive this process, so they must not be
            # shared across differently-configured pipelines the way
            # the per-instance memory tier safely can.
            disk_key=key + self._pipeline_token() if self._disk else None,
        )
        return self._with_id(prepared, document_id)

    async def prepare_async(
        self, document_id: str, request: Optional[PrepRequest] = None
    ) -> PreparedDocument:
        """:meth:`prepare` off the event loop (default executor).

        Concurrent coroutines requesting the same key dedupe through
        the same single-flight as plain threads.
        """
        import asyncio
        from functools import partial

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, partial(self.prepare, document_id, request)
        )

    def get(self, document_id: str) -> Optional[PreparedDocument]:
        """Net-store contract: default-request preparation, None if unknown."""
        try:
            return self.prepare(document_id, None)
        except UnknownDocumentError:
            return None

    def sc_for(self, document_id: str) -> StructuralCharacteristic:
        """The (cached) pipeline output for a registered document."""
        with self._lock:
            record = self._records.get(document_id)
        if record is None:
            raise UnknownDocumentError(document_id)
        return self._sc_entry(record).sc

    def seed_sc(self, document_id: str, sc: StructuralCharacteristic) -> bool:
        """Adopt an externally-built SC for a registered document.

        Lets callers that already ran the pipeline (the prototype's
        eager gateway) donate the result instead of paying a second
        run; a no-op (returns False) when the tier already holds one.
        The donated object is shared, so subsequent annotation runs
        under the service's per-entry lock like any cached SC.
        """
        with self._lock:
            record = self._records.get(document_id)
        if record is None:
            raise UnknownDocumentError(document_id)
        key = (record.digest, self._pipeline_token())
        if self._sc_tier.peek(key) is not MISS:
            return False
        entry = _ScEntry(sc)
        evicted = self._sc_tier.put(key, entry, _sc_size(sc))
        if evicted:
            self.stats["evictions"] += len(evicted)
        self._update_size_gauges()
        return True

    def warmup(
        self,
        document_ids: Optional[Iterable[str]] = None,
        requests: Optional[Iterable[PrepRequest]] = None,
    ) -> int:
        """Prefetch documents × requests into the cache; returns count.

        With no arguments, cooks every registered document with the
        default request — the old eager-at-startup behaviour, now an
        explicit recipe.
        """
        ids = list(document_ids) if document_ids is not None else self.document_ids()
        reqs = list(requests) if requests is not None else [self.default_request]
        count = 0
        for document_id in ids:
            for request in reqs:
                self.prepare(document_id, request)
                count += 1
        return count

    # -- cache internals ---------------------------------------------------

    def _fetch(
        self,
        tier: ByteBudgetLRU,
        key: Tuple,
        tier_name: str,
        factory: Callable[[], Any],
        size_of: Callable[[Any], int],
        disk_key: Optional[Tuple] = None,
    ) -> Any:
        """Tier lookup with single-flight miss deduplication.

        With *disk_key* set, the in-process flight leader additionally
        holds the store's cross-process bundle lock while it probes
        disk and (on a cluster-wide miss) cooks and persists — so N
        workers missing the same key still run the pipeline exactly
        once between them, and the others load the winner's bundle.
        """
        value = tier.get(key)
        if value is not MISS:
            self._count_hit(tier_name)
            return value
        flight_key = (tier.name, key)
        while True:
            with self._lock:
                value = tier.get(key)
                if value is not MISS:
                    leader = None
                    flight = None
                else:
                    flight = self._flights.get(flight_key)
                    if flight is None:
                        flight = _Flight()
                        self._flights[flight_key] = flight
                        leader = True
                    else:
                        leader = False
            if flight is None:
                self._count_hit(tier_name)
                return value
            if not leader:
                # Share the in-progress computation: block until the
                # leader resolves the flight, then use its outcome.
                flight.event.wait()
                if flight.error is not None:
                    raise flight.error
                self.stats["inflight_waits"] += 1
                self._count_hit(tier_name)
                return flight.value
            break
        # Leader: probe the disk tier, run the build if it too misses,
        # publish the result, settle followers.
        try:
            if disk_key is not None and self._disk is not None:
                value = self._fetch_via_disk(disk_key, tier_name, factory)
            else:
                self._count_miss(tier_name)
                value = self._build_metered(tier_name, factory)
            evicted = tier.put(key, value, size_of(value))
            if evicted:
                self.stats["evictions"] += len(evicted)
                if OBS.enabled:
                    OBS.metrics.counter(
                        "prep.evictions", "cache entries evicted by the byte budget"
                    ).labels(tier=tier_name).inc(len(evicted))
            self._update_size_gauges()
            flight.value = value
            return value
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._lock:
                self._flights.pop(flight_key, None)
            flight.event.set()

    def _fetch_via_disk(
        self, disk_key: Tuple, tier_name: str, factory: Callable[[], Any]
    ) -> Any:
        """Leader path through the persistent tier.

        Holds the store's cross-process bundle lock over probe → cook
        → persist, so concurrent workers cook each bundle exactly once
        cluster-wide.  A verified bundle on disk is a *hit* for the
        in-memory tier's contract: no pipeline ran, no miss counted.
        """
        assert self._disk is not None
        with self._disk.lock(disk_key):
            with timed("prep.disk_probe"):
                value = self._disk.get(disk_key)
            if value is not None:
                self.stats["disk_hits"] += 1
                self._count_hit(tier_name)
                if OBS.enabled:
                    OBS.metrics.counter(
                        "prep.hits", "preparation cache hits"
                    ).labels(tier="disk").inc()
                return value
            self.stats["disk_misses"] += 1
            self._count_miss(tier_name)
            if OBS.enabled:
                OBS.metrics.counter(
                    "prep.misses", "preparation cache misses"
                ).labels(tier="disk").inc()
            value = self._build_metered(tier_name, factory)
            try:
                with timed("prep.disk_persist"):
                    self._disk.put(disk_key, value)
                self.stats["disk_writes"] += 1
            except OSError:
                # A full or read-only disk degrades the tier, never
                # the request: the cooked result is still served.
                self.stats["disk_errors"] += 1
            return value

    def _count_miss(self, tier_name: str) -> None:
        self.stats[f"{tier_name}_misses"] += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "prep.misses", "preparation cache misses"
            ).labels(tier=tier_name).inc()

    def _build_metered(self, tier_name: str, factory: Callable[[], Any]) -> Any:
        if OBS.enabled:
            OBS.metrics.gauge(
                "prep.inflight", "preparation builds in flight"
            ).inc()
        try:
            with timed(f"prep.{tier_name}_build"):
                return factory()
        finally:
            if OBS.enabled:
                OBS.metrics.gauge("prep.inflight").dec()

    def _count_hit(self, tier_name: str) -> None:
        self.stats[f"{tier_name}_hits"] += 1
        if OBS.enabled:
            OBS.metrics.counter(
                "prep.hits", "preparation cache hits"
            ).labels(tier=tier_name).inc()

    def _update_size_gauges(self) -> None:
        if OBS.enabled:
            OBS.metrics.gauge(
                "prep.sc_bytes", "bytes held by the SC cache tier"
            ).set(self._sc_tier.bytes)
            OBS.metrics.gauge(
                "prep.cooked_bytes", "bytes held by the cooked cache tier"
            ).set(self._cooked_tier.bytes)

    def _sc_entry(self, record: _SourceRecord) -> _ScEntry:
        key = (record.digest, self._pipeline_token())
        return self._fetch(
            self._sc_tier,
            key,
            "sc",
            lambda: self._build_sc(record),
            lambda entry: _sc_size(entry.sc),
        )

    def _pipeline_token(self) -> Tuple:
        token = getattr(self._pipeline, "cache_token", None)
        if callable(token):
            return token()
        return (type(self._pipeline).__qualname__,)

    def _build_sc(self, record: _SourceRecord) -> _ScEntry:
        with timed("prep.parse"):
            if record.html:
                from repro.htmlkit.extract import html_to_research_paper

                document = html_to_research_paper(record.source)
            else:
                document = parse_xml(record.source)
        sc = self._pipeline.run(document)
        return _ScEntry(sc)

    def _build_cooked(
        self, record: _SourceRecord, request: PrepRequest
    ) -> PreparedDocument:
        entry = self._sc_entry(record)
        # Annotation mutates the shared SC; the entry lock serializes
        # every build over the same pipeline output.
        with entry.lock:
            with timed("prep.annotate"):
                query: Optional[Query] = None
                if request.query.strip():
                    extractor = KeywordExtractor(
                        lemmatizer=self._pipeline.shared_lemmatizer
                    )
                    query = Query(request.query, extractor=extractor)
                annotate_sc(entry.sc, query=query)
                measure = request.resolved_measure
                if request.measure == "auto" and (
                    query is None or query.is_empty
                ):
                    # A query of pure stop words carries no keywords;
                    # "auto" degrades to the static measure (matching
                    # the pre-service CLI behaviour).
                    measure = "ic"
                schedule = TransmissionSchedule(
                    entry.sc, lod=request.lod_level, measure=measure
                )
            sender = DocumentSender(
                Packetizer(
                    packet_size=request.packet_size,
                    redundancy_ratio=request.gamma,
                    systematic=request.systematic,
                    backend=request.backend,
                )
            )
            return sender.prepare(record.document_id, schedule)

    @staticmethod
    def _with_id(
        prepared: PreparedDocument, document_id: str
    ) -> PreparedDocument:
        """Re-label a digest-shared entry for an aliased document id."""
        if prepared.document_id == document_id:
            return prepared
        alias = PreparedDocument(
            document_id,
            prepared.cooked,
            prepared.content_profile,
            measure=prepared.measure,
            segments=prepared.segments,
        )
        return alias

    # -- introspection -----------------------------------------------------

    def hot_documents(self, limit: Optional[int] = None) -> List[Tuple[str, int]]:
        """Registered documents by demand, hottest first.

        Demand is the per-document ``prepare`` count (cache hits and
        misses alike — what matters is how often readers ask).  Ties
        break by document id for determinism.  Documents never prepared
        rank last with zero demand.
        """
        with self._lock:
            hits = dict(self.document_hits)
            ids = sorted(self._records)
        ranked = sorted(ids, key=lambda doc: (-hits.get(doc, 0), doc))
        if limit is not None:
            ranked = ranked[:limit]
        return [(doc, hits.get(doc, 0)) for doc in ranked]

    def cache_info(self) -> Dict[str, Any]:
        """Snapshot of both tiers plus the flight and stat counters."""
        with self._lock:
            inflight = len(self._flights)
        info = {
            "sc": self._sc_tier.info(),
            "cooked": self._cooked_tier.info(),
            "inflight": inflight,
            "stats": dict(self.stats),
        }
        if self._disk is not None:
            info["disk"] = self._disk.info()
        return info
