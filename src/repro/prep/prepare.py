"""Document preparation: schedule → cooked packets + content profile.

Home of :class:`PreparedDocument` and :class:`DocumentSender`, moved
here from ``repro.transport.sender`` so that every layer that cooks
content — the simulated byte driver, the socket server, the prototype
broker — depends on :mod:`repro.prep` rather than on the transport
internals (``repro.transport.sender`` re-exports both names for
compatibility).  The :class:`~repro.prep.service.PreparationService`
builds on this module to make preparation lazy, shared, and metered.

The sender combines the multi-resolution schedule (§3/§4.2) with the
packetizer (§4.1): the scheduled byte stream is split into M raw
packets, cooked into N ≥ M packets, and framed for the wire.  It also
derives the *content profile* — how much information content each
clear-text packet carries — which drives the client's early
termination decision.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.coding.packets import CookedDocument, Packetizer
from repro.obs.runtime import OBS
from repro.obs.timing import timed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core → transport → prep)
    from repro.core.multires import ScheduledSegment, TransmissionSchedule

#: Wire-envelope constants for MSG_FRAME messages, duplicated from
#: :mod:`repro.net.wire` because the layering DAG forbids prep → net.
#: tests/test_net_wire.py asserts byte parity between the two, so a
#: drift in either is caught immediately.
_FRAME_MSG_TYPE = 0x03
_ENVELOPE_OVERHEAD = 5  # 4-byte length prefix + 1-byte message type


def _build_envelopes(frames: Sequence[bytes]) -> List[memoryview]:
    """Prebuilt MSG_FRAME wire envelopes, packed into one arena.

    Each frame's complete wire image — length prefix, message type,
    frame bytes — is laid down back-to-back in a single contiguous
    buffer; the returned memoryviews slice it per frame.  A cache hit
    then serves with zero serialization work: the server hands these
    slices straight to the socket (or coalesces several into one
    write) without touching the payload bytes again.
    """
    arena = bytearray(
        sum(len(frame) for frame in frames) + _ENVELOPE_OVERHEAD * len(frames)
    )
    views: List[memoryview] = []
    window = memoryview(arena)
    offset = 0
    for frame in frames:
        total = _ENVELOPE_OVERHEAD + len(frame)
        window[offset : offset + 4] = (len(frame) + 1).to_bytes(4, "big")
        window[offset + 4] = _FRAME_MSG_TYPE
        window[offset + 5 : offset + total] = frame
        views.append(window[offset : offset + total])
        offset += total
    return views


class PreparedDocument:
    """A document ready for fault-tolerant multi-resolution transfer.

    Besides the cooked packets and content profile, a prepared
    document may carry scheduling metadata — the ranking ``measure``
    and the ordered ``segments`` — so manifest builders (the prototype
    transmitter, the net server) need not re-derive the schedule.
    """

    def __init__(
        self,
        document_id: str,
        cooked: CookedDocument,
        content_profile: List[float],
        *,
        measure: str = "",
        segments: Optional[Sequence["ScheduledSegment"]] = None,
    ) -> None:
        self.document_id = document_id
        self.cooked = cooked
        #: content carried by clear-text packet i (length M, sums to
        #: the document's total content, 1.0 for a complete measure).
        self.content_profile = content_profile
        #: content measure that ranked the schedule ("" when unscheduled).
        self.measure = measure
        #: scheduled segments in transmission order (None when cooked
        #: from raw bytes without a schedule).
        self.segments: Optional[List["ScheduledSegment"]] = (
            list(segments) if segments is not None else None
        )

    @property
    def m(self) -> int:
        return self.cooked.m

    @property
    def n(self) -> int:
        return self.cooked.n

    @property
    def cooked_bytes(self) -> int:
        """Total cooked payload bytes (the cache-budget weight)."""
        return sum(len(packet) for packet in self.cooked.cooked)

    @property
    def wire_bytes(self) -> int:
        """Bytes held by the precomputed wire envelopes."""
        return sum(len(view) for view in self.wire_frames())

    def frames(self) -> List[bytes]:
        return self.cooked.frames()

    def wire_frames(self) -> List[memoryview]:
        """Ready-to-send MSG_FRAME envelopes, one per cooked packet.

        Built once per cooked document and cached **on the
        CookedDocument** (not on this wrapper): the preparation
        service aliases one cooked set under many request-scoped
        PreparedDocument identities, and all of them must share the
        same envelope arena.  Callers treat the views as immutable.
        """
        envelopes = getattr(self.cooked, "_wire_envelopes", None)
        if envelopes is None:
            envelopes = _build_envelopes(self.cooked.frames())
            self.cooked._wire_envelopes = envelopes
        return envelopes


class DocumentSender:
    """Prepares documents for transmission over the wireless channel.

    Parameters
    ----------
    packetizer:
        Controls packet size, redundancy ratio γ, and codec choice.
    backend:
        GF(2^8) kernel used for cooking when no *packetizer* is
        supplied (name, instance, or None for the environment
        default; see :mod:`repro.coding.backend`).
    """

    def __init__(
        self,
        packetizer: Optional[Packetizer] = None,
        backend: Optional[object] = None,
    ) -> None:
        if packetizer is None:
            packetizer = Packetizer(backend=backend)
        self.packetizer = packetizer

    def prepare(
        self, document_id: str, schedule: "TransmissionSchedule"
    ) -> PreparedDocument:
        """Cook a scheduled document and compute its content profile."""
        payload = schedule.payload()
        if not payload:
            raise ValueError(f"document {document_id!r} has an empty payload")
        with timed("sender.prepare"):
            cooked = self.packetizer.cook(payload)
            profile = self._content_profile(schedule, cooked.m)
        if OBS.enabled:
            self._record_prepared(cooked)
        return PreparedDocument(
            document_id,
            cooked,
            profile,
            measure=getattr(schedule, "measure", ""),
            segments=schedule.segments(),
        )

    def prepare_raw(self, document_id: str, payload: bytes) -> PreparedDocument:
        """Cook an unscheduled byte blob (conventional transmission).

        The content profile is uniform: every clear packet carries an
        equal share, which is the information-free assumption for a
        document without an SC.
        """
        if not payload:
            raise ValueError(f"document {document_id!r} has an empty payload")
        with timed("sender.prepare"):
            cooked = self.packetizer.cook(payload)
        profile = [1.0 / cooked.m] * cooked.m
        if OBS.enabled:
            self._record_prepared(cooked)
        return PreparedDocument(document_id, cooked, profile)

    @staticmethod
    def _record_prepared(cooked: CookedDocument) -> None:
        OBS.metrics.counter("sender.documents_prepared").labels(
            backend=cooked.codec.backend.name
        ).inc()
        OBS.metrics.counter("sender.cooked_packets").inc(cooked.n)
        OBS.metrics.counter("sender.raw_packets").inc(cooked.m)

    def _content_profile(
        self, schedule: "TransmissionSchedule", m: int
    ) -> List[float]:
        size = self.packetizer.packet_size
        profile: List[float] = []
        previous = 0.0
        for index in range(m):
            cumulative = schedule.content_prefix((index + 1) * size)
            profile.append(cumulative - previous)
            previous = cumulative
        return profile
