"""Terminal (ASCII) charts for the figure printers.

The reproduction is headless; the closest thing to the paper's plots
the harness can produce is a character-cell chart.  The renderer
supports multiple named series over a shared x-axis, auto-scaled axes
with tick labels, and distinct glyphs per series — enough to *see*
the crossovers and knees the paper's figures show.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.validation import check_positive_int

#: Per-series plot glyphs, assigned in insertion order.
GLYPHS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render named series of (x, y) points as an ASCII chart.

    Points are plotted on a *width*×*height* grid with linear scales;
    colliding points show the glyph of the earlier series.  Returns a
    string ending in a legend line.
    """
    check_positive_int(width, "width")
    check_positive_int(height, "height")
    if not series:
        raise ValueError("at least one series is required")
    named = {name: list(points) for name, points in series.items()}
    all_points = [point for points in named.values() for point in points]
    if not all_points:
        raise ValueError("series contain no points")

    xs = [x for x, _y in all_points]
    ys = [y for _x, y in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low = min(ys) if y_min is None else y_min
    y_high = max(ys) if y_max is None else y_max
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    def column(x: float) -> int:
        return round((x - x_low) / (x_high - x_low) * (width - 1))

    def row(y: float) -> int:
        clamped = min(max(y, y_low), y_high)
        return (height - 1) - round(
            (clamped - y_low) / (y_high - y_low) * (height - 1)
        )

    grid = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for index, (name, points) in enumerate(named.items()):
        glyph = GLYPHS[index % len(GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in points:
            r, c = row(y), column(x)
            if grid[r][c] == " ":
                grid[r][c] = glyph

    lines: List[str] = []
    top_label = f"{y_high:.3g}"
    bottom_label = f"{y_low:.3g}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for r, cells in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(margin - 1) + " "
        elif r == height - 1:
            prefix = bottom_label.rjust(margin - 1) + " "
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(cells))
    lines.append(" " * margin + "+" + "-" * width)
    x_axis = f"{x_low:.3g}".ljust(width // 2) + f"{x_high:.3g}".rjust(width // 2)
    lines.append(" " * (margin + 1) + x_axis)
    lines.append(f"{y_label} vs {x_label}   " + "  ".join(legend))
    return "\n".join(lines)


def chart_series_points(
    curves: Dict, width: int = 64, height: int = 16, x_label: str = "x"
) -> str:
    """Chart a {name: [SeriesPoint, ...]} mapping (experiment output)."""
    series = {
        str(name): [(point.x, point.mean) for point in points]
        for name, points in curves.items()
    }
    return ascii_chart(series, width=width, height=height, x_label=x_label, y_label="mean")
