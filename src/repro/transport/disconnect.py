"""Disconnection windows and resumable transfers.

Weak connectivity has two faces: corruption (handled by the erasure
code) and outright *disconnection* — "occasional disconnection during
transmission of web information is common" (§4).  This module models
scheduled outages and the client policy for surviving them:

* :class:`OutageChannel` wraps any channel with outage intervals
  during which every frame is lost (it still consumes air time — the
  sender does not know the client vanished);
* :func:`resumable_transfer` runs a transfer in *attempts*: when an
  attempt ends without success, the intact packets rest in the shared
  cache and the next attempt — e.g. after the client reconnects —
  resumes from them instead of starting over.  This is the Caching
  idea (§4.2) stretched across connectivity gaps, the behaviour a
  disconnection-tolerant mobile browser actually needs.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.protocol import DEFAULT_MAX_ROUNDS
from repro.transport.cache import PacketCache
from repro.transport.channel import Delivery, WirelessChannel
from repro.transport.sender import PreparedDocument
from repro.prep.request import TransferSettings
from repro.transport.session import TransferResult, transfer_document


class OutageChannel(WirelessChannel):
    """A channel that loses every frame inside outage windows.

    *outages* is a sequence of ``(start, end)`` times in channel-clock
    seconds.  Outside the windows, behaviour (corruption, timing)
    follows the base parameters.
    """

    def __init__(
        self,
        outages: Sequence[Tuple[float, float]],
        bandwidth_kbps: float = 19.2,
        alpha: float = 0.1,
        rng=None,
    ) -> None:
        super().__init__(bandwidth_kbps=bandwidth_kbps, alpha=alpha, rng=rng)
        for start, end in outages:
            if end <= start:
                raise ValueError(f"outage ({start}, {end}) must have end > start")
        self.outages = sorted(outages)

    def in_outage(self, time: Optional[float] = None) -> bool:
        """True when *time* (default: now) falls inside an outage."""
        moment = self.clock if time is None else time
        return any(start <= moment < end for start, end in self.outages)

    def send(self, wire: bytes) -> Delivery:
        self.clock += self.transmission_time(len(wire))
        self.frames_sent += 1
        if self.in_outage():
            self.frames_lost += 1
            return Delivery(time=self.clock, wire=None, corrupted=False, lost=True)
        if self.rng.random() < self.alpha:
            self.frames_corrupted += 1
            return Delivery(
                time=self.clock, wire=self._garble(wire), corrupted=True, lost=False
            )
        return Delivery(time=self.clock, wire=wire, corrupted=False, lost=False)


class ResumableResult(NamedTuple):
    """Outcome of a transfer run as resumable attempts."""

    success: bool
    attempts: int
    total_response_time: float
    total_frames: int
    payload: Optional[bytes]
    attempt_results: List[TransferResult]


def resumable_transfer(
    prepared: PreparedDocument,
    channel: WirelessChannel,
    cache: Optional[PacketCache] = None,
    max_attempts: int = 5,
    rounds_per_attempt: int = 2,
    relevance_threshold: Optional[float] = None,
    max_total_rounds: int = DEFAULT_MAX_ROUNDS,
) -> ResumableResult:
    """Transfer *prepared* across connectivity gaps.

    Each attempt runs the round-based protocol for at most
    *rounds_per_attempt* rounds; on failure (e.g. an outage ate the
    round) the intact packets stay cached and the next attempt resumes
    from them.  With a shared cache the attempts make monotone
    progress; without one this degenerates to plain retries.

    *max_total_rounds* caps the rounds spent across *all* attempts at
    the protocol-wide :data:`repro.protocol.DEFAULT_MAX_ROUNDS`, so a
    resumable transfer can never out-persist a plain one no matter how
    the attempt schedule is configured.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if max_total_rounds < 1:
        raise ValueError("max_total_rounds must be >= 1")
    if cache is None:
        cache = PacketCache()

    attempt_results: List[TransferResult] = []
    total_time = 0.0
    total_frames = 0
    rounds_left = max_total_rounds
    for attempt in range(1, max_attempts + 1):
        if rounds_left <= 0:
            break
        result = transfer_document(
            prepared,
            channel,
            cache=cache,
            settings=TransferSettings(
                relevance_threshold=relevance_threshold,
                max_rounds=min(rounds_per_attempt, rounds_left),
            ),
        )
        rounds_left -= max(result.rounds, 1)
        attempt_results.append(result)
        total_time += result.response_time
        total_frames += result.frames_sent
        if result.success:
            return ResumableResult(
                success=True,
                attempts=attempt,
                total_response_time=total_time,
                total_frames=total_frames,
                payload=result.payload,
                attempt_results=attempt_results,
            )
    return ResumableResult(
        success=False,
        attempts=len(attempt_results),
        total_response_time=total_time,
        total_frames=total_frames,
        payload=None,
        attempt_results=attempt_results,
    )
