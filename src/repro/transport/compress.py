"""Huffman-coding compression interceptor.

Floyd & Housel's eNetwork Web Express (the paper's reference [8])
reduces wireless bandwidth with client/server interceptors performing,
among other mechanisms, compression.  This module implements a
canonical Huffman coder from scratch so the interceptor pair
(:class:`CompressionInterceptor`) can wrap any transfer path without
external dependencies.

Wire format of a compressed blob:

    magic 'HUF1' | original length (4 bytes BE) | 256 code lengths
    (1 byte each) | bit stream (padded to a byte boundary)

A blob whose compressed form would not be smaller is stored verbatim
with magic 'RAW1'.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

_MAGIC_HUFFMAN = b"HUF1"
_MAGIC_RAW = b"RAW1"
_MAX_CODE_LENGTH = 255


class CompressionError(Exception):
    """Raised on malformed compressed input."""


def _code_lengths(data: bytes) -> List[int]:
    """Huffman code length per byte value, via the heap algorithm."""
    frequencies: Dict[int, int] = {}
    for byte in data:
        frequencies[byte] = frequencies.get(byte, 0) + 1
    if len(frequencies) == 1:
        # A single distinct symbol still needs one bit.
        lengths = [0] * 256
        lengths[next(iter(frequencies))] = 1
        return lengths

    heap: List[Tuple[int, int, object]] = []
    counter = 0
    for symbol, frequency in frequencies.items():
        heap.append((frequency, counter, symbol))
        counter += 1
    heapq.heapify(heap)
    while len(heap) > 1:
        f1, _, left = heapq.heappop(heap)
        f2, _, right = heapq.heappop(heap)
        heapq.heappush(heap, (f1 + f2, counter, (left, right)))
        counter += 1

    lengths = [0] * 256
    stack = [(heap[0][2], 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, tuple):
            stack.append((node[0], depth + 1))
            stack.append((node[1], depth + 1))
        else:
            lengths[node] = max(depth, 1)
    return lengths


def _canonical_codes(lengths: List[int]) -> Dict[int, Tuple[int, int]]:
    """symbol → (code, length) canonical assignment from code lengths."""
    ordered = sorted(
        (length, symbol) for symbol, length in enumerate(lengths) if length > 0
    )
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for length, symbol in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


def compress(data: bytes) -> bytes:
    """Compress *data*; falls back to verbatim storage when not smaller."""
    if not data:
        return _MAGIC_RAW + (0).to_bytes(4, "big")
    lengths = _code_lengths(data)
    if max(lengths) > _MAX_CODE_LENGTH:  # pragma: no cover - needs 2^255 input
        return _MAGIC_RAW + len(data).to_bytes(4, "big") + data
    codes = _canonical_codes(lengths)

    bit_buffer = 0
    bit_count = 0
    out = bytearray()
    for byte in data:
        code, length = codes[byte]
        bit_buffer = (bit_buffer << length) | code
        bit_count += length
        while bit_count >= 8:
            bit_count -= 8
            out.append((bit_buffer >> bit_count) & 0xFF)
    if bit_count:
        out.append((bit_buffer << (8 - bit_count)) & 0xFF)

    header = _MAGIC_HUFFMAN + len(data).to_bytes(4, "big") + bytes(lengths)
    compressed = header + bytes(out)
    if len(compressed) >= len(data) + 8:
        return _MAGIC_RAW + len(data).to_bytes(4, "big") + data
    return compressed


def decompress(blob: bytes) -> bytes:
    """Invert :func:`compress`."""
    if len(blob) < 8:
        raise CompressionError("blob too short")
    magic, size = blob[:4], int.from_bytes(blob[4:8], "big")
    if magic == _MAGIC_RAW:
        data = blob[8 : 8 + size]
        if len(data) != size:
            raise CompressionError("truncated raw blob")
        return data
    if magic != _MAGIC_HUFFMAN:
        raise CompressionError(f"bad magic {magic!r}")
    if size == 0:
        return b""
    lengths = list(blob[8 : 8 + 256])
    if len(lengths) != 256:
        raise CompressionError("truncated code-length table")
    codes = _canonical_codes(lengths)
    # Invert to (length, code) -> symbol for decoding.
    decode_table: Dict[Tuple[int, int], int] = {
        (length, code): symbol for symbol, (code, length) in codes.items()
    }

    out = bytearray()
    code = 0
    length = 0
    for byte in blob[8 + 256 :]:
        for bit_index in range(7, -1, -1):
            code = (code << 1) | ((byte >> bit_index) & 1)
            length += 1
            symbol = decode_table.get((length, code))
            if symbol is not None:
                out.append(symbol)
                if len(out) == size:
                    return bytes(out)
                code = 0
                length = 0
    raise CompressionError("bit stream exhausted before reaching original size")


class CompressionInterceptor:
    """Server/client interceptor pair applying Huffman compression.

    ``outbound`` runs on the server before packetization; ``inbound``
    runs on the client after reconstruction.  Tracks the byte savings
    so experiments can report achieved compression ratios.
    """

    def __init__(self) -> None:
        self.bytes_in = 0
        self.bytes_out = 0

    def outbound(self, payload: bytes) -> bytes:
        compressed = compress(payload)
        self.bytes_in += len(payload)
        self.bytes_out += len(compressed)
        return compressed

    def inbound(self, blob: bytes) -> bytes:
        return decompress(blob)

    @property
    def ratio(self) -> float:
        """Compressed size as a fraction of the original (1.0 = no gain)."""
        if self.bytes_in == 0:
            return 1.0
        return self.bytes_out / self.bytes_in
