"""The intact-packet cache (paper §4.2, "Caching" strategy).

On a stalled transmission the client would conventionally reload the
document from scratch.  The paper's alternative "caches" the intact
cooked packets received so far in the client's local storage, so a
retransmission only needs to contribute the *missing* packets toward
the M required for reconstruction.

The cache is keyed by document id and bounded in bytes; eviction is
LRU, reflecting the limited local storage of a mobile client.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.obs.runtime import OBS
from repro.obs.trace import CACHE_HIT
from repro.util.validation import check_positive


class PacketCache:
    """Bounded LRU store of intact cooked packets per document."""

    def __init__(self, capacity_bytes: int = 1 << 20) -> None:
        check_positive(capacity_bytes, "capacity_bytes")
        self.capacity_bytes = int(capacity_bytes)
        self._entries: "OrderedDict[str, Dict[int, bytes]]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._used = 0

    # -- store/load -------------------------------------------------------

    def store(self, document_id: str, sequence: int, payload: bytes) -> None:
        """Remember one intact cooked packet; evicts LRU documents."""
        entry = self._entries.get(document_id)
        if entry is None:
            entry = {}
            self._entries[document_id] = entry
            self._sizes[document_id] = 0
        if sequence in entry:
            return
        entry[sequence] = payload
        self._sizes[document_id] += len(payload)
        self._used += len(payload)
        self._entries.move_to_end(document_id)
        if OBS.enabled:
            OBS.metrics.counter("cache.stores", "intact packets cached").inc()
            OBS.metrics.gauge("cache.used_bytes", "bytes held by the cache").set(
                self._used
            )
        self._evict()

    def load(self, document_id: str) -> Dict[int, bytes]:
        """The cached packets of a document (empty dict when absent)."""
        entry = self._entries.get(document_id)
        if entry is None:
            if OBS.enabled:
                OBS.metrics.counter("cache.loads").labels(result="miss").inc()
            return {}
        self._entries.move_to_end(document_id)
        if OBS.enabled:
            OBS.metrics.counter("cache.loads").labels(result="hit").inc()
            OBS.trace.emit(CACHE_HIT, document=document_id, packets=len(entry))
        return dict(entry)

    def discard(self, document_id: str) -> None:
        """Forget a document (after successful reconstruction)."""
        entry = self._entries.pop(document_id, None)
        if entry is not None:
            self._used -= self._sizes.pop(document_id)

    def _evict(self) -> None:
        while self._used > self.capacity_bytes and len(self._entries) > 1:
            victim, _ = self._entries.popitem(last=False)
            self._used -= self._sizes.pop(victim)
            if OBS.enabled:
                OBS.metrics.counter("cache.evictions", "LRU documents evicted").inc()
                OBS.metrics.gauge("cache.used_bytes").set(self._used)

    # -- introspection ---------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    def packet_count(self, document_id: str) -> int:
        entry = self._entries.get(document_id)
        return len(entry) if entry else 0

    def __contains__(self, document_id: str) -> bool:
        return document_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


class NullCache(PacketCache):
    """The NoCaching strategy: accepts stores but never retains them."""

    def __init__(self) -> None:
        super().__init__(capacity_bytes=1)

    def store(self, document_id: str, sequence: int, payload: bytes) -> None:
        return

    def load(self, document_id: str) -> Dict[int, bytes]:
        return {}
