"""Content-driven prefetching over idle bandwidth (paper §6).

The paper's future work proposes "intelligent prefetching based on
information content and user-profiling, utilizing the unused wireless
bandwidth being left idle".  The prefetcher ranks candidate documents
by an interest score (e.g. QIC of the document against the user's
profile query), then fills an idle-time budget with the cooked packets
of the best candidates, depositing intact packets into the shared
:class:`~repro.transport.cache.PacketCache`.

A later explicit request for a prefetched document starts with those
packets already cached, so it needs fewer — often zero — air packets.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence

from repro.transport.cache import PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import PreparedDocument
from repro.util.validation import check_positive


class PrefetchCandidate(NamedTuple):
    """A document the prefetcher may fetch ahead of demand."""

    prepared: PreparedDocument
    score: float  # interest score; higher fetches earlier


class PrefetchReport(NamedTuple):
    """What one idle window accomplished."""

    fetched: List[str]        # document ids fully cached (reconstructable)
    partial: List[str]        # document ids partially cached
    air_time_used: float      # seconds of idle bandwidth consumed
    frames_sent: int


class Prefetcher:
    """Greedy best-score-first prefetching into a packet cache."""

    def __init__(self, cache: PacketCache) -> None:
        self.cache = cache

    def run_idle_window(
        self,
        candidates: Sequence[PrefetchCandidate],
        channel: WirelessChannel,
        idle_seconds: float,
    ) -> PrefetchReport:
        """Spend up to *idle_seconds* of air time prefetching.

        Documents are fetched in descending score order.  A document
        stops consuming the window as soon as it is reconstructable
        (M intact packets cached); the window closes mid-document if
        the budget runs out, leaving a useful partial cache entry.
        """
        check_positive(idle_seconds, "idle_seconds")
        deadline = channel.clock + idle_seconds
        fetched: List[str] = []
        partial: List[str] = []
        frames_sent = 0
        start_clock = channel.clock

        ordered = sorted(candidates, key=lambda c: -c.score)
        for candidate in ordered:
            prepared = candidate.prepared
            receiver = TransferReceiver(prepared)
            receiver.preload(self.cache.load(prepared.document_id))
            if receiver.can_reconstruct():
                fetched.append(prepared.document_id)
                continue

            exhausted = False
            for wire in prepared.frames():
                if channel.clock + channel.transmission_time(len(wire)) > deadline:
                    exhausted = True
                    break
                delivery = channel.send(wire)
                frames_sent += 1
                receiver.offer(delivery)
                if receiver.can_reconstruct():
                    break

            for sequence, payload in receiver.intact.items():
                self.cache.store(prepared.document_id, sequence, payload)

            if receiver.can_reconstruct():
                fetched.append(prepared.document_id)
            elif receiver.intact:
                partial.append(prepared.document_id)
            if exhausted:
                break

        return PrefetchReport(
            fetched=fetched,
            partial=partial,
            air_time_used=channel.clock - start_clock,
            frames_sent=frames_sent,
        )
