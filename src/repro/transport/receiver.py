"""Client-side receiver state for one document transfer.

Tracks intact cooked packets (CRC-verified), accumulates the received
information content from clear-text packets, detects when
reconstruction becomes possible, and renders the incrementally usable
clear-text prefix — the receiving half of the paper's §4.2 protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.coding.packets import decode_frame
from repro.obs.runtime import OBS
from repro.obs.trace import FRAME_CORRUPT
from repro.transport.channel import Delivery
from repro.transport.sender import PreparedDocument


class TransferReceiver:
    """Receiver for one document's cooked-packet stream.

    The receiver never inspects channel ground truth: corruption is
    detected via the CRC in each frame, and missing packets via gaps
    in the FIFO sequence numbers.
    """

    def __init__(self, prepared: PreparedDocument, incremental: bool = False) -> None:
        self._prepared = prepared
        self.intact: Dict[int, bytes] = {}
        self.corrupted_seen = 0
        self.lost_detected = 0
        self._content = 0.0
        self._highest_sequence = -1
        # Corrupt frames received since the highest intact sequence: on
        # a FIFO channel they occupy positions inside the next gap, so
        # they must not be double-counted as losses.
        self._corrupt_since_highest = 0
        # Optional online Gaussian elimination: spreads the decode cost
        # across arrivals so reconstruction at the M-th packet is a
        # back-substitution instead of a full matrix inversion.  Both
        # this and the batch reassemble() path run on the codec's
        # GF(2^8) kernel backend (repro.coding.backend).
        self._decoder = None
        if incremental:
            from repro.coding.stream import IncrementalDecoder

            self._decoder = IncrementalDecoder(prepared.cooked.codec)

    # -- feeding ----------------------------------------------------------

    def preload(self, packets: Dict[int, bytes]) -> None:
        """Seed the receiver with cached packets from earlier rounds."""
        for sequence, payload in packets.items():
            self._accept(sequence, payload)

    def offer(self, delivery: Delivery) -> Optional[int]:
        """Process one channel delivery.

        Returns the frame's sequence number when it arrived intact
        (even if already held), ``None`` for losses and CRC failures —
        letting a protocol driver translate deliveries into typed
        engine events without re-decoding the wire bytes.
        """
        if delivery.lost or delivery.wire is None:
            return None  # loss is detected later via the sequence gap
        frame = decode_frame(delivery.wire)
        if not frame.intact:
            self.corrupted_seen += 1
            self._corrupt_since_highest += 1
            if OBS.enabled:
                OBS.metrics.counter(
                    "receiver.crc_failures", "frames rejected by CRC"
                ).inc()
                OBS.trace.emit(FRAME_CORRUPT, sequence=frame.sequence)
            return None
        if frame.sequence > self._highest_sequence + 1:
            # FIFO channel: a jump in sequence numbers reveals losses —
            # minus the corrupt frames known to sit inside the gap.
            gap = frame.sequence - self._highest_sequence - 1
            self.lost_detected += max(0, gap - self._corrupt_since_highest)
        if frame.sequence > self._highest_sequence:
            self._highest_sequence = frame.sequence
            self._corrupt_since_highest = 0
        self._accept(frame.sequence, frame.payload)
        return frame.sequence

    def reconcile(self, n_sent: int) -> int:
        """Close the loss ledger at the end of a round of *n_sent* frames.

        Frames lost *after* the highest intact sequence leave no gap
        for :meth:`offer` to observe; once the round is over the
        receiver knows all ``n_sent`` frames were streamed and can
        attribute the trailing silence.  Returns the number of newly
        detected losses and resets the per-round sequence tracking
        (each round restarts numbering at 0).
        """
        trailing = (n_sent - 1) - self._highest_sequence - self._corrupt_since_highest
        newly = max(0, trailing)
        self.lost_detected += newly
        self._highest_sequence = -1
        self._corrupt_since_highest = 0
        return newly

    def _accept(self, sequence: int, payload: bytes) -> None:
        if sequence in self.intact:
            return
        self.intact[sequence] = payload
        if self._decoder is not None:
            self._decoder.add(sequence, payload)
        if sequence < self._prepared.m:
            self._content += self._prepared.content_profile[sequence]

    # -- state ----------------------------------------------------------------

    @property
    def intact_count(self) -> int:
        return len(self.intact)

    @property
    def content_received(self) -> float:
        """Information content usable *now*.

        Clear-text packets contribute their profile share as they
        arrive; once reconstruction is possible the whole document's
        content (the sum of the profile) is available.
        """
        if self.can_reconstruct():
            return sum(self._prepared.content_profile)
        return self._content

    def can_reconstruct(self) -> bool:
        return len(self.intact) >= self._prepared.m

    def missing_clear_packets(self) -> Set[int]:
        """Clear-text sequences not yet held (selective-repeat support)."""
        return {
            sequence
            for sequence in range(self._prepared.m)
            if sequence not in self.intact
        }

    # -- output -----------------------------------------------------------------

    def reconstruct(self) -> bytes:
        """The full document; raises when fewer than M packets are held."""
        if self._decoder is not None and self._decoder.complete:
            return self._decoder.solve_document(self._prepared.cooked.original_size)
        return self._prepared.cooked.reassemble(self.intact)

    def clear_prefix(self) -> bytes:
        """The immediately renderable clear-text prefix (may be empty)."""
        return self._prepared.cooked.clear_prefix(self.intact)
