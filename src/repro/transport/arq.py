"""ARQ baselines: stop-and-wait and selective-repeat retransmission.

The paper's related work ([8], Floyd & Housel) reduces bandwidth with
protocol mechanisms such as ARQ implemented in client/server
interceptors.  These baselines transfer the *raw* packets with
per-packet acknowledgement-driven retransmission instead of erasure
coding, giving the ablation point "reliability via retransmission
alone" against the paper's "reliability via redundancy".

The acknowledgement path is assumed reliable but consumes air time
(``ack_bytes`` per ACK), which is the standard simplification for a
half-duplex wireless link.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.coding.packets import decode_frame, encode_frame
from repro.protocol import DEFAULT_MAX_ROUNDS
from repro.transport.channel import WirelessChannel
from repro.util.bitops import chunk_bytes, pad_to_multiple
from repro.util.validation import check_positive_int


class ArqResult(NamedTuple):
    """Outcome of an ARQ transfer."""

    success: bool
    response_time: float
    frames_sent: int
    acks_sent: int
    payload: Optional[bytes]


def stop_and_wait(
    payload: bytes,
    channel: WirelessChannel,
    packet_size: int = 256,
    ack_bytes: int = 8,
    max_attempts_per_packet: int = DEFAULT_MAX_ROUNDS,
) -> ArqResult:
    """Stop-and-wait ARQ: send, await ACK, retransmit on damage.

    Every data frame is followed by an ACK/NAK frame in the reverse
    direction; a corrupted data frame triggers retransmission of the
    same packet.
    """
    check_positive_int(packet_size, "packet_size")
    check_positive_int(max_attempts_per_packet, "max_attempts_per_packet")
    start = channel.clock
    packets = chunk_bytes(pad_to_multiple(payload, packet_size), packet_size)
    received: List[bytes] = []
    frames_sent = 0
    acks_sent = 0

    for sequence, packet in enumerate(packets):
        wire = encode_frame(sequence % 0x10000, packet)
        for _attempt in range(max_attempts_per_packet):
            delivery = channel.send(wire)
            frames_sent += 1
            # The ACK/NAK consumes reverse-channel air time either way.
            channel.clock += channel.transmission_time(ack_bytes)
            acks_sent += 1
            if delivery.lost or delivery.wire is None:
                continue
            frame = decode_frame(delivery.wire)
            if frame.intact:
                received.append(frame.payload)
                break
        else:
            return ArqResult(
                success=False,
                response_time=channel.clock - start,
                frames_sent=frames_sent,
                acks_sent=acks_sent,
                payload=None,
            )

    document = b"".join(received)[: len(payload)]
    return ArqResult(
        success=True,
        response_time=channel.clock - start,
        frames_sent=frames_sent,
        acks_sent=acks_sent,
        payload=document,
    )


def selective_repeat(
    payload: bytes,
    channel: WirelessChannel,
    packet_size: int = 256,
    ack_bytes: int = 8,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> ArqResult:
    """Selective-repeat ARQ: stream a window, retransmit only the damaged.

    Each round streams every outstanding packet back-to-back, then a
    single cumulative status frame returns; only packets reported
    damaged are retransmitted in the next round.  This is the
    strongest ARQ baseline — per-round feedback with no redundancy
    overhead — and the natural comparison for the Caching strategy.
    """
    check_positive_int(packet_size, "packet_size")
    check_positive_int(max_rounds, "max_rounds")
    start = channel.clock
    packets = chunk_bytes(pad_to_multiple(payload, packet_size), packet_size)
    outstanding = list(range(len(packets)))
    received: dict = {}
    frames_sent = 0
    acks_sent = 0

    for _round in range(max_rounds):
        still_missing: List[int] = []
        for sequence in outstanding:
            wire = encode_frame(sequence % 0x10000, packets[sequence])
            delivery = channel.send(wire)
            frames_sent += 1
            if delivery.lost or delivery.wire is None:
                still_missing.append(sequence)
                continue
            frame = decode_frame(delivery.wire)
            if frame.intact:
                received[sequence] = frame.payload
            else:
                still_missing.append(sequence)
        # One cumulative status frame per round.
        channel.clock += channel.transmission_time(ack_bytes)
        acks_sent += 1
        if not still_missing:
            ordered = b"".join(received[i] for i in range(len(packets)))
            return ArqResult(
                success=True,
                response_time=channel.clock - start,
                frames_sent=frames_sent,
                acks_sent=acks_sent,
                payload=ordered[: len(payload)],
            )
        outstanding = still_missing

    return ArqResult(
        success=False,
        response_time=channel.clock - start,
        frames_sent=frames_sent,
        acks_sent=acks_sent,
        payload=None,
    )
