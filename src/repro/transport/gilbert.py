"""Bursty channel model (Gilbert–Elliott).

The paper's channel corrupts packets i.i.d. with probability α, but
its motivation is broader: "the Internet is quite unstable in terms of
connectivity; occasional disconnection during transmission ... is
common" (§4).  Disconnections produce *bursts* of consecutive losses
that an i.i.d. model cannot express.  The classic two-state
Gilbert–Elliott chain does:

* GOOD state: packets corrupted with probability ``good_alpha``
  (usually small);
* BAD state (fade/disconnection): corrupted with ``bad_alpha``
  (usually ≈ 1);
* after every packet the state flips with probability
  ``good_to_bad`` / ``bad_to_good``.

The stationary corruption rate is

    α* = π_bad·bad_alpha + (1 − π_bad)·good_alpha,
    π_bad = good_to_bad / (good_to_bad + bad_to_good)

so a burst channel can be matched to any i.i.d. α for apples-to-apples
comparison (:func:`matched_to_alpha`), isolating the effect of
*burstiness* on the paper's mechanisms — which the ablation bench
exercises.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.transport.channel import Delivery, WirelessChannel
from repro.util.validation import check_probability


class GilbertElliottChannel(WirelessChannel):
    """Two-state bursty wireless channel.

    Inherits the timing/framing behaviour of
    :class:`~repro.transport.channel.WirelessChannel`; only the
    corruption process differs.  ``alpha`` is reported as the
    stationary corruption rate so existing instrumentation reads
    sensibly.
    """

    def __init__(
        self,
        bandwidth_kbps: float = 19.2,
        good_alpha: float = 0.02,
        bad_alpha: float = 0.95,
        good_to_bad: float = 0.05,
        bad_to_good: float = 0.3,
        rng: Optional[random.Random] = None,
        start_in_bad: bool = False,
    ) -> None:
        check_probability(good_alpha, "good_alpha")
        check_probability(bad_alpha, "bad_alpha")
        check_probability(good_to_bad, "good_to_bad")
        check_probability(bad_to_good, "bad_to_good")
        if good_to_bad + bad_to_good == 0:
            raise ValueError("the chain must be able to change state")
        stationary_bad = good_to_bad / (good_to_bad + bad_to_good)
        stationary_alpha = stationary_bad * bad_alpha + (1 - stationary_bad) * good_alpha
        super().__init__(
            bandwidth_kbps=bandwidth_kbps, alpha=stationary_alpha, rng=rng
        )
        self.good_alpha = good_alpha
        self.bad_alpha = bad_alpha
        self.good_to_bad = good_to_bad
        self.bad_to_good = bad_to_good
        self.in_bad_state = start_in_bad
        #: instrumentation: packets sent while in the BAD state.
        self.bad_state_frames = 0

    @property
    def stationary_bad_probability(self) -> float:
        """Long-run fraction of time spent in the BAD state."""
        return self.good_to_bad / (self.good_to_bad + self.bad_to_good)

    def expected_burst_length(self) -> float:
        """Mean number of consecutive packets spent in one BAD visit."""
        if self.bad_to_good == 0:
            return float("inf")
        return 1.0 / self.bad_to_good

    def send(self, wire: bytes) -> Delivery:
        self.clock += self.transmission_time(len(wire))
        self.frames_sent += 1
        if self.in_bad_state:
            self.bad_state_frames += 1

        corrupt_probability = self.bad_alpha if self.in_bad_state else self.good_alpha
        corrupted = self.rng.random() < corrupt_probability

        # State transition applies after the packet (per-packet steps).
        if self.in_bad_state:
            if self.rng.random() < self.bad_to_good:
                self.in_bad_state = False
        else:
            if self.rng.random() < self.good_to_bad:
                self.in_bad_state = True

        if corrupted:
            self.frames_corrupted += 1
            return Delivery(
                time=self.clock, wire=self._garble(wire), corrupted=True, lost=False
            )
        return Delivery(time=self.clock, wire=wire, corrupted=False, lost=False)


def matched_to_alpha(
    alpha: float,
    burst_length: float = 5.0,
    bad_alpha: float = 0.95,
    good_alpha: float = 0.02,
    bandwidth_kbps: float = 19.2,
    rng: Optional[random.Random] = None,
) -> GilbertElliottChannel:
    """A bursty channel whose stationary corruption rate equals *alpha*.

    Solves for the transition probabilities given the desired mean
    burst length (``1 / bad_to_good``) and the per-state corruption
    rates.  Requires ``good_alpha < alpha < bad_alpha``.
    """
    check_probability(alpha, "alpha")
    if not good_alpha < alpha < bad_alpha:
        raise ValueError(
            f"alpha must lie strictly between good_alpha ({good_alpha}) "
            f"and bad_alpha ({bad_alpha})"
        )
    if burst_length < 1.0:
        raise ValueError("burst_length must be >= 1 packet")
    bad_to_good = 1.0 / burst_length
    # π_bad from the stationary-rate equation.
    pi_bad = (alpha - good_alpha) / (bad_alpha - good_alpha)
    good_to_bad = bad_to_good * pi_bad / (1.0 - pi_bad)
    if good_to_bad > 1.0:
        raise ValueError(
            "burst_length too short for the requested alpha; increase it"
        )
    return GilbertElliottChannel(
        bandwidth_kbps=bandwidth_kbps,
        good_alpha=good_alpha,
        bad_alpha=bad_alpha,
        good_to_bad=good_to_bad,
        bad_to_good=bad_to_good,
        rng=rng,
    )
