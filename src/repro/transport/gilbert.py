"""Bursty channel model (Gilbert–Elliott).

The paper's channel corrupts packets i.i.d. with probability α, but
its motivation is broader: "the Internet is quite unstable in terms of
connectivity; occasional disconnection during transmission ... is
common" (§4).  Disconnections produce *bursts* of consecutive losses
that an i.i.d. model cannot express.  The classic two-state
Gilbert–Elliott chain does:

* GOOD state: packets corrupted with probability ``good_alpha``
  (usually small);
* BAD state (fade/disconnection): corrupted with ``bad_alpha``
  (usually ≈ 1);
* after every packet the state flips with probability
  ``good_to_bad`` / ``bad_to_good``.

The chain itself — per-frame decisions, stationary math, matched-α
solving — lives in :mod:`repro.channel`
(:class:`~repro.channel.GilbertElliottModel`); this module wraps it in
the simulator's timing/framing behaviour.  The stationary corruption
rate is

    α* = π_bad·bad_alpha + (1 − π_bad)·good_alpha,
    π_bad = good_to_bad / (good_to_bad + bad_to_good)

so a burst channel can be matched to any i.i.d. α for apples-to-apples
comparison (:func:`matched_to_alpha`), isolating the effect of
*burstiness* on the paper's mechanisms — which the ablation bench
exercises.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.channel import GilbertElliottModel, matched_transitions
from repro.transport.channel import WirelessChannel


class GilbertElliottChannel(WirelessChannel):
    """Two-state bursty wireless channel.

    Inherits the timing/framing behaviour of
    :class:`~repro.transport.channel.WirelessChannel` and delegates the
    corruption process to a seeded
    :class:`~repro.channel.GilbertElliottModel` sharing the channel
    RNG (preserving the pre-refactor draw order byte-for-byte).
    ``alpha`` is reported as the stationary corruption rate so
    existing instrumentation reads sensibly.
    """

    def __init__(
        self,
        bandwidth_kbps: float = 19.2,
        good_alpha: float = 0.02,
        bad_alpha: float = 0.95,
        good_to_bad: float = 0.05,
        bad_to_good: float = 0.3,
        rng: Optional[random.Random] = None,
        start_in_bad: bool = False,
    ) -> None:
        super().__init__(bandwidth_kbps=bandwidth_kbps, alpha=0.0, rng=rng)
        self.model = GilbertElliottModel(
            rng=self.rng,
            good_alpha=good_alpha,
            bad_alpha=bad_alpha,
            good_to_bad=good_to_bad,
            bad_to_good=bad_to_good,
            start_in_bad=start_in_bad,
        )

    # Chain parameters and state live on the model; these mirrors keep
    # the pre-refactor channel API intact for existing callers.

    @property
    def good_alpha(self) -> float:
        return self.model.good_alpha

    @property
    def bad_alpha(self) -> float:
        return self.model.bad_alpha

    @property
    def good_to_bad(self) -> float:
        return self.model.good_to_bad

    @property
    def bad_to_good(self) -> float:
        return self.model.bad_to_good

    @property
    def in_bad_state(self) -> bool:
        return self.model.in_bad_state

    @in_bad_state.setter
    def in_bad_state(self, value: bool) -> None:
        self.model.in_bad_state = value

    @property
    def bad_state_frames(self) -> int:
        """Packets sent while in the BAD state."""
        return self.model.bad_frames

    @property
    def stationary_bad_probability(self) -> float:
        """Long-run fraction of time spent in the BAD state."""
        return self.model.stationary_bad_probability

    def expected_burst_length(self) -> float:
        """Mean number of consecutive packets spent in one BAD visit."""
        return self.model.expected_burst_length()


def matched_to_alpha(
    alpha: float,
    burst_length: float = 5.0,
    bad_alpha: float = 0.95,
    good_alpha: float = 0.02,
    bandwidth_kbps: float = 19.2,
    rng: Optional[random.Random] = None,
) -> GilbertElliottChannel:
    """A bursty channel whose stationary corruption rate equals *alpha*.

    Solves for the transition probabilities via
    :func:`repro.channel.matched_transitions` — the one matched-α
    implementation, shared with
    :meth:`repro.channel.GilbertElliottModel.matched_to_alpha` —
    given the desired mean burst length (``1 / bad_to_good``) and the
    per-state corruption rates.  Requires
    ``good_alpha < alpha < bad_alpha``.
    """
    good_to_bad, bad_to_good = matched_transitions(
        alpha, burst_length, good_alpha=good_alpha, bad_alpha=bad_alpha
    )
    return GilbertElliottChannel(
        bandwidth_kbps=bandwidth_kbps,
        good_alpha=good_alpha,
        bad_alpha=bad_alpha,
        good_to_bad=good_to_bad,
        bad_to_good=bad_to_good,
        rng=rng,
    )
