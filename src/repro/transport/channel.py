"""The weakly-connected wireless channel model (paper §4–5).

The channel is FIFO but unreliable: every frame takes a deterministic
transmission time of ``bytes·8 / bandwidth`` seconds, and is corrupted
independently with probability α.  Corruption garbles payload bytes —
it never drops the frame silently — so the receiver sees every frame
and relies on the CRC to detect damage, exactly the paper's model of
"received either intact (without error) or corrupted (with detectable
error)".

Frame *loss* (for the ARQ baselines) is modelled separately via
``loss_probability``; a lost frame consumes air time but never
arrives, and the receiver detects the gap through sequence numbers.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, NamedTuple, Optional

from repro.obs.runtime import OBS
from repro.obs.trace import FRAME_SENT
from repro.util.validation import check_positive, check_probability


class Delivery(NamedTuple):
    """One frame delivery: arrival time, wire bytes, and ground truth.

    ``corrupted`` is the channel's ground truth; receivers must not
    read it (they use the CRC) — it exists for instrumentation and
    oracle-mode simulations.  ``wire`` is ``None`` for lost frames.
    """

    time: float
    wire: Optional[bytes]
    corrupted: bool
    lost: bool


class WirelessChannel:
    """A lossy, corrupting, FIFO wireless link.

    Parameters
    ----------
    bandwidth_kbps:
        Link bandwidth in kilobits per second (19.2 in Table 2).
    alpha:
        Per-frame corruption probability.
    loss_probability:
        Per-frame loss probability (0 in the paper's experiments; used
        by the ARQ baselines).
    rng:
        Source of randomness; pass a seeded ``random.Random`` for
        reproducible runs.
    """

    def __init__(
        self,
        bandwidth_kbps: float = 19.2,
        alpha: float = 0.1,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        check_positive(bandwidth_kbps, "bandwidth_kbps")
        self.bandwidth_kbps = bandwidth_kbps
        self.alpha = check_probability(alpha, "alpha")
        self.loss_probability = check_probability(loss_probability, "loss_probability")
        self.rng = rng if rng is not None else random.Random()
        self.clock = 0.0
        #: instrumentation counters
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.frames_lost = 0

    def transmission_time(self, size_bytes: int) -> float:
        """Air time of *size_bytes* at the configured bandwidth."""
        return size_bytes * 8.0 / (self.bandwidth_kbps * 1000.0)

    def send(self, wire: bytes) -> Delivery:
        """Transmit one frame; advances the channel clock."""
        self.clock += self.transmission_time(len(wire))
        self.frames_sent += 1

        if self.loss_probability and self.rng.random() < self.loss_probability:
            self.frames_lost += 1
            delivery = Delivery(time=self.clock, wire=None, corrupted=False, lost=True)
        elif self.rng.random() < self.alpha:
            self.frames_corrupted += 1
            delivery = Delivery(
                time=self.clock,
                wire=self._garble(wire),
                corrupted=True,
                lost=False,
            )
        else:
            delivery = Delivery(time=self.clock, wire=wire, corrupted=False, lost=False)

        if OBS.enabled:
            self._record_delivery(delivery, len(wire))
        return delivery

    @staticmethod
    def _record_delivery(delivery: Delivery, size: int) -> None:
        outcome = "lost" if delivery.lost else ("corrupt" if delivery.corrupted else "ok")
        OBS.metrics.counter(
            "channel.frames_sent", "frames put on the air"
        ).labels(outcome=outcome).inc()
        OBS.metrics.counter("channel.bytes_sent", "wire bytes transmitted").inc(size)
        OBS.trace.emit(FRAME_SENT, size=size, outcome=outcome, channel_time=delivery.time)

    def send_all(self, frames: Iterable[bytes]) -> Iterator[Delivery]:
        """Transmit a frame sequence in FIFO order, yielding deliveries."""
        for wire in frames:
            yield self.send(wire)

    def _garble(self, wire: bytes) -> bytes:
        """Flip 1..4 bytes of the frame, never returning it unchanged."""
        data = bytearray(wire)
        flips = self.rng.randint(1, min(4, len(data)))
        positions = self.rng.sample(range(len(data)), flips)
        for position in positions:
            # XOR with a nonzero mask guarantees the byte changes.
            data[position] ^= self.rng.randint(1, 255)
        return bytes(data)

    def observed_corruption_rate(self) -> float:
        """Fraction of sent frames damaged or lost (feeds the EWMA)."""
        if self.frames_sent == 0:
            return 0.0
        return (self.frames_corrupted + self.frames_lost) / self.frames_sent

    def reset_counters(self) -> None:
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.frames_lost = 0

    def __repr__(self) -> str:
        return (
            f"WirelessChannel({self.bandwidth_kbps}kbps, alpha={self.alpha}, "
            f"loss={self.loss_probability})"
        )
