"""The weakly-connected wireless channel model (paper §4–5).

The channel is FIFO but unreliable: every frame takes a deterministic
transmission time of ``bytes·8 / bandwidth`` seconds, and is corrupted
independently with probability α.  Corruption garbles payload bytes —
it never drops the frame silently — so the receiver sees every frame
and relies on the CRC to detect damage, exactly the paper's model of
"received either intact (without error) or corrupted (with detectable
error)".

Frame *loss* (for the ARQ baselines) is modelled separately via
``loss_probability``; a lost frame consumes air time but never
arrives, and the receiver detects the gap through sequence numbers.

The *decision* about each frame's fate is delegated to the shared
:mod:`repro.channel` core: :class:`WirelessChannel` drives a seeded
:class:`~repro.channel.IIDModel` (in the legacy draw discipline, which
burns one corruption draw per undropped frame even at α = 0, so
existing seeded schedules replay byte-for-byte), while
:class:`ModelChannel` drives *any* channel model — bursty
Gilbert–Elliott, a replayed bandwidth/outage trace — and keeps this
module's timing and framing behaviour.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, NamedTuple, Optional

from repro.channel import CORRUPT, DISCONNECT, DROP, ChannelModel, IIDModel
from repro.obs.runtime import OBS
from repro.obs.trace import FRAME_SENT
from repro.util.validation import check_positive, check_probability


class Delivery(NamedTuple):
    """One frame delivery: arrival time, wire bytes, and ground truth.

    ``corrupted`` is the channel's ground truth; receivers must not
    read it (they use the CRC) — it exists for instrumentation and
    oracle-mode simulations.  ``wire`` is ``None`` for lost frames.
    """

    time: float
    wire: Optional[bytes]
    corrupted: bool
    lost: bool


class WirelessChannel:
    """A lossy, corrupting, FIFO wireless link.

    Parameters
    ----------
    bandwidth_kbps:
        Link bandwidth in kilobits per second (19.2 in Table 2).
    alpha:
        Per-frame corruption probability.
    loss_probability:
        Per-frame loss probability (0 in the paper's experiments; used
        by the ARQ baselines).
    rng:
        Source of randomness; pass a seeded ``random.Random`` for
        reproducible runs.  Shared between the fault decisions and the
        byte garbling, preserving the pre-refactor draw order.
    """

    def __init__(
        self,
        bandwidth_kbps: float = 19.2,
        alpha: float = 0.1,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        check_positive(bandwidth_kbps, "bandwidth_kbps")
        self.bandwidth_kbps = bandwidth_kbps
        self.rng = rng if rng is not None else random.Random()
        #: The seeded decision core (see :mod:`repro.channel`).
        self.model: ChannelModel = IIDModel(
            rng=self.rng,
            drop=check_probability(loss_probability, "loss_probability"),
            corrupt=check_probability(alpha, "alpha"),
            always_draw_corrupt=True,
        )
        self.clock = 0.0
        #: instrumentation counters
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.frames_lost = 0

    # The scalar channel parameters read off the model, so subclasses
    # that install a different model report sensible values through
    # the same instrumentation surface.

    @property
    def alpha(self) -> float:
        """Per-frame corruption probability (stationary rate for bursty models)."""
        corrupt = getattr(self.model, "corrupt", None)
        if corrupt is not None:
            return corrupt
        return getattr(self.model, "stationary_alpha", 0.0)

    @property
    def loss_probability(self) -> float:
        return getattr(self.model, "drop", 0.0)

    def transmission_time(self, size_bytes: int) -> float:
        """Air time of *size_bytes* at the current bandwidth.

        Models that carry their own (possibly time-varying) bandwidth
        override the channel's static parameter.
        """
        bandwidth = self.model.bandwidth_kbps
        if bandwidth is None:
            bandwidth = self.bandwidth_kbps
        return size_bytes * 8.0 / (bandwidth * 1000.0)

    def send(self, wire: bytes) -> Delivery:
        """Transmit one frame; advances the channel clock."""
        verdict = self.model.decide()
        self.clock += self.transmission_time(len(wire))
        self.frames_sent += 1

        if verdict is DROP or verdict is DISCONNECT:
            self.frames_lost += 1
            delivery = Delivery(time=self.clock, wire=None, corrupted=False, lost=True)
        elif verdict is CORRUPT:
            self.frames_corrupted += 1
            delivery = Delivery(
                time=self.clock,
                wire=self._garble(wire),
                corrupted=True,
                lost=False,
            )
        else:
            delivery = Delivery(time=self.clock, wire=wire, corrupted=False, lost=False)

        if OBS.enabled:
            self._record_delivery(delivery, len(wire))
        return delivery

    @staticmethod
    def _record_delivery(delivery: Delivery, size: int) -> None:
        outcome = "lost" if delivery.lost else ("corrupt" if delivery.corrupted else "ok")
        OBS.metrics.counter(
            "channel.frames_sent", "frames put on the air"
        ).labels(outcome=outcome).inc()
        OBS.metrics.counter("channel.bytes_sent", "wire bytes transmitted").inc(size)
        OBS.trace.emit(FRAME_SENT, size=size, outcome=outcome, channel_time=delivery.time)

    def send_all(self, frames: Iterable[bytes]) -> Iterator[Delivery]:
        """Transmit a frame sequence in FIFO order, yielding deliveries."""
        for wire in frames:
            yield self.send(wire)

    def _garble(self, wire: bytes) -> bytes:
        """Flip 1..4 bytes of the frame, never returning it unchanged."""
        data = bytearray(wire)
        flips = self.rng.randint(1, min(4, len(data)))
        positions = self.rng.sample(range(len(data)), flips)
        for position in positions:
            # XOR with a nonzero mask guarantees the byte changes.
            data[position] ^= self.rng.randint(1, 255)
        return bytes(data)

    def observed_corruption_rate(self) -> float:
        """Fraction of sent frames damaged or lost (feeds the EWMA)."""
        if self.frames_sent == 0:
            return 0.0
        return (self.frames_corrupted + self.frames_lost) / self.frames_sent

    def reset_counters(self) -> None:
        self.frames_sent = 0
        self.frames_corrupted = 0
        self.frames_lost = 0
        self.model.reset_counters()

    def __repr__(self) -> str:
        return (
            f"WirelessChannel({self.bandwidth_kbps}kbps, alpha={self.alpha}, "
            f"loss={self.loss_probability})"
        )


class ModelChannel(WirelessChannel):
    """A simulated link driven by an arbitrary channel model.

    Keeps :class:`WirelessChannel`'s timing/framing behaviour (FIFO
    clock, air time, byte garbling, ``Delivery`` tuples) but takes all
    per-frame verdicts — and, when the model carries one, the current
    bandwidth — from the supplied :class:`~repro.channel.ChannelModel`.
    A ``DISCONNECT`` verdict is a lost frame whose air time is still
    consumed (the sender cannot know the client vanished); the model's
    ``disconnects`` counter keeps the severed-link tally.

    The garbling RNG is deliberately *separate* from the model's
    decision RNG, so a seeded model instance produces the same verdict
    schedule here as it would at the event or byte level.
    """

    def __init__(
        self,
        model: ChannelModel,
        bandwidth_kbps: float = 19.2,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            bandwidth_kbps=bandwidth_kbps,
            alpha=0.0,
            loss_probability=0.0,
            rng=rng if rng is not None else random.Random(0),
        )
        self.model = model

    def __repr__(self) -> str:
        return f"ModelChannel({self.model!r}, {self.bandwidth_kbps}kbps)"
