"""The fault-tolerant multi-resolution transfer protocol (paper §4.2).

One call to :func:`transfer_document` plays out a complete download of
one prepared document over the wireless channel, round by round:

1. The server streams all N cooked frames in sequence order.
2. The client discards corrupted frames (CRC) and stops the stream as
   soon as one of the paper's three termination conditions holds:
   it can reconstruct the whole document (M intact packets); all
   cooked packets have been received; or it has decided the document
   is irrelevant (received content ≥ its relevance threshold F —
   the "stop button").
3. If a round ends with fewer than M intact packets, the transfer is
   *stalled*: a retransmission round begins.  With a
   :class:`~repro.transport.cache.PacketCache` the intact packets
   survive into the next round (Caching); with
   :class:`~repro.transport.cache.NullCache` the client starts over
   (NoCaching — the default HTTP reload behaviour).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.obs.runtime import OBS
from repro.obs.trace import (
    DECODE_COMPLETE,
    EARLY_STOP,
    ROUND_STALLED,
    ROUND_START,
)
from repro.transport.cache import NullCache, PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import PreparedDocument
from repro.util.validation import check_positive_int


class TransferResult(NamedTuple):
    """Outcome of one document transfer."""

    document_id: str
    success: bool              # document reconstructable (or relevance decided)
    terminated_early: bool     # stopped by the relevance threshold
    response_time: float       # seconds of channel time consumed
    rounds: int                # transmission rounds used (1 = no stall)
    frames_sent: int           # total frames put on the air
    content_received: float    # information content available at the end
    payload: Optional[bytes]   # reconstructed document (None if early-stop)


def transfer_document(
    prepared: PreparedDocument,
    channel: WirelessChannel,
    cache: Optional[PacketCache] = None,
    relevance_threshold: Optional[float] = None,
    max_rounds: int = 100,
) -> TransferResult:
    """Download *prepared* over *channel*; see the module docstring.

    Parameters
    ----------
    cache:
        ``None`` selects NoCaching.  Pass a shared
        :class:`PacketCache` for the Caching strategy.
    relevance_threshold:
        The paper's F: when set, the client stops (document judged
        irrelevant) once the received content reaches it.  ``None``
        downloads to completion.
    max_rounds:
        Safety bound on retransmission rounds; exceeding it reports a
        failed transfer with the time spent so far (matching how an
        interactive user would eventually give up).
    """
    check_positive_int(max_rounds, "max_rounds")
    if cache is None:
        cache = NullCache()

    telemetry = OBS.enabled
    if telemetry:
        OBS.trace.begin_transfer(
            document=prepared.document_id, m=prepared.m, n=prepared.n
        )
        OBS.metrics.counter("transfer.started").inc()

    start_time = channel.clock
    frames = prepared.frames()
    frames_sent = 0
    receiver = TransferReceiver(prepared)
    receiver.preload(cache.load(prepared.document_id))

    if relevance_threshold is not None and relevance_threshold <= 0.0:
        # F = 0: the document is discarded before any packet is sent
        # (the paper calls this point "artificial").
        return _finish(
            TransferResult(
                document_id=prepared.document_id,
                success=True,
                terminated_early=True,
                response_time=0.0,
                rounds=0,
                frames_sent=0,
                content_received=0.0,
                payload=None,
            ),
            telemetry,
        )

    # A fully cached (e.g. prefetched) document costs no air time.
    if receiver.can_reconstruct():
        cache.discard(prepared.document_id)
        return _finish(
            TransferResult(
                document_id=prepared.document_id,
                success=True,
                terminated_early=False,
                response_time=0.0,
                rounds=0,
                frames_sent=0,
                content_received=receiver.content_received,
                payload=receiver.reconstruct(),
            ),
            telemetry,
            intact=receiver.intact_count,
        )

    for round_index in range(1, max_rounds + 1):
        if telemetry:
            OBS.trace.emit(ROUND_START, round=round_index)
        for wire in frames:
            delivery = channel.send(wire)
            frames_sent += 1
            receiver.offer(delivery)

            if (
                relevance_threshold is not None
                and receiver.content_received >= relevance_threshold
            ):
                _store_cache(cache, prepared, receiver)
                return _finish(
                    TransferResult(
                        document_id=prepared.document_id,
                        success=True,
                        terminated_early=True,
                        response_time=channel.clock - start_time,
                        rounds=round_index,
                        frames_sent=frames_sent,
                        content_received=receiver.content_received,
                        payload=None,
                    ),
                    telemetry,
                    intact=receiver.intact_count,
                )
            if receiver.can_reconstruct():
                cache.discard(prepared.document_id)
                return _finish(
                    TransferResult(
                        document_id=prepared.document_id,
                        success=True,
                        terminated_early=False,
                        response_time=channel.clock - start_time,
                        rounds=round_index,
                        frames_sent=frames_sent,
                        content_received=receiver.content_received,
                        payload=receiver.reconstruct(),
                    ),
                    telemetry,
                    intact=receiver.intact_count,
                )

        # Stalled: fewer than M intact after the full round.
        if telemetry:
            OBS.trace.emit(
                ROUND_STALLED, round=round_index, intact=receiver.intact_count
            )
            OBS.metrics.counter(
                "transfer.stalls", "rounds that ended with < M intact"
            ).inc()
        _store_cache(cache, prepared, receiver)
        if isinstance(cache, NullCache) or not cache.load(prepared.document_id):
            # NoCaching restarts from zero intact packets.
            receiver = TransferReceiver(prepared)

    return _finish(
        TransferResult(
            document_id=prepared.document_id,
            success=False,
            terminated_early=False,
            response_time=channel.clock - start_time,
            rounds=max_rounds,
            frames_sent=frames_sent,
            content_received=receiver.content_received,
            payload=None,
        ),
        telemetry,
        intact=receiver.intact_count,
    )


def _store_cache(
    cache: PacketCache, prepared: PreparedDocument, receiver: TransferReceiver
) -> None:
    for sequence, payload in receiver.intact.items():
        cache.store(prepared.document_id, sequence, payload)


#: Buckets for simulated end-to-end response times (seconds of channel
#: time — a 19.2 kbps link legitimately takes minutes on large pages).
_RESPONSE_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)
_ROUND_BUCKETS = (1, 2, 3, 5, 8, 13, 21, 34, 55, 100)


def _finish(
    result: TransferResult, telemetry: bool, intact: Optional[int] = None
) -> TransferResult:
    """Emit the end-of-transfer events and metrics (telemetry on only)."""
    if not telemetry:
        return result
    trace = OBS.trace
    if result.terminated_early:
        trace.emit(EARLY_STOP, content=result.content_received, round=result.rounds)
    elif result.success:
        trace.emit(DECODE_COMPLETE, round=result.rounds, intact=intact)
    metrics = OBS.metrics
    outcome = (
        "early_stop"
        if result.terminated_early
        else ("ok" if result.success else "failed")
    )
    metrics.counter("transfer.completed").labels(outcome=outcome).inc()
    metrics.histogram(
        "transfer.rounds", "rounds per transfer", buckets=_ROUND_BUCKETS
    ).observe(result.rounds)
    metrics.histogram(
        "transfer.response_seconds",
        "simulated channel time per transfer",
        buckets=_RESPONSE_BUCKETS,
    ).observe(result.response_time)
    trace.end_transfer(
        success=result.success,
        rounds=result.rounds,
        frames=result.frames_sent,
        content=result.content_received,
        response_time=result.response_time,
    )
    return result
