"""The fault-tolerant multi-resolution transfer protocol (paper §4.2).

One call to :func:`transfer_document` plays out a complete download of
one prepared document over the wireless channel, round by round:

1. The server streams all N cooked frames in sequence order.
2. The client discards corrupted frames (CRC) and stops the stream as
   soon as one of the paper's three termination conditions holds:
   it can reconstruct the whole document (M intact packets); all
   cooked packets have been received; or it has decided the document
   is irrelevant (received content ≥ its relevance threshold F —
   the "stop button").
3. If a round ends with fewer than M intact packets, the transfer is
   *stalled*: a retransmission round begins.  With a
   :class:`~repro.transport.cache.PacketCache` the intact packets
   survive into the next round (Caching); with
   :class:`~repro.transport.cache.NullCache` the client starts over
   (NoCaching — the default HTTP reload behaviour).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.transport.cache import NullCache, PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import PreparedDocument
from repro.util.validation import check_positive_int


class TransferResult(NamedTuple):
    """Outcome of one document transfer."""

    document_id: str
    success: bool              # document reconstructable (or relevance decided)
    terminated_early: bool     # stopped by the relevance threshold
    response_time: float       # seconds of channel time consumed
    rounds: int                # transmission rounds used (1 = no stall)
    frames_sent: int           # total frames put on the air
    content_received: float    # information content available at the end
    payload: Optional[bytes]   # reconstructed document (None if early-stop)


def transfer_document(
    prepared: PreparedDocument,
    channel: WirelessChannel,
    cache: Optional[PacketCache] = None,
    relevance_threshold: Optional[float] = None,
    max_rounds: int = 100,
) -> TransferResult:
    """Download *prepared* over *channel*; see the module docstring.

    Parameters
    ----------
    cache:
        ``None`` selects NoCaching.  Pass a shared
        :class:`PacketCache` for the Caching strategy.
    relevance_threshold:
        The paper's F: when set, the client stops (document judged
        irrelevant) once the received content reaches it.  ``None``
        downloads to completion.
    max_rounds:
        Safety bound on retransmission rounds; exceeding it reports a
        failed transfer with the time spent so far (matching how an
        interactive user would eventually give up).
    """
    check_positive_int(max_rounds, "max_rounds")
    if cache is None:
        cache = NullCache()

    start_time = channel.clock
    frames = prepared.frames()
    frames_sent = 0
    receiver = TransferReceiver(prepared)
    receiver.preload(cache.load(prepared.document_id))

    if relevance_threshold is not None and relevance_threshold <= 0.0:
        # F = 0: the document is discarded before any packet is sent
        # (the paper calls this point "artificial").
        return TransferResult(
            document_id=prepared.document_id,
            success=True,
            terminated_early=True,
            response_time=0.0,
            rounds=0,
            frames_sent=0,
            content_received=0.0,
            payload=None,
        )

    # A fully cached (e.g. prefetched) document costs no air time.
    if receiver.can_reconstruct():
        cache.discard(prepared.document_id)
        return TransferResult(
            document_id=prepared.document_id,
            success=True,
            terminated_early=False,
            response_time=0.0,
            rounds=0,
            frames_sent=0,
            content_received=receiver.content_received,
            payload=receiver.reconstruct(),
        )

    for round_index in range(1, max_rounds + 1):
        for wire in frames:
            delivery = channel.send(wire)
            frames_sent += 1
            receiver.offer(delivery)

            if (
                relevance_threshold is not None
                and receiver.content_received >= relevance_threshold
            ):
                _store_cache(cache, prepared, receiver)
                return TransferResult(
                    document_id=prepared.document_id,
                    success=True,
                    terminated_early=True,
                    response_time=channel.clock - start_time,
                    rounds=round_index,
                    frames_sent=frames_sent,
                    content_received=receiver.content_received,
                    payload=None,
                )
            if receiver.can_reconstruct():
                cache.discard(prepared.document_id)
                return TransferResult(
                    document_id=prepared.document_id,
                    success=True,
                    terminated_early=False,
                    response_time=channel.clock - start_time,
                    rounds=round_index,
                    frames_sent=frames_sent,
                    content_received=receiver.content_received,
                    payload=receiver.reconstruct(),
                )

        # Stalled: fewer than M intact after the full round.
        _store_cache(cache, prepared, receiver)
        if isinstance(cache, NullCache) or not cache.load(prepared.document_id):
            # NoCaching restarts from zero intact packets.
            receiver = TransferReceiver(prepared)

    return TransferResult(
        document_id=prepared.document_id,
        success=False,
        terminated_early=False,
        response_time=channel.clock - start_time,
        rounds=max_rounds,
        frames_sent=frames_sent,
        content_received=receiver.content_received,
        payload=None,
    )


def _store_cache(
    cache: PacketCache, prepared: PreparedDocument, receiver: TransferReceiver
) -> None:
    for sequence, payload in receiver.intact.items():
        cache.store(prepared.document_id, sequence, payload)
