"""Byte-exact driver for the §4.2 transfer protocol (paper §4.2).

One call to :func:`transfer_document` plays out a complete download of
one prepared document over the wireless channel, round by round.  The
*decision logic* — when to terminate, when a round has stalled, what
the cache policy keeps — lives in the sans-IO
:class:`repro.protocol.TransferEngine`; this module is the thin I/O
driver that owns everything the engine must not touch:

1. The server streams all N cooked frames in sequence order over the
   :class:`~repro.transport.channel.WirelessChannel`.
2. The :class:`~repro.transport.receiver.TransferReceiver` CRC-checks
   each delivery and holds the intact payload bytes; the driver
   reports each outcome to the engine, which terminates the stream as
   soon as one of the paper's three conditions holds: the document is
   reconstructable (M intact packets); all cooked packets have been
   received; or the document was judged irrelevant (received content ≥
   the relevance threshold F — the "stop button").
3. If a round ends with fewer than M intact packets, the transfer is
   *stalled*.  With a :class:`~repro.transport.cache.PacketCache` the
   intact packets survive into the next round (Caching); with
   :class:`~repro.transport.cache.NullCache` the client starts over
   (NoCaching — the default HTTP reload behaviour).

Telemetry for the protocol events flows through the engine's
:class:`~repro.protocol.bridge.TelemetryBridge`; the driver only
reports the I/O facts (frames on the air, channel time) at the end.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.protocol import (
    DEFAULT_MAX_ROUNDS,
    DEFAULT_ROUND_TIMEOUT,
    Decoded,
    EarlyStop,
    TelemetryBridge,
    TransferEngine,
)
from repro.prep.request import TransferSettings, legacy_value, settings_from_legacy
from repro.transport.cache import NullCache, PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import PreparedDocument


class TransferResult(NamedTuple):
    """Outcome of one document transfer."""

    document_id: str
    success: bool              # document reconstructable (or relevance decided)
    terminated_early: bool     # stopped by the relevance threshold
    response_time: float       # seconds of channel time consumed
    rounds: int                # transmission rounds used (1 = no stall)
    frames_sent: int           # total frames put on the air
    content_received: float    # information content available at the end
    payload: Optional[bytes]   # reconstructed document (None if early-stop)


def transfer_document(
    prepared: PreparedDocument,
    channel: WirelessChannel,
    cache: Optional[PacketCache] = None,
    relevance_threshold: Optional[float] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    round_timeout: float = DEFAULT_ROUND_TIMEOUT,
    *,
    settings: Optional[TransferSettings] = None,
) -> TransferResult:
    """Download *prepared* over *channel*; see the module docstring.

    Parameters
    ----------
    cache:
        ``None`` selects NoCaching (or Caching with a fresh
        :class:`PacketCache` when ``settings.use_cache`` is set).  Pass
        a shared :class:`PacketCache` for Caching across transfers.
    settings:
        The client-side protocol knobs —
        :class:`repro.prep.TransferSettings` — replacing the individual
        ``relevance_threshold`` / ``max_rounds`` / ``round_timeout``
        keywords, which remain as deprecated shims: passing them still
        works (one :class:`DeprecationWarning`) and overrides the
        matching *settings* fields.  ``relevance_threshold`` is the
        paper's F (stop once received content reaches it; ``None``
        downloads to completion); ``max_rounds`` bounds retransmission
        rounds; ``round_timeout`` bounds per-round channel time.
    """
    settings = settings_from_legacy(
        settings,
        "transfer_document",
        relevance_threshold=legacy_value(relevance_threshold, None),
        max_rounds=legacy_value(max_rounds, DEFAULT_MAX_ROUNDS),
        round_timeout=legacy_value(round_timeout, DEFAULT_ROUND_TIMEOUT),
    )
    relevance_threshold = settings.relevance_threshold
    max_rounds = settings.max_rounds
    round_timeout = settings.round_timeout
    if cache is None:
        cache = PacketCache() if settings.use_cache else NullCache()

    start_time = channel.clock
    frames = prepared.frames()
    frames_sent = 0
    receiver = TransferReceiver(prepared)

    bridge = TelemetryBridge("transfer")
    engine = TransferEngine(
        prepared.m,
        prepared.n,
        content_profile=prepared.content_profile,
        relevance_threshold=relevance_threshold,
        max_rounds=max_rounds,
        document_id=prepared.document_id,
        bridge=bridge,
    )
    engine.open()  # cache telemetry below lands inside the transfer scope
    receiver.preload(cache.load(prepared.document_id))
    engine.preload(receiver.intact)

    terminal = engine.start()
    round_started = channel.clock
    while terminal is None:
        for wire in frames:
            delivery = channel.send(wire)
            frames_sent += 1
            sequence = receiver.offer(delivery)
            if sequence is not None:
                terminal = engine.on_frame_intact(sequence)
            elif delivery.lost:
                terminal = engine.on_frame_lost()
            else:
                terminal = engine.on_frame_corrupt()
            if terminal is not None:
                break
        else:
            # Stalled: fewer than M intact after the full round.  The
            # cache decides whether the intact set survives; the engine
            # mirrors whatever the cache actually retained.
            receiver.reconcile(len(frames))
            _store_cache(cache, prepared, receiver)
            if channel.clock - round_started >= round_timeout:
                # The link is too slow to ever finish a round inside
                # the timeout: give up rather than loop to max_rounds.
                terminal = engine.abort()
                break
            carried = not isinstance(cache, NullCache) and bool(
                cache.load(prepared.document_id)
            )
            if not carried:
                receiver = TransferReceiver(prepared)
            terminal = engine.on_round_ended(carried=carried)
            round_started = channel.clock

    if isinstance(terminal, EarlyStop):
        if terminal.round > 0:
            _store_cache(cache, prepared, receiver)
        result = TransferResult(
            document_id=prepared.document_id,
            success=True,
            terminated_early=True,
            response_time=channel.clock - start_time if terminal.round else 0.0,
            rounds=terminal.round,
            frames_sent=frames_sent,
            content_received=terminal.content,
            payload=None,
        )
    elif isinstance(terminal, Decoded):
        cache.discard(prepared.document_id)
        result = TransferResult(
            document_id=prepared.document_id,
            success=True,
            terminated_early=False,
            response_time=channel.clock - start_time if terminal.round else 0.0,
            rounds=terminal.round,
            frames_sent=frames_sent,
            content_received=receiver.content_received,
            payload=receiver.reconstruct(),
        )
    else:  # Failed: the retransmission bound was exhausted.
        result = TransferResult(
            document_id=prepared.document_id,
            success=False,
            terminated_early=False,
            response_time=channel.clock - start_time,
            rounds=terminal.round,
            frames_sent=frames_sent,
            content_received=receiver.content_received,
            payload=None,
        )
    bridge.complete(
        success=result.success,
        terminated_early=result.terminated_early,
        rounds=result.rounds,
        frames=result.frames_sent,
        content=result.content_received,
        response_time=result.response_time,
    )
    return result


def _store_cache(
    cache: PacketCache, prepared: PreparedDocument, receiver: TransferReceiver
) -> None:
    for sequence, payload in receiver.intact.items():
        cache.store(prepared.document_id, sequence, payload)
