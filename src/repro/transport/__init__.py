"""Transport substrate: the wireless channel, the fault-tolerant
multi-resolution transfer protocol, packet caching, and the ARQ /
compression / prefetching companions.
"""

from repro.transport.channel import Delivery, ModelChannel, WirelessChannel
from repro.transport.cache import NullCache, PacketCache
from repro.transport.sender import DocumentSender, PreparedDocument
from repro.transport.receiver import TransferReceiver
from repro.transport.session import TransferResult, transfer_document
from repro.transport.arq import ArqResult, selective_repeat, stop_and_wait
from repro.transport.compress import (
    CompressionError,
    CompressionInterceptor,
    compress,
    decompress,
)
from repro.transport.prefetch import PrefetchCandidate, Prefetcher, PrefetchReport
from repro.transport.gilbert import GilbertElliottChannel, matched_to_alpha

__all__ = [
    "WirelessChannel",
    "ModelChannel",
    "Delivery",
    "PacketCache",
    "NullCache",
    "DocumentSender",
    "PreparedDocument",
    "TransferReceiver",
    "transfer_document",
    "TransferResult",
    "stop_and_wait",
    "selective_repeat",
    "ArqResult",
    "compress",
    "decompress",
    "CompressionError",
    "CompressionInterceptor",
    "Prefetcher",
    "PrefetchCandidate",
    "PrefetchReport",
    "GilbertElliottChannel",
    "matched_to_alpha",
]
