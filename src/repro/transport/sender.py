"""Server-side document transmitter.

Combines the multi-resolution schedule (§3/§4.2) with the packetizer
(§4.1): the scheduled byte stream is split into M raw packets, cooked
into N ≥ M packets, and framed for the wire.  The transmitter also
derives the *content profile* — how much information content each
clear-text packet carries — which drives the client's early
termination decision.
"""

from __future__ import annotations

from typing import List, Optional

from repro.coding.packets import CookedDocument, Packetizer
from repro.core.multires import TransmissionSchedule
from repro.obs.runtime import OBS
from repro.obs.timing import timed


class PreparedDocument:
    """A document ready for fault-tolerant multi-resolution transfer."""

    def __init__(
        self,
        document_id: str,
        cooked: CookedDocument,
        content_profile: List[float],
    ) -> None:
        self.document_id = document_id
        self.cooked = cooked
        #: content carried by clear-text packet i (length M, sums to
        #: the document's total content, 1.0 for a complete measure).
        self.content_profile = content_profile

    @property
    def m(self) -> int:
        return self.cooked.m

    @property
    def n(self) -> int:
        return self.cooked.n

    def frames(self) -> List[bytes]:
        return self.cooked.frames()


class DocumentSender:
    """Prepares documents for transmission over the wireless channel.

    Parameters
    ----------
    packetizer:
        Controls packet size, redundancy ratio γ, and codec choice.
    backend:
        GF(2^8) kernel used for cooking when no *packetizer* is
        supplied (name, instance, or None for the environment
        default; see :mod:`repro.coding.backend`).
    """

    def __init__(
        self,
        packetizer: Optional[Packetizer] = None,
        backend: Optional[object] = None,
    ) -> None:
        if packetizer is None:
            packetizer = Packetizer(backend=backend)
        self.packetizer = packetizer

    def prepare(
        self, document_id: str, schedule: TransmissionSchedule
    ) -> PreparedDocument:
        """Cook a scheduled document and compute its content profile."""
        payload = schedule.payload()
        if not payload:
            raise ValueError(f"document {document_id!r} has an empty payload")
        with timed("sender.prepare"):
            cooked = self.packetizer.cook(payload)
            profile = self._content_profile(schedule, cooked.m)
        if OBS.enabled:
            self._record_prepared(cooked)
        return PreparedDocument(document_id, cooked, profile)

    def prepare_raw(self, document_id: str, payload: bytes) -> PreparedDocument:
        """Cook an unscheduled byte blob (conventional transmission).

        The content profile is uniform: every clear packet carries an
        equal share, which is the information-free assumption for a
        document without an SC.
        """
        if not payload:
            raise ValueError(f"document {document_id!r} has an empty payload")
        with timed("sender.prepare"):
            cooked = self.packetizer.cook(payload)
        profile = [1.0 / cooked.m] * cooked.m
        if OBS.enabled:
            self._record_prepared(cooked)
        return PreparedDocument(document_id, cooked, profile)

    @staticmethod
    def _record_prepared(cooked: CookedDocument) -> None:
        OBS.metrics.counter("sender.documents_prepared").labels(
            backend=cooked.codec.backend.name
        ).inc()
        OBS.metrics.counter("sender.cooked_packets").inc(cooked.n)
        OBS.metrics.counter("sender.raw_packets").inc(cooked.m)

    def _content_profile(
        self, schedule: TransmissionSchedule, m: int
    ) -> List[float]:
        size = self.packetizer.packet_size
        profile: List[float] = []
        previous = 0.0
        for index in range(m):
            cumulative = schedule.content_prefix((index + 1) * size)
            profile.append(cumulative - previous)
            previous = cumulative
        return profile
