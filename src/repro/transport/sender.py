"""Compatibility shim: the sender moved to :mod:`repro.prep.prepare`.

Content preparation is now owned by :mod:`repro.prep` — the
:class:`~repro.prep.service.PreparationService` and its request API —
so :class:`DocumentSender` and :class:`PreparedDocument` live there.
This module re-exports both names so existing imports
(``from repro.transport.sender import DocumentSender``) keep working.
"""

from __future__ import annotations

from repro.prep.prepare import DocumentSender, PreparedDocument

__all__ = ["DocumentSender", "PreparedDocument"]
