"""Seeded channel models: one verdict vocabulary for every layer.

A :class:`ChannelModel` answers one question per frame — what does the
channel do to it? — with one of four verdicts: :data:`PASS` (deliver
untouched), :data:`DROP` (silently lost), :data:`CORRUPT` (arrives
damaged, caught by the frame CRC), or :data:`DISCONNECT` (the link is
severed / a disconnection window opens).  Consumers map the verdicts
onto their own medium: the event-level injector rewrites typed engine
events, the byte-level proxy swallows or garbles wire messages, the
simulated wireless channel turns them into deliveries with air time.

Because every consumer calls :meth:`~ChannelModel.decide` exactly once
per frame and the models draw only from their own seeded RNG, a seeded
model instance produces the *same* verdict schedule no matter which
layer consumes it — the cross-layer parity the chaos suite pins.

Counter semantics are uniform: ``dropped`` counts frames lost outright
(including those swallowed inside a disconnection window), ``corrupted``
counts damaged frames, and ``disconnects`` counts severed-link events —
a ``DISCONNECT`` verdict is *not* a drop (the pre-refactor ``FaultPlan``
conflated the two; its compat shim reconstructs the old arithmetic).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

#: The four verdicts a :class:`ChannelModel` can return for one frame.
PASS = "pass"
DROP = "drop"
CORRUPT = "corrupt"
DISCONNECT = "disconnect"

#: All verdicts, in severity order.
VERDICTS = (PASS, CORRUPT, DROP, DISCONNECT)


def _check_probability(name: str, p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"{name} must be a probability, got {p}")
    return p


class ChannelModel:
    """Base class: seeded per-frame verdicts plus a bandwidth view.

    Subclasses implement :meth:`decide`; the base owns the uniform
    counters and the optional time/bandwidth view
    (:attr:`bandwidth_kbps` / :meth:`transmission_time`) that
    timing-aware consumers — the simulated wireless channels — read.
    Models whose bandwidth never varies may leave
    :attr:`bandwidth_kbps` ``None`` and let the consumer use its own.
    """

    def __init__(self, *, bandwidth_kbps: Optional[float] = None) -> None:
        if bandwidth_kbps is not None and bandwidth_kbps <= 0:
            raise ValueError(
                f"bandwidth_kbps must be positive, got {bandwidth_kbps}"
            )
        #: Current link bandwidth in kbit/s, or ``None`` when the model
        #: has no opinion (time-varying models update this per frame).
        self.bandwidth_kbps = bandwidth_kbps
        self.passed = 0
        self.dropped = 0
        self.corrupted = 0
        self.disconnects = 0

    # -- verdicts ----------------------------------------------------------

    def decide(self) -> str:
        """Consume the schedule for one frame and return its verdict."""
        raise NotImplementedError

    @property
    def disconnected(self) -> bool:
        """True while a disconnection window is swallowing frames."""
        return False

    # -- counters ----------------------------------------------------------

    @property
    def frames(self) -> int:
        """Total frames decided so far."""
        return self.passed + self.dropped + self.corrupted + self.disconnects

    def counters(self) -> Dict[str, int]:
        """The uniform counter snapshot every consumer exposes."""
        return {
            "frames": self.frames,
            "passed": self.passed,
            "dropped": self.dropped,
            "corrupted": self.corrupted,
            "disconnects": self.disconnects,
        }

    def reset_counters(self) -> None:
        self.passed = 0
        self.dropped = 0
        self.corrupted = 0
        self.disconnects = 0

    def _record(self, verdict: str) -> str:
        if verdict is PASS:
            self.passed += 1
        elif verdict is DROP:
            self.dropped += 1
        elif verdict is CORRUPT:
            self.corrupted += 1
        else:
            self.disconnects += 1
        return verdict

    # -- time/bandwidth view ----------------------------------------------

    def transmission_time(
        self, size_bytes: int, default_bandwidth_kbps: Optional[float] = None
    ) -> float:
        """Air time of *size_bytes* at the model's current bandwidth.

        Falls back to *default_bandwidth_kbps* when the model carries
        no bandwidth of its own.
        """
        bandwidth = self.bandwidth_kbps
        if bandwidth is None:
            bandwidth = default_bandwidth_kbps
        if bandwidth is None or bandwidth <= 0:
            raise ValueError("no bandwidth configured for this model")
        return size_bytes * 8.0 / (bandwidth * 1000.0)


class IIDModel(ChannelModel):
    """Independent per-frame drop/corrupt/disconnect (the paper's α).

    Draw order is fixed — disconnect, then drop, then corrupt, each
    drawn only when its probability is positive — byte-compatible with
    the pre-refactor ``FaultPlan``, so existing seeded schedules and
    the protocol golden fixtures replay bit-for-bit.

    Parameters
    ----------
    rng:
        Dedicated seeded RNG; one draw per positive-probability fault
        class per frame, never shared with the consumer's own RNG.
    drop / corrupt / disconnect:
        Per-frame probabilities.
    outage_events:
        Length of a disconnection window in frames: a ``DISCONNECT``
        verdict is followed by ``outage_events - 1`` unconditional
        ``DROP`` verdicts.
    always_draw_corrupt:
        Legacy draw discipline of the simulated
        :class:`~repro.transport.channel.WirelessChannel`, which burns
        one corruption draw per undropped frame even at α = 0.  Keeps
        seeded transport schedules byte-exact; leave False elsewhere.
    """

    def __init__(
        self,
        *,
        rng: Optional[random.Random] = None,
        drop: float = 0.0,
        corrupt: float = 0.0,
        disconnect: float = 0.0,
        outage_events: int = 0,
        always_draw_corrupt: bool = False,
        bandwidth_kbps: Optional[float] = None,
    ) -> None:
        for name, p in (("drop", drop), ("corrupt", corrupt), ("disconnect", disconnect)):
            _check_probability(name, p)
        if outage_events < 0:
            raise ValueError(f"outage_events must be >= 0, got {outage_events}")
        super().__init__(bandwidth_kbps=bandwidth_kbps)
        self.rng = rng if rng is not None else random.Random(0)
        self.drop = drop
        self.corrupt = corrupt
        self.disconnect = disconnect
        self.outage_events = outage_events
        self.always_draw_corrupt = always_draw_corrupt
        self._outage_left = 0

    @property
    def disconnected(self) -> bool:
        return self._outage_left > 0

    def decide(self) -> str:
        if self._outage_left > 0:
            self._outage_left -= 1
            return self._record(DROP)
        rng = self.rng
        if self.disconnect > 0.0 and rng.random() < self.disconnect:
            self._outage_left = max(0, self.outage_events - 1)
            return self._record(DISCONNECT)
        if self.drop > 0.0 and rng.random() < self.drop:
            return self._record(DROP)
        if (self.corrupt > 0.0 or self.always_draw_corrupt) and (
            rng.random() < self.corrupt
        ):
            return self._record(CORRUPT)
        return self._record(PASS)

    def __repr__(self) -> str:
        return (
            f"IIDModel(drop={self.drop:g}, corrupt={self.corrupt:g}, "
            f"disconnect={self.disconnect:g}, outage_events={self.outage_events})"
        )


# -- Gilbert–Elliott stationary math (the single implementation) -----------


def stationary_bad_probability(good_to_bad: float, bad_to_good: float) -> float:
    """Long-run fraction of time a two-state chain spends in BAD."""
    _check_probability("good_to_bad", good_to_bad)
    _check_probability("bad_to_good", bad_to_good)
    if good_to_bad + bad_to_good == 0:
        raise ValueError("the chain must be able to change state")
    return good_to_bad / (good_to_bad + bad_to_good)


def stationary_alpha(
    good_alpha: float, bad_alpha: float, good_to_bad: float, bad_to_good: float
) -> float:
    """The chain's stationary corruption rate α*."""
    _check_probability("good_alpha", good_alpha)
    _check_probability("bad_alpha", bad_alpha)
    pi_bad = stationary_bad_probability(good_to_bad, bad_to_good)
    return pi_bad * bad_alpha + (1.0 - pi_bad) * good_alpha


def matched_transitions(
    alpha: float,
    burst_length: float = 5.0,
    good_alpha: float = 0.02,
    bad_alpha: float = 0.95,
) -> Tuple[float, float]:
    """Transition probabilities whose stationary rate equals *alpha*.

    Solves for ``(good_to_bad, bad_to_good)`` given the desired mean
    burst length (``1 / bad_to_good``) and the per-state corruption
    rates.  Requires ``good_alpha < alpha < bad_alpha``.  This is the
    one matched-α implementation: both the transport channel's
    ``matched_to_alpha`` and :meth:`GilbertElliottModel.matched_to_alpha`
    call it.
    """
    _check_probability("alpha", alpha)
    if not good_alpha < alpha < bad_alpha:
        raise ValueError(
            f"alpha must lie strictly between good_alpha ({good_alpha}) "
            f"and bad_alpha ({bad_alpha})"
        )
    if burst_length < 1.0:
        raise ValueError("burst_length must be >= 1 packet")
    bad_to_good = 1.0 / burst_length
    # π_bad from the stationary-rate equation.
    pi_bad = (alpha - good_alpha) / (bad_alpha - good_alpha)
    good_to_bad = bad_to_good * pi_bad / (1.0 - pi_bad)
    if good_to_bad > 1.0:
        raise ValueError(
            "burst_length too short for the requested alpha; increase it"
        )
    return good_to_bad, bad_to_good


class GilbertElliottModel(ChannelModel):
    """Two-state bursty corruption (GOOD/BAD fade model).

    Per frame: corrupt with ``good_alpha`` or ``bad_alpha`` depending
    on the state, then flip the state with ``good_to_bad`` /
    ``bad_to_good`` — exactly two RNG draws per frame, in the same
    order as the simulated
    :class:`~repro.transport.gilbert.GilbertElliottChannel`, which
    delegates its corruption process here.
    """

    def __init__(
        self,
        *,
        rng: Optional[random.Random] = None,
        good_alpha: float = 0.02,
        bad_alpha: float = 0.95,
        good_to_bad: float = 0.05,
        bad_to_good: float = 0.3,
        start_in_bad: bool = False,
        bandwidth_kbps: Optional[float] = None,
    ) -> None:
        _check_probability("good_alpha", good_alpha)
        _check_probability("bad_alpha", bad_alpha)
        _check_probability("good_to_bad", good_to_bad)
        _check_probability("bad_to_good", bad_to_good)
        if good_to_bad + bad_to_good == 0:
            raise ValueError("the chain must be able to change state")
        super().__init__(bandwidth_kbps=bandwidth_kbps)
        self.rng = rng if rng is not None else random.Random(0)
        self.good_alpha = good_alpha
        self.bad_alpha = bad_alpha
        self.good_to_bad = good_to_bad
        self.bad_to_good = bad_to_good
        self.in_bad_state = start_in_bad
        #: instrumentation: frames decided while in the BAD state.
        self.bad_frames = 0

    @classmethod
    def matched_to_alpha(
        cls,
        alpha: float,
        burst_length: float = 5.0,
        bad_alpha: float = 0.95,
        good_alpha: float = 0.02,
        rng: Optional[random.Random] = None,
        start_in_bad: bool = False,
        bandwidth_kbps: Optional[float] = None,
    ) -> "GilbertElliottModel":
        """A bursty model whose stationary corruption rate equals *alpha*."""
        good_to_bad, bad_to_good = matched_transitions(
            alpha, burst_length, good_alpha=good_alpha, bad_alpha=bad_alpha
        )
        return cls(
            rng=rng,
            good_alpha=good_alpha,
            bad_alpha=bad_alpha,
            good_to_bad=good_to_bad,
            bad_to_good=bad_to_good,
            start_in_bad=start_in_bad,
            bandwidth_kbps=bandwidth_kbps,
        )

    @property
    def stationary_bad_probability(self) -> float:
        return stationary_bad_probability(self.good_to_bad, self.bad_to_good)

    @property
    def stationary_alpha(self) -> float:
        return stationary_alpha(
            self.good_alpha, self.bad_alpha, self.good_to_bad, self.bad_to_good
        )

    def expected_burst_length(self) -> float:
        """Mean number of consecutive frames spent in one BAD visit."""
        if self.bad_to_good == 0:
            return float("inf")
        return 1.0 / self.bad_to_good

    def decide(self) -> str:
        if self.in_bad_state:
            self.bad_frames += 1
        probability = self.bad_alpha if self.in_bad_state else self.good_alpha
        corrupted = self.rng.random() < probability
        # State transition applies after the frame (per-frame steps).
        if self.in_bad_state:
            if self.rng.random() < self.bad_to_good:
                self.in_bad_state = False
        else:
            if self.rng.random() < self.good_to_bad:
                self.in_bad_state = True
        return self._record(CORRUPT if corrupted else PASS)

    def __repr__(self) -> str:
        return (
            f"GilbertElliottModel(alpha*={self.stationary_alpha:.3f}, "
            f"burst~{self.expected_burst_length():.1f})"
        )


class RecordingModel(ChannelModel):
    """Wraps any model and records its verdict schedule.

    Used by the cross-layer parity suite (and handy when debugging a
    chaos run): ``recorder.verdicts`` is the exact sequence the wrapped
    model produced, no matter which layer consumed it.  All counters
    and views delegate to the wrapped model.
    """

    def __init__(self, inner: ChannelModel) -> None:
        # Deliberately no super().__init__(): all state lives on the
        # wrapped model; the wrapper only keeps the verdict log.
        self.inner = inner
        self.verdicts: List[str] = []

    def decide(self) -> str:
        verdict = self.inner.decide()
        self.verdicts.append(verdict)
        return verdict

    @property
    def disconnected(self) -> bool:
        return self.inner.disconnected

    @property
    def bandwidth_kbps(self) -> Optional[float]:  # type: ignore[override]
        return self.inner.bandwidth_kbps

    @property
    def frames(self) -> int:
        return self.inner.frames

    def counters(self) -> Dict[str, int]:
        return self.inner.counters()

    def reset_counters(self) -> None:
        self.inner.reset_counters()
        self.verdicts.clear()

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
