"""repro.channel — the one seeded channel-model core.

The paper's premise is a *weakly-connected* channel: "occasional
disconnection during transmission ... is common" (§4).  Every layer
that needs adversarial channel conditions — the event-level
:class:`~repro.protocol.FaultInjector`, the byte-level
:class:`~repro.net.chaos.ChaosProxy`, and the timing-aware
:class:`~repro.transport.channel.WirelessChannel` family — consults
one of the models defined here, so a seeded schedule means the same
thing at every layer:

* :class:`IIDModel` — independent per-frame drop/corrupt/disconnect
  (the paper's i.i.d. α, draw-order byte-compatible with the
  pre-refactor ``FaultPlan``);
* :class:`GilbertElliottModel` — two-state bursty corruption, with
  :meth:`~GilbertElliottModel.matched_to_alpha` for apples-to-apples
  stationary loss;
* :class:`TraceModel` — time-varying bandwidth / handoff / outage
  schedules loaded from a small JSON trace format.

Layering: this package sits *below* :mod:`repro.protocol` in the
import DAG — it may use only the standard library, :mod:`repro.util`,
and :mod:`repro.obs` (enforced by ``tools/check_layering.py``).
"""

from repro.channel.model import (
    CORRUPT,
    DISCONNECT,
    DROP,
    PASS,
    VERDICTS,
    ChannelModel,
    GilbertElliottModel,
    IIDModel,
    RecordingModel,
    matched_transitions,
    stationary_alpha,
    stationary_bad_probability,
)
from repro.channel.spec import legacy_chaos_spec, parse_model_spec
from repro.channel.trace import TraceModel, TraceSegment

__all__ = [
    "PASS",
    "DROP",
    "CORRUPT",
    "DISCONNECT",
    "VERDICTS",
    "ChannelModel",
    "IIDModel",
    "GilbertElliottModel",
    "TraceModel",
    "TraceSegment",
    "RecordingModel",
    "legacy_chaos_spec",
    "parse_model_spec",
    "stationary_alpha",
    "stationary_bad_probability",
    "matched_transitions",
]
