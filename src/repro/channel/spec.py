"""Parse ``--chaos-model`` specs into :class:`~repro.channel.ChannelModel`s.

Grammar (one spec string, no spaces)::

    iid:drop=P,corrupt=P,disconnect=P,outage=N
    gilbert:alpha=A,burst=L[,good=P,bad=P]
    gilbert:good=P,bad=P,g2b=P,b2g=P
    trace:PATH.json

``iid:`` keys all default to 0 (``alpha`` is accepted as an alias for
``corrupt``, matching the transport channels' vocabulary).  ``gilbert:``
comes in two forms: the *matched* form solves the transition
probabilities so the stationary corruption rate equals ``alpha``
(see :func:`repro.channel.matched_transitions`), while the *explicit*
form names the four chain parameters directly.  ``trace:`` loads the
JSON trace format documented in :mod:`repro.channel.trace`.

Every model kind accepts an optional trailing ``bandwidth=KBPS`` pair
(for traces the per-segment bandwidth wins where present).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Tuple

from repro.channel.model import (
    ChannelModel,
    GilbertElliottModel,
    IIDModel,
    matched_transitions,
)
from repro.channel.trace import TraceModel

_IID_KEYS = ("drop", "corrupt", "alpha", "disconnect", "outage", "bandwidth")
_GILBERT_KEYS = ("alpha", "burst", "good", "bad", "g2b", "b2g", "bandwidth")


def _parse_pairs(body: str, kind: str, allowed: Tuple[str, ...]) -> Dict[str, str]:
    pairs: Dict[str, str] = {}
    if not body:
        return pairs
    for token in body.split(","):
        if "=" not in token:
            raise ValueError(
                f"bad {kind!r} model spec: expected key=value, got {token!r}"
            )
        key, _, value = token.partition("=")
        key = key.strip()
        if key not in allowed:
            raise ValueError(
                f"bad {kind!r} model spec: unknown key {key!r} "
                f"(valid: {', '.join(allowed)})"
            )
        if key in pairs:
            raise ValueError(f"bad {kind!r} model spec: duplicate key {key!r}")
        pairs[key] = value.strip()
    return pairs


def _to_float(kind: str, key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"bad {kind!r} model spec: {key}={value!r} is not a number"
        ) from None


def _to_int(kind: str, key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"bad {kind!r} model spec: {key}={value!r} is not an integer"
        ) from None


def _build_iid(body: str, rng: Optional[random.Random]) -> IIDModel:
    pairs = _parse_pairs(body, "iid", _IID_KEYS)
    if "corrupt" in pairs and "alpha" in pairs:
        raise ValueError(
            "bad 'iid' model spec: give either corrupt= or its alias alpha=, not both"
        )
    corrupt = pairs.get("corrupt", pairs.get("alpha", "0"))
    bandwidth = pairs.get("bandwidth")
    return IIDModel(
        rng=rng,
        drop=_to_float("iid", "drop", pairs.get("drop", "0")),
        corrupt=_to_float("iid", "corrupt", corrupt),
        disconnect=_to_float("iid", "disconnect", pairs.get("disconnect", "0")),
        outage_events=_to_int("iid", "outage", pairs.get("outage", "0")),
        bandwidth_kbps=(
            _to_float("iid", "bandwidth", bandwidth) if bandwidth is not None else None
        ),
    )


def _build_gilbert(body: str, rng: Optional[random.Random]) -> GilbertElliottModel:
    pairs = _parse_pairs(body, "gilbert", _GILBERT_KEYS)
    bandwidth = pairs.get("bandwidth")
    bandwidth_kbps = (
        _to_float("gilbert", "bandwidth", bandwidth) if bandwidth is not None else None
    )
    explicit = {"g2b", "b2g"} & set(pairs)
    if explicit and ("alpha" in pairs or "burst" in pairs):
        raise ValueError(
            "bad 'gilbert' model spec: mix of matched (alpha=/burst=) and "
            "explicit (g2b=/b2g=) forms"
        )
    if explicit:
        if explicit != {"g2b", "b2g"}:
            raise ValueError(
                "bad 'gilbert' model spec: explicit form needs both g2b= and b2g="
            )
        return GilbertElliottModel(
            rng=rng,
            good_alpha=_to_float("gilbert", "good", pairs.get("good", "0.02")),
            bad_alpha=_to_float("gilbert", "bad", pairs.get("bad", "0.95")),
            good_to_bad=_to_float("gilbert", "g2b", pairs["g2b"]),
            bad_to_good=_to_float("gilbert", "b2g", pairs["b2g"]),
            bandwidth_kbps=bandwidth_kbps,
        )
    if "alpha" not in pairs:
        raise ValueError(
            "bad 'gilbert' model spec: need alpha= (matched form) "
            "or g2b=/b2g= (explicit form)"
        )
    return GilbertElliottModel.matched_to_alpha(
        _to_float("gilbert", "alpha", pairs["alpha"]),
        burst_length=_to_float("gilbert", "burst", pairs.get("burst", "5")),
        good_alpha=_to_float("gilbert", "good", pairs.get("good", "0.02")),
        bad_alpha=_to_float("gilbert", "bad", pairs.get("bad", "0.95")),
        rng=rng,
        bandwidth_kbps=bandwidth_kbps,
    )


def _build_trace(body: str, rng: Optional[random.Random]) -> TraceModel:
    if not body:
        raise ValueError("bad 'trace' model spec: need trace:PATH.json")
    return TraceModel.from_json(body, rng=rng)


_BUILDERS: Dict[str, Callable[[str, Optional[random.Random]], ChannelModel]] = {
    "iid": _build_iid,
    "gilbert": _build_gilbert,
    "trace": _build_trace,
}


def legacy_chaos_spec(
    *,
    drop: float = 0.0,
    corrupt: float = 0.0,
    disconnect: float = 0.0,
    outage: int = 0,
) -> Optional[str]:
    """Synthesize the ``iid:`` spec equivalent of the retired per-flag
    chaos surface (``--chaos-drop`` / ``--chaos-corrupt`` /
    ``--chaos-disconnect`` / ``--alpha``).

    Returns ``None`` when every probability is zero (no chaos asked
    for).  This is the one translation point: every deprecated flag
    forwards through here and then down the ordinary
    :func:`parse_model_spec` path, so legacy and spec-based invocations
    build byte-identical seeded models.
    """
    parts = []
    if drop:
        parts.append(f"drop={drop:g}")
    if corrupt:
        parts.append(f"corrupt={corrupt:g}")
    if disconnect:
        parts.append(f"disconnect={disconnect:g}")
    if outage:
        parts.append(f"outage={outage:d}")
    if not parts:
        return None
    return "iid:" + ",".join(parts)


def parse_model_spec(
    spec: str, *, rng: Optional[random.Random] = None, seed: Optional[int] = None
) -> ChannelModel:
    """Build a channel model from a ``--chaos-model`` spec string.

    Exactly one of ``rng`` / ``seed`` may be given; with neither the
    model falls back to its own default seed (0), keeping specs
    reproducible by construction.
    """
    if rng is not None and seed is not None:
        raise ValueError("give either rng or seed, not both")
    if seed is not None:
        rng = random.Random(seed)
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"empty channel model spec: {spec!r}")
    kind, sep, body = spec.strip().partition(":")
    kind = kind.strip().lower()
    builder = _BUILDERS.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown channel model kind {kind!r} "
            f"(valid: {', '.join(sorted(_BUILDERS))}; "
            "e.g. iid:drop=0.1 | gilbert:alpha=0.2,burst=5 | trace:FILE.json)"
        )
    return builder(body.strip() if sep else "", rng)
