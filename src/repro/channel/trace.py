"""Time-varying channel traces: bandwidth, handoffs, outages from JSON.

A trace is a sequence of *segments*, each active for a fixed number of
frames.  A segment either carries per-frame fault probabilities (and
optionally a bandwidth), or is an ``outage`` — a handoff / dead zone
whose first frame returns :data:`~repro.channel.model.DISCONNECT` and
whose remaining frames are swallowed (:data:`~repro.channel.model.DROP`).
After the last segment the trace either wraps (``repeat``) or the final
segment persists — a trace that ends in a clean segment models a
recovered link, one that ends in an outage models a dead one.

The JSON format (``trace:FILE`` on the CLI)::

    {
      "name": "urban-handoff",
      "repeat": true,
      "segments": [
        {"frames": 200, "bandwidth_kbps": 19.2, "corrupt": 0.02},
        {"frames": 25, "outage": true},
        {"frames": 150, "bandwidth_kbps": 4.8, "corrupt": 0.2, "drop": 0.05}
      ]
    }

A bare JSON list is accepted as shorthand for ``{"segments": [...]}``.
Unknown keys are rejected so typos fail loudly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Union

import random

from repro.channel.model import (
    CORRUPT,
    DISCONNECT,
    DROP,
    PASS,
    ChannelModel,
    _check_probability,
)

_SEGMENT_KEYS = frozenset(
    {"frames", "drop", "corrupt", "disconnect", "outage", "bandwidth_kbps"}
)
_TRACE_KEYS = frozenset({"name", "repeat", "segments"})


class TraceSegment(NamedTuple):
    """One homogeneous stretch of channel behaviour."""

    frames: int
    drop: float = 0.0
    corrupt: float = 0.0
    outage: bool = False
    bandwidth_kbps: Optional[float] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any], index: int) -> "TraceSegment":
        if not isinstance(data, dict):
            raise ValueError(f"trace segment {index} must be an object, got {data!r}")
        unknown = set(data) - _SEGMENT_KEYS
        if unknown:
            raise ValueError(
                f"trace segment {index} has unknown key(s) {sorted(unknown)}; "
                f"valid keys: {sorted(_SEGMENT_KEYS)}"
            )
        frames = data.get("frames")
        if not isinstance(frames, int) or isinstance(frames, bool) or frames < 1:
            raise ValueError(
                f"trace segment {index} needs an integer frames >= 1, got {frames!r}"
            )
        bandwidth = data.get("bandwidth_kbps")
        if bandwidth is not None:
            if not isinstance(bandwidth, (int, float)) or bandwidth <= 0:
                raise ValueError(
                    f"trace segment {index}: bandwidth_kbps must be positive, "
                    f"got {bandwidth!r}"
                )
            bandwidth = float(bandwidth)
        outage = bool(data.get("outage", False))
        drop = float(data.get("drop", 0.0))
        corrupt = float(data.get("corrupt", 0.0))
        _check_probability(f"trace segment {index} drop", drop)
        _check_probability(f"trace segment {index} corrupt", corrupt)
        return cls(
            frames=frames,
            drop=drop,
            corrupt=corrupt,
            outage=outage,
            bandwidth_kbps=bandwidth,
        )


class TraceModel(ChannelModel):
    """Replay a time-varying bandwidth / handoff / outage schedule.

    Frame-clocked: each :meth:`decide` consumes one frame of the
    current segment; :attr:`bandwidth_kbps` always reflects the segment
    the *next* frame will see, so timing-aware consumers read a
    consistent time/bandwidth view.
    """

    def __init__(
        self,
        segments: Sequence[TraceSegment],
        *,
        rng: Optional[random.Random] = None,
        repeat: bool = False,
        name: Optional[str] = None,
    ) -> None:
        if not segments:
            raise ValueError("a trace needs at least one segment")
        super().__init__(bandwidth_kbps=segments[0].bandwidth_kbps)
        self.segments: List[TraceSegment] = list(segments)
        self.rng = rng if rng is not None else random.Random(0)
        self.repeat = repeat
        self.name = name
        self._segment_index = 0
        self._frame_in_segment = 0
        # A segment without a bandwidth inherits the last one seen.
        self._last_bandwidth = segments[0].bandwidth_kbps

    # -- loading -----------------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        data: Union[Dict[str, Any], List[Any]],
        *,
        rng: Optional[random.Random] = None,
    ) -> "TraceModel":
        if isinstance(data, list):
            data = {"segments": data}
        if not isinstance(data, dict):
            raise ValueError(f"trace must be an object or a list, got {data!r}")
        unknown = set(data) - _TRACE_KEYS
        if unknown:
            raise ValueError(
                f"trace has unknown key(s) {sorted(unknown)}; "
                f"valid keys: {sorted(_TRACE_KEYS)}"
            )
        raw_segments = data.get("segments")
        if not isinstance(raw_segments, list) or not raw_segments:
            raise ValueError("trace needs a non-empty 'segments' list")
        segments = [
            TraceSegment.from_dict(entry, index)
            for index, entry in enumerate(raw_segments)
        ]
        return cls(
            segments,
            rng=rng,
            repeat=bool(data.get("repeat", False)),
            name=data.get("name"),
        )

    @classmethod
    def from_json(
        cls, path: str, *, rng: Optional[random.Random] = None
    ) -> "TraceModel":
        """Load a trace file; raises ``ValueError`` on malformed content."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError(f"trace file {path!r} is not valid JSON: {exc}") from None
        return cls.from_dict(data, rng=rng)

    # -- schedule ----------------------------------------------------------

    @property
    def segment_index(self) -> int:
        """Index of the segment the next frame will be decided under."""
        return self._segment_index

    @property
    def current_segment(self) -> TraceSegment:
        return self.segments[self._segment_index]

    @property
    def disconnected(self) -> bool:
        return self.current_segment.outage

    def decide(self) -> str:
        segment = self.segments[self._segment_index]
        if segment.bandwidth_kbps is not None:
            self._last_bandwidth = segment.bandwidth_kbps
        self.bandwidth_kbps = self._last_bandwidth
        if segment.outage:
            # First frame of an outage visit severs the link; the rest
            # of the window is swallowed.
            verdict = DISCONNECT if self._frame_in_segment == 0 else DROP
        elif segment.drop > 0.0 and self.rng.random() < segment.drop:
            verdict = DROP
        elif segment.corrupt > 0.0 and self.rng.random() < segment.corrupt:
            verdict = CORRUPT
        else:
            verdict = PASS
        self._advance()
        return self._record(verdict)

    def _advance(self) -> None:
        self._frame_in_segment += 1
        if self._frame_in_segment < self.segments[self._segment_index].frames:
            return
        if self._segment_index + 1 < len(self.segments):
            self._segment_index += 1
            self._frame_in_segment = 0
        elif self.repeat:
            self._segment_index = 0
            self._frame_in_segment = 0
        else:
            # The final segment persists; restart its frame counter so
            # a trailing outage keeps DROPping (not re-DISCONNECTing
            # every ``frames`` frames).
            self._frame_in_segment = 1 if self.segments[-1].outage else 0

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"TraceModel({len(self.segments)} segment(s){label}, "
            f"repeat={self.repeat})"
        )
