"""Server-side prototype components (Figure 1, right half).

``DatabaseGateway`` fronts the document store: it parses and pipelines
XML sources into SCs on ingest and caches them ("the SC is created by
deriving the information content of each organizational unit", §3.3).
``DocumentTransmitterService`` is the servant the browser invokes; it
is now a thin adapter over the
:class:`~repro.prep.service.PreparationService`, which ranks the
requested document's units by the query-appropriate measure, cooks the
packet stream, and caches the result — repeated fetches with the same
parameters reuse the cooked bytes instead of re-running annotation and
encode per request.  The gateway's eagerly-built SC is donated to the
service's SC tier, so ingest still pays the pipeline exactly once.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.pipeline import SCPipeline
from repro.core.structure import StructuralCharacteristic
from repro.prep.prepare import PreparedDocument
from repro.prep.request import PrepRequest
from repro.prep.service import PreparationService
from repro.prototype.messages import FetchManifest, FetchRequest, UnitDescriptor
from repro.xmlkit.parser import parse_xml


class DatabaseGateway:
    """Document store + SC cache."""

    def __init__(self, pipeline: Optional[SCPipeline] = None) -> None:
        self._pipeline = pipeline if pipeline is not None else SCPipeline()
        self._sources: dict = {}
        self._scs: dict = {}

    def put(self, document_id: str, xml_source: str) -> StructuralCharacteristic:
        """Store an XML document and build its SC immediately."""
        document = parse_xml(xml_source)
        sc = self._pipeline.run(document)
        self._sources[document_id] = xml_source
        self._scs[document_id] = sc
        return sc

    def sc(self, document_id: str) -> StructuralCharacteristic:
        sc = self._scs.get(document_id)
        if sc is None:
            raise KeyError(f"unknown document {document_id!r}")
        return sc

    def source(self, document_id: str) -> str:
        source = self._sources.get(document_id)
        if source is None:
            raise KeyError(f"unknown document {document_id!r}")
        return source

    @property
    def pipeline(self) -> SCPipeline:
        return self._pipeline

    def __contains__(self, document_id: str) -> bool:
        return document_id in self._sources

    def __len__(self) -> int:
        return len(self._sources)


class DocumentTransmitterService:
    """The servant behind the ORB name ``"transmitter"``.

    Parameters
    ----------
    gateway:
        The document store; its pipeline (and its already-built SCs)
        are shared with the preparation service.
    packet_size:
        Default packet size for requests that don't name one.
    service:
        The :class:`PreparationService` doing the actual work; built
        over the gateway's pipeline when omitted.
    """

    def __init__(
        self,
        gateway: DatabaseGateway,
        packet_size: int = 256,
        service: Optional[PreparationService] = None,
    ) -> None:
        self._gateway = gateway
        self._packet_size = packet_size
        if service is None:
            service = PreparationService(pipeline=gateway.pipeline)
        self._service = service

    @property
    def service(self) -> PreparationService:
        return self._service

    def fetch(self, request: FetchRequest) -> Tuple[FetchManifest, PreparedDocument]:
        """Prepare one document for transmission per *request*."""
        prep = self.prep_request(request)
        prepared = self._prepare(request.document_id, prep)
        return self._manifest(prepared), prepared

    def prep_request(self, request: FetchRequest) -> PrepRequest:
        """Translate a prototype :class:`FetchRequest` to the prep API."""
        return PrepRequest(
            lod=request.lod_name,
            measure=request.measure,
            query=request.query_text,
            gamma=request.gamma,
            packet_size=(
                request.packet_size
                if request.packet_size is not None
                else self._packet_size
            ),
        )

    def _prepare(self, document_id: str, prep: PrepRequest) -> PreparedDocument:
        """Sync the gateway's document into the service, then cook."""
        source = self._gateway.source(document_id)  # KeyError when unknown
        self._service.add_document(document_id, source)  # digest-idempotent
        # Donate the SC the gateway built at ingest: a fetch never
        # re-runs the pipeline for unchanged content.
        self._service.seed_sc(document_id, self._gateway.sc(document_id))
        return self._service.prepare(document_id, prep)

    @staticmethod
    def _manifest(prepared: PreparedDocument) -> FetchManifest:
        units = []
        offset = 0
        for segment in prepared.segments or ():
            units.append(
                UnitDescriptor(
                    label=segment.label,
                    offset=offset,
                    size=segment.size,
                    content=segment.content,
                )
            )
            offset += segment.size
        return FetchManifest(
            document_id=prepared.document_id,
            measure=prepared.measure,
            total_bytes=offset,
            m=prepared.m,
            n=prepared.n,
            units=units,
        )
