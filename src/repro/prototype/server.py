"""Server-side prototype components (Figure 1, right half).

``DatabaseGateway`` fronts the document store: it parses and pipelines
XML sources into SCs on ingest and caches them ("the SC is created by
deriving the information content of each organizational unit", §3.3).
``DocumentTransmitterService`` is the servant the browser invokes: it
ranks the requested document's units by the query-appropriate measure,
cooks the packet stream, and returns the manifest plus the prepared
document.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.coding.packets import Packetizer
from repro.core.information import annotate_sc
from repro.core.lod import LOD
from repro.core.multires import TransmissionSchedule
from repro.core.pipeline import SCPipeline
from repro.core.query import Query
from repro.core.structure import StructuralCharacteristic
from repro.prototype.messages import FetchManifest, FetchRequest, UnitDescriptor
from repro.text.keywords import KeywordExtractor
from repro.transport.sender import DocumentSender, PreparedDocument
from repro.xmlkit.parser import parse_xml


class DatabaseGateway:
    """Document store + SC cache."""

    def __init__(self, pipeline: Optional[SCPipeline] = None) -> None:
        self._pipeline = pipeline if pipeline is not None else SCPipeline()
        self._sources: Dict[str, str] = {}
        self._scs: Dict[str, StructuralCharacteristic] = {}

    def put(self, document_id: str, xml_source: str) -> StructuralCharacteristic:
        """Store an XML document and build its SC immediately."""
        document = parse_xml(xml_source)
        sc = self._pipeline.run(document)
        self._sources[document_id] = xml_source
        self._scs[document_id] = sc
        return sc

    def sc(self, document_id: str) -> StructuralCharacteristic:
        sc = self._scs.get(document_id)
        if sc is None:
            raise KeyError(f"unknown document {document_id!r}")
        return sc

    def source(self, document_id: str) -> str:
        source = self._sources.get(document_id)
        if source is None:
            raise KeyError(f"unknown document {document_id!r}")
        return source

    @property
    def pipeline(self) -> SCPipeline:
        return self._pipeline

    def __contains__(self, document_id: str) -> bool:
        return document_id in self._sources

    def __len__(self) -> int:
        return len(self._sources)


class DocumentTransmitterService:
    """The servant behind the ORB name ``"transmitter"``."""

    def __init__(self, gateway: DatabaseGateway, packet_size: int = 256) -> None:
        self._gateway = gateway
        self._packet_size = packet_size

    def fetch(self, request: FetchRequest) -> Tuple[FetchManifest, PreparedDocument]:
        """Prepare one document for transmission per *request*."""
        sc = self._gateway.sc(request.document_id)
        lod = LOD[request.lod_name.upper()]

        measure = "ic"
        query: Optional[Query] = None
        if request.query_text.strip():
            extractor = KeywordExtractor(
                lemmatizer=self._gateway.pipeline.shared_lemmatizer
            )
            query = Query(request.query_text, extractor=extractor)
            if not query.is_empty:
                measure = "mqic"
        annotate_sc(sc, query=query)

        schedule = TransmissionSchedule(sc, lod=lod, measure=measure)
        packetizer = Packetizer(
            packet_size=self._packet_size, redundancy_ratio=request.gamma
        )
        sender = DocumentSender(packetizer)
        prepared = sender.prepare(request.document_id, schedule)

        units = []
        offset = 0
        for segment in schedule.segments():
            units.append(
                UnitDescriptor(
                    label=segment.label,
                    offset=offset,
                    size=segment.size,
                    content=segment.content,
                )
            )
            offset += segment.size
        manifest = FetchManifest(
            document_id=request.document_id,
            measure=measure,
            total_bytes=offset,
            m=prepared.m,
            n=prepared.n,
            units=units,
        )
        return manifest, prepared
