"""Typed messages exchanged between prototype components (Figure 1)."""

from __future__ import annotations

from typing import List, NamedTuple, Optional


class FetchRequest(NamedTuple):
    """Browser → server: fetch one document for browsing."""

    document_id: str
    query_text: str = ""           # drives QIC ordering when non-empty
    lod_name: str = "paragraph"    # document|section|subsection|subsubsection|paragraph
    gamma: float = 1.5             # redundancy ratio for this transfer
    packet_size: Optional[int] = None  # None: the transmitter's default
    measure: str = "auto"          # content measure ("auto" resolves per query)


class UnitDescriptor(NamedTuple):
    """Manifest entry: one scheduled organizational unit."""

    label: str        # hierarchical label, e.g. "3.2.1"
    offset: int       # byte offset within the transmission stream
    size: int         # byte length of the unit's subtree payload
    content: float    # content-measure share of this unit


class FetchManifest(NamedTuple):
    """Server → browser: what the packet stream will contain."""

    document_id: str
    measure: str                    # which content measure ranked the units
    total_bytes: int
    m: int                          # raw packets
    n: int                          # cooked packets
    units: List[UnitDescriptor]     # in transmission order


class RenderEvent(NamedTuple):
    """Rendering manager output: one unit became displayable."""

    time: float
    label: str
    text: str
    position: int      # index of the unit's proper position in the document


class BrowseResult(NamedTuple):
    """Browser → caller: the outcome of browsing one document."""

    document_id: str
    success: bool
    terminated_early: bool
    response_time: float
    rounds: int
    rendered: List[RenderEvent]
    document_text: Optional[str]
