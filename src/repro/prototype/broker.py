"""A minimal object request broker.

The paper's Java prototype is "based on the CORBA infrastructure"
(Figure 1): browser-side managers invoke the server-side document
transmitter through an ORB, and "client and server side interceptors"
host alternative mechanisms such as compression or ARQ [8].  This
in-process broker reproduces exactly that component topology: named
servants, method invocation by name, and an interceptor chain applied
to invocation payloads.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Protocol

from repro.obs.orb import payload_size as _payload_size


class BrokerError(Exception):
    """Unknown servant or method."""


class Interceptor(Protocol):
    """An interceptor transforms payloads crossing the broker.

    ``outbound`` runs on values flowing client → servant;
    ``inbound`` on values flowing servant → client.  Interceptors
    compose in registration order outbound and reverse order inbound.

    An interceptor may additionally define an ``observe_invocation``
    method (see :class:`repro.obs.orb.TracingInterceptor`); the broker
    then reports each invocation's servant, method, request payload
    size, wall time, and error — after the inbound pass on success, or
    just before the exception propagates on failure.  Observation is
    passive: it cannot alter payloads or suppress exceptions.
    """

    def outbound(self, payload: Any) -> Any: ...

    def inbound(self, payload: Any) -> Any: ...


class PassthroughInterceptor:
    """The identity interceptor (useful as a base class)."""

    def outbound(self, payload: Any) -> Any:
        return payload

    def inbound(self, payload: Any) -> Any:
        return payload


class ObjectRequestBroker:
    """Name → servant registry with interceptor support."""

    def __init__(self) -> None:
        self._servants: Dict[str, object] = {}
        self._interceptors: List[Interceptor] = []
        self._observers: List[Any] = []
        self.invocations = 0

    def register(self, name: str, servant: object) -> None:
        """Bind *servant* under *name*; rebinding replaces silently."""
        self._servants[name] = servant

    def unregister(self, name: str) -> None:
        self._servants.pop(name, None)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.append(interceptor)
        if callable(getattr(interceptor, "observe_invocation", None)):
            self._observers.append(interceptor)

    def resolve(self, name: str) -> object:
        servant = self._servants.get(name)
        if servant is None:
            raise BrokerError(f"no servant registered under {name!r}")
        return servant

    def invoke(self, name: str, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``servant.method(*args, **kwargs)`` through the chain.

        Positional arguments pass outbound through the interceptors;
        the return value passes inbound through them in reverse.
        Observer interceptors are notified once per invocation with the
        post-outbound payload size and the wall time spanning the
        servant call plus the inbound pass.
        """
        servant = self.resolve(name)
        target: Callable = getattr(servant, method, None)  # type: ignore[assignment]
        if target is None or not callable(target):
            raise BrokerError(f"servant {name!r} has no method {method!r}")
        processed_args = list(args)
        for interceptor in self._interceptors:
            processed_args = [interceptor.outbound(a) for a in processed_args]
        self.invocations += 1

        if not self._observers:
            result = target(*processed_args, **kwargs)
            for interceptor in reversed(self._interceptors):
                result = interceptor.inbound(result)
            return result

        request_bytes = sum(_payload_size(arg) for arg in processed_args)
        start = time.perf_counter()
        try:
            result = target(*processed_args, **kwargs)
            for interceptor in reversed(self._interceptors):
                result = interceptor.inbound(result)
        except Exception as exc:
            elapsed = time.perf_counter() - start
            for observer in self._observers:
                observer.observe_invocation(name, method, request_bytes, elapsed, exc)
            raise
        elapsed = time.perf_counter() - start
        for observer in self._observers:
            observer.observe_invocation(name, method, request_bytes, elapsed, None)
        return result

    def __contains__(self, name: str) -> bool:
        return name in self._servants
