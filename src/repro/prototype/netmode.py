"""Network mode for the prototype broker (Figure 1 over real sockets).

The in-process :class:`~repro.prototype.broker.ObjectRequestBroker`
already hosts the server half of the paper's prototype — the
``transmitter`` servant that ranks, schedules, and cooks a document
per request.  This module delegates its delivery to the asyncio
network layer: :class:`BrokerDocumentStore` adapts the servant to the
:class:`~repro.net.server.NetServer` store contract (every broker
invocation flows through the registered interceptor chain, so tracing
and compression interceptors see networked fetches too), and
:func:`serve_broker` wraps it in a running server.

Used by ``repro net serve --via-broker`` and directly::

    broker = build_prototype(...)          # gateway + transmitter + ORB
    server = await serve_broker(broker, port=0)
    ... clients fetch over TCP ...
    await server.stop()
"""

from __future__ import annotations

from typing import Optional

from repro.net.server import NetServer
from repro.prototype.broker import BrokerError, ObjectRequestBroker
from repro.prototype.messages import FetchRequest
from repro.transport.sender import PreparedDocument


class BrokerDocumentStore:
    """Adapts the ORB's ``transmitter`` servant to the net-store contract.

    Each ``get`` is one broker invocation of ``transmitter.fetch`` —
    the document is prepared per request with the configured LOD,
    query, and redundancy, exactly like an in-process browse.
    """

    def __init__(
        self,
        broker: ObjectRequestBroker,
        *,
        query_text: str = "",
        lod_name: str = "paragraph",
        gamma: float = 1.5,
    ) -> None:
        self.broker = broker
        self.query_text = query_text
        self.lod_name = lod_name
        self.gamma = gamma

    def get(self, document_id: str) -> Optional[PreparedDocument]:
        request = FetchRequest(
            document_id=document_id,
            query_text=self.query_text,
            lod_name=self.lod_name,
            gamma=self.gamma,
        )
        try:
            _manifest, prepared = self.broker.invoke("transmitter", "fetch", request)
        except (BrokerError, KeyError):
            return None
        return prepared


async def serve_broker(
    broker: ObjectRequestBroker,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    query_text: str = "",
    lod_name: str = "paragraph",
    gamma: float = 1.5,
    **server_options,
) -> NetServer:
    """Start a :class:`NetServer` fronting *broker*'s transmitter.

    Returns the started server (read ``.port`` for the bound port);
    the caller owns shutdown via ``await server.stop()``.  Extra
    keyword arguments pass through to :class:`NetServer`.
    """
    store = BrokerDocumentStore(
        broker, query_text=query_text, lod_name=lod_name, gamma=gamma
    )
    server = NetServer(store, host, port, **server_options)
    await server.start()
    return server
