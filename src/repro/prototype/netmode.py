"""Network mode for the prototype broker (Figure 1 over real sockets).

The in-process :class:`~repro.prototype.broker.ObjectRequestBroker`
already hosts the server half of the paper's prototype — the
``transmitter`` servant that ranks, schedules, and cooks a document
per request.  This module delegates its delivery to the asyncio
network layer: :class:`BrokerDocumentStore` adapts the servant to the
:class:`~repro.net.server.NetServer` store contract (every broker
invocation flows through the registered interceptor chain, so tracing
and compression interceptors see networked fetches too), and
:func:`serve_broker` wraps it in a running server.

Used by ``repro net serve --via-broker`` and directly::

    broker = build_prototype(...)          # gateway + transmitter + ORB
    server = await serve_broker(broker, port=0)
    ... clients fetch over TCP ...
    await server.stop()
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.server import NetServer
from repro.prep.request import PrepRequest, legacy_value, request_from_legacy
from repro.prototype.broker import BrokerError, ObjectRequestBroker
from repro.prototype.messages import FetchRequest
from repro.transport.sender import PreparedDocument


class BrokerDocumentStore:
    """Adapts the ORB's ``transmitter`` servant to the net-store contract.

    Each ``get``/``prepare`` is one broker invocation of
    ``transmitter.fetch`` — the document is prepared per request with
    the connection's LOD, query, and redundancy (falling back to the
    store's default :class:`PrepRequest`), exactly like an in-process
    browse.  The transmitter's preparation service caches the cooked
    result, so repeated identical requests share one build.
    """

    def __init__(
        self,
        broker: ObjectRequestBroker,
        *,
        request: Optional[PrepRequest] = None,
        query_text: Any = "",
        lod_name: Any = "paragraph",
        gamma: Any = 1.5,
    ) -> None:
        self.broker = broker
        self.request = request_from_legacy(
            request,
            "BrokerDocumentStore",
            query=legacy_value(query_text, ""),
            lod=legacy_value(lod_name, "paragraph"),
            gamma=legacy_value(gamma, 1.5),
        )

    def prepare(
        self, document_id: str, request: Optional[PrepRequest] = None
    ) -> Optional[PreparedDocument]:
        """Net-store ``prepare``: cook per the connection's parameters."""
        if request is None:
            request = self.request
        fetch = FetchRequest(
            document_id=document_id,
            query_text=request.query,
            lod_name=request.lod,
            gamma=request.gamma,
            packet_size=request.packet_size,
            measure=request.measure,
        )
        try:
            _manifest, prepared = self.broker.invoke("transmitter", "fetch", fetch)
        except (BrokerError, KeyError):
            return None
        return prepared

    def get(self, document_id: str) -> Optional[PreparedDocument]:
        return self.prepare(document_id, None)


async def serve_broker(
    broker: ObjectRequestBroker,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    request: Optional[PrepRequest] = None,
    query_text: Any = "",
    lod_name: Any = "paragraph",
    gamma: Any = 1.5,
    **server_options,
) -> NetServer:
    """Start a :class:`NetServer` fronting *broker*'s transmitter.

    *request* sets the default preparation parameters for connections
    that send no ``prep`` field (the ``query_text``/``lod_name``/
    ``gamma`` keywords are deprecated shims over it).  Returns the
    started server (read ``.port`` for the bound port); the caller
    owns shutdown via ``await server.stop()``.  Extra keyword
    arguments pass through to :class:`NetServer`.
    """
    store = BrokerDocumentStore(
        broker,
        request=request,
        query_text=query_text,
        lod_name=lod_name,
        gamma=gamma,
    )
    server = NetServer(store, host, port, **server_options)
    await server.start()
    return server
