"""Client-side prototype components (Figure 1, left half).

``SequenceManager`` drives the packet stream for one fetch: it is the
broker-side *driver* of the sans-IO
:class:`repro.protocol.TransferEngine` — deliveries become typed
input events, and the engine's effects are mapped onto the I/O the
prototype owns (``RenderPrefix`` → ``RenderingManager``, round
bookkeeping → the packet cache).  ``RenderingManager`` "renders each
organizational unit incrementally at the proper position in the
browsing window when the unit is received" (§3.3).  ``MobileBrowser``
wires both to the broker.
"""

from __future__ import annotations

import re
from typing import Any, List, Optional, Tuple

from repro.prep.request import (
    PrepRequest,
    TransferSettings,
    legacy_value,
    request_from_legacy,
    settings_from_legacy,
)
from repro.protocol import (
    DEFAULT_MAX_ROUNDS,
    DEFAULT_ROUND_TIMEOUT,
    Decoded,
    EarlyStop,
    FrameCorrupt,
    FrameDelivered,
    FrameLost,
    RenderPrefix,
    RoundEnded,
    SendRound,
    TERMINAL_EFFECTS,
    TelemetryBridge,
    TransferEngine,
)
from repro.prototype.broker import ObjectRequestBroker
from repro.prototype.messages import (
    BrowseResult,
    FetchManifest,
    FetchRequest,
    RenderEvent,
)
from repro.transport.cache import NullCache, PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import PreparedDocument

#: ``structure.py`` marks a section's heading unit by suffixing its
#: label with ``(title)``; only that trailing marker is stripped.
_TITLE_SUFFIX = re.compile(r"\s*\(title\)\s*$")


def _label_sort_key(label: str) -> Tuple:
    """Document-order key for hierarchical labels like ``3.2.1``.

    The key is *total* over mixed alpha/numeric labels: each
    dot-separated piece maps to ``(kind, number, text)`` where
    non-numeric pieces (kind 0, compared as text) order before numeric
    ones (kind 1, compared as integers — so ``2.10`` follows ``2.2``).
    """
    parts = []
    for piece in _TITLE_SUFFIX.sub("", label).split("."):
        piece = piece.strip()
        if piece.isdigit():
            parts.append((1, int(piece), ""))
        else:
            parts.append((0, 0, piece))
    return tuple(parts)


class RenderingManager:
    """Incremental renderer: shows units as their bytes become usable."""

    def __init__(self, manifest: FetchManifest) -> None:
        self._manifest = manifest
        ordered = sorted(manifest.units, key=lambda unit: _label_sort_key(unit.label))
        self._positions = {unit.label: index for index, unit in enumerate(ordered)}
        self._rendered_labels: set = set()
        self.events: List[RenderEvent] = []

    def on_bytes(self, stream: bytes, time: float) -> List[RenderEvent]:
        """Render every not-yet-shown unit fully covered by *stream*.

        *stream* is the contiguous prefix of the transmission stream
        that the receiver can decode so far (clear-text prefix, or the
        whole document after reconstruction).
        """
        fresh: List[RenderEvent] = []
        available = len(stream)
        for unit in self._manifest.units:
            if unit.label in self._rendered_labels:
                continue
            end = unit.offset + unit.size
            if end <= available:
                text = stream[unit.offset : end].decode("utf-8", errors="replace")
                event = RenderEvent(
                    time=time,
                    label=unit.label,
                    text=text,
                    position=self._positions[unit.label],
                )
                self._rendered_labels.add(unit.label)
                self.events.append(event)
                fresh.append(event)
        return fresh

    @property
    def rendered_count(self) -> int:
        return len(self._rendered_labels)

    def rendered_content(self) -> float:
        """Content-measure mass of everything rendered so far."""
        return sum(
            unit.content
            for unit in self._manifest.units
            if unit.label in self._rendered_labels
        )


class SequenceManager:
    """Broker-side driver of the §4.2 engine with incremental rendering.

    Protocol knobs come from ``settings``
    (:class:`repro.prep.TransferSettings`); the individual
    ``max_rounds`` / ``round_timeout`` keywords are deprecated shims
    over it.
    """

    def __init__(
        self,
        channel: WirelessChannel,
        cache: Optional[PacketCache] = None,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        round_timeout: float = DEFAULT_ROUND_TIMEOUT,
        *,
        settings: Optional[TransferSettings] = None,
    ) -> None:
        settings = settings_from_legacy(
            settings,
            "SequenceManager",
            max_rounds=legacy_value(max_rounds, DEFAULT_MAX_ROUNDS),
            round_timeout=legacy_value(round_timeout, DEFAULT_ROUND_TIMEOUT),
        )
        self.channel = channel
        if cache is None:
            cache = PacketCache() if settings.use_cache else NullCache()
        self.cache = cache
        self.settings = settings
        self.max_rounds = settings.max_rounds
        #: Channel-time bound per round (shared
        #: :data:`repro.protocol.DEFAULT_ROUND_TIMEOUT`): a stalled
        #: round at least this long aborts the fetch.
        self.round_timeout = settings.round_timeout

    def run(
        self,
        manifest: FetchManifest,
        prepared: PreparedDocument,
        renderer: RenderingManager,
        relevance_threshold: Optional[float] = None,
    ) -> BrowseResult:
        if relevance_threshold is None:
            relevance_threshold = self.settings.relevance_threshold
        start = self.channel.clock
        receiver = TransferReceiver(prepared)
        frames = prepared.frames()
        frames_sent = 0

        bridge = TelemetryBridge("transfer")
        engine = TransferEngine(
            prepared.m,
            prepared.n,
            content_profile=prepared.content_profile,
            relevance_threshold=relevance_threshold,
            max_rounds=self.max_rounds,
            document_id=prepared.document_id,
            bridge=bridge,
            track_prefix=True,
        )
        engine.open()  # cache telemetry below lands inside the scope
        receiver.preload(self.cache.load(prepared.document_id))
        engine.preload(receiver.intact)

        terminal = None
        streaming = False

        def execute(effects) -> None:
            # `receiver` is rebound on a NoCaching stall; the closure
            # reads the shared cell, so it always sees the live one.
            nonlocal terminal, streaming
            for effect in effects:
                if isinstance(effect, RenderPrefix):
                    renderer.on_bytes(receiver.clear_prefix(), self.channel.clock)
                elif isinstance(effect, SendRound):
                    streaming = True
                elif isinstance(effect, TERMINAL_EFFECTS):
                    terminal = effect
                # Stalled is informational; the cache bookkeeping that
                # accompanies it happens at the round boundary below.

        execute(engine.begin())
        round_started = self.channel.clock
        while terminal is None and streaming:
            streaming = False
            for wire in frames:
                delivery = self.channel.send(wire)
                frames_sent += 1
                sequence = receiver.offer(delivery)
                if sequence is not None:
                    execute(engine.handle(FrameDelivered(sequence)))
                elif delivery.lost:
                    execute(engine.handle(FrameLost()))
                else:
                    execute(engine.handle(FrameCorrupt()))
                if terminal is not None:
                    break
            else:
                receiver.reconcile(len(frames))
                self._store(prepared, receiver)
                if self.channel.clock - round_started >= self.round_timeout:
                    terminal = engine.abort()
                    break
                carried = not isinstance(self.cache, NullCache) and bool(
                    self.cache.load(prepared.document_id)
                )
                if not carried:
                    receiver = TransferReceiver(prepared)
                execute(engine.handle(RoundEnded(carried=carried)))
                round_started = self.channel.clock

        document_text: Optional[str] = None
        if isinstance(terminal, Decoded):
            payload = receiver.reconstruct()
            renderer.on_bytes(payload, self.channel.clock)
            self.cache.discard(prepared.document_id)
            document_text = payload.decode("utf-8", errors="replace")
            success, early = True, False
            content = receiver.content_received
        elif isinstance(terminal, EarlyStop):
            # The user hits "stop": enough content to judge.
            if terminal.round > 0:
                self._store(prepared, receiver)
            success, early = True, True
            content = terminal.content
        else:  # Failed
            success, early = False, False
            content = engine.content_received

        result = BrowseResult(
            document_id=manifest.document_id,
            success=success,
            terminated_early=early,
            response_time=self.channel.clock - start,
            rounds=terminal.round,
            rendered=list(renderer.events),
            document_text=document_text,
        )
        bridge.complete(
            success=success,
            terminated_early=early,
            rounds=terminal.round,
            frames=frames_sent,
            content=content,
            response_time=result.response_time,
        )
        return result

    def _store(self, prepared: PreparedDocument, receiver: TransferReceiver) -> None:
        for sequence, payload in receiver.intact.items():
            self.cache.store(prepared.document_id, sequence, payload)


class MobileBrowser:
    """The end-to-end client: resolve, fetch, render."""

    def __init__(
        self,
        broker: ObjectRequestBroker,
        channel: WirelessChannel,
        cache: Optional[PacketCache] = None,
        *,
        settings: Optional[TransferSettings] = None,
    ) -> None:
        self.broker = broker
        self.sequence_manager = SequenceManager(channel, cache=cache, settings=settings)

    def search(self, query_text: str, limit: int = 10):
        """Query the server-side search service (ORB name "search")."""
        return self.broker.invoke("search", "search", query_text, limit=limit)

    def browse(
        self,
        document_id: str,
        query_text: Any = "",
        lod_name: Any = "paragraph",
        gamma: Any = 1.5,
        relevance_threshold: Optional[float] = None,
        *,
        request: Optional[PrepRequest] = None,
    ) -> BrowseResult:
        """Fetch and incrementally render one document.

        *request* carries the preparation parameters
        (:class:`repro.prep.PrepRequest`); the individual
        ``query_text`` / ``lod_name`` / ``gamma`` positional keywords
        are deprecated shims over it.
        """
        prep = request_from_legacy(
            request,
            "MobileBrowser.browse",
            query=legacy_value(query_text, ""),
            lod=legacy_value(lod_name, "paragraph"),
            gamma=legacy_value(gamma, 1.5),
        )
        fetch = FetchRequest(
            document_id=document_id,
            query_text=prep.query,
            lod_name=prep.lod,
            gamma=prep.gamma,
            packet_size=None if request is None else prep.packet_size,
            measure=prep.measure,
        )
        manifest, prepared = self.broker.invoke("transmitter", "fetch", fetch)
        renderer = RenderingManager(manifest)
        return self.sequence_manager.run(
            manifest, prepared, renderer, relevance_threshold=relevance_threshold
        )
