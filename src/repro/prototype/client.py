"""Client-side prototype components (Figure 1, left half).

``SequenceManager`` drives the packet stream for one fetch: it feeds
deliveries to the transfer receiver, triggers rendering as clear-text
bytes become available, and applies the stall/retransmission policy.
``RenderingManager`` "renders each organizational unit incrementally
at the proper position in the browsing window when the unit is
received" (§3.3).  ``MobileBrowser`` wires both to the broker.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.prototype.broker import ObjectRequestBroker
from repro.prototype.messages import (
    BrowseResult,
    FetchManifest,
    FetchRequest,
    RenderEvent,
)
from repro.transport.cache import NullCache, PacketCache
from repro.transport.channel import WirelessChannel
from repro.transport.receiver import TransferReceiver
from repro.transport.sender import PreparedDocument


def _label_sort_key(label: str) -> Tuple:
    """Document-order key for hierarchical labels like ``3.2.1``."""
    parts = []
    for piece in label.replace("(title)", "").split("."):
        piece = piece.strip()
        parts.append(int(piece) if piece.isdigit() else -1)
    return tuple(parts)


class RenderingManager:
    """Incremental renderer: shows units as their bytes become usable."""

    def __init__(self, manifest: FetchManifest) -> None:
        self._manifest = manifest
        ordered = sorted(manifest.units, key=lambda unit: _label_sort_key(unit.label))
        self._positions = {unit.label: index for index, unit in enumerate(ordered)}
        self._rendered_labels: set = set()
        self.events: List[RenderEvent] = []

    def on_bytes(self, stream: bytes, time: float) -> List[RenderEvent]:
        """Render every not-yet-shown unit fully covered by *stream*.

        *stream* is the contiguous prefix of the transmission stream
        that the receiver can decode so far (clear-text prefix, or the
        whole document after reconstruction).
        """
        fresh: List[RenderEvent] = []
        available = len(stream)
        for unit in self._manifest.units:
            if unit.label in self._rendered_labels:
                continue
            end = unit.offset + unit.size
            if end <= available:
                text = stream[unit.offset : end].decode("utf-8", errors="replace")
                event = RenderEvent(
                    time=time,
                    label=unit.label,
                    text=text,
                    position=self._positions[unit.label],
                )
                self._rendered_labels.add(unit.label)
                self.events.append(event)
                fresh.append(event)
        return fresh

    @property
    def rendered_count(self) -> int:
        return len(self._rendered_labels)

    def rendered_content(self) -> float:
        """Content-measure mass of everything rendered so far."""
        return sum(
            unit.content
            for unit in self._manifest.units
            if unit.label in self._rendered_labels
        )


class SequenceManager:
    """Round-driving receiver loop with incremental rendering."""

    def __init__(
        self,
        channel: WirelessChannel,
        cache: Optional[PacketCache] = None,
        max_rounds: int = 50,
    ) -> None:
        self.channel = channel
        self.cache = cache if cache is not None else NullCache()
        self.max_rounds = max_rounds

    def run(
        self,
        manifest: FetchManifest,
        prepared: PreparedDocument,
        renderer: RenderingManager,
        relevance_threshold: Optional[float] = None,
    ) -> BrowseResult:
        start = self.channel.clock
        receiver = TransferReceiver(prepared)
        receiver.preload(self.cache.load(prepared.document_id))
        frames = prepared.frames()
        document_text: Optional[str] = None

        for round_index in range(1, self.max_rounds + 1):
            for wire in frames:
                delivery = self.channel.send(wire)
                receiver.offer(delivery)
                renderer.on_bytes(receiver.clear_prefix(), self.channel.clock)

                if receiver.can_reconstruct():
                    payload = receiver.reconstruct()
                    renderer.on_bytes(payload, self.channel.clock)
                    self.cache.discard(prepared.document_id)
                    document_text = payload.decode("utf-8", errors="replace")
                    return BrowseResult(
                        document_id=manifest.document_id,
                        success=True,
                        terminated_early=False,
                        response_time=self.channel.clock - start,
                        rounds=round_index,
                        rendered=list(renderer.events),
                        document_text=document_text,
                    )
                if (
                    relevance_threshold is not None
                    and receiver.content_received >= relevance_threshold
                ):
                    # The user hits "stop": enough content to judge.
                    self._store(prepared, receiver)
                    return BrowseResult(
                        document_id=manifest.document_id,
                        success=True,
                        terminated_early=True,
                        response_time=self.channel.clock - start,
                        rounds=round_index,
                        rendered=list(renderer.events),
                        document_text=None,
                    )
            self._store(prepared, receiver)
            if isinstance(self.cache, NullCache):
                receiver = TransferReceiver(prepared)

        return BrowseResult(
            document_id=manifest.document_id,
            success=False,
            terminated_early=False,
            response_time=self.channel.clock - start,
            rounds=self.max_rounds,
            rendered=list(renderer.events),
            document_text=None,
        )

    def _store(self, prepared: PreparedDocument, receiver: TransferReceiver) -> None:
        for sequence, payload in receiver.intact.items():
            self.cache.store(prepared.document_id, sequence, payload)


class MobileBrowser:
    """The end-to-end client: resolve, fetch, render."""

    def __init__(
        self,
        broker: ObjectRequestBroker,
        channel: WirelessChannel,
        cache: Optional[PacketCache] = None,
    ) -> None:
        self.broker = broker
        self.sequence_manager = SequenceManager(channel, cache=cache)

    def search(self, query_text: str, limit: int = 10):
        """Query the server-side search service (ORB name "search")."""
        return self.broker.invoke("search", "search", query_text, limit=limit)

    def browse(
        self,
        document_id: str,
        query_text: str = "",
        lod_name: str = "paragraph",
        gamma: float = 1.5,
        relevance_threshold: Optional[float] = None,
    ) -> BrowseResult:
        """Fetch and incrementally render one document."""
        request = FetchRequest(
            document_id=document_id,
            query_text=query_text,
            lod_name=lod_name,
            gamma=gamma,
        )
        manifest, prepared = self.broker.invoke("transmitter", "fetch", request)
        renderer = RenderingManager(manifest)
        return self.sequence_manager.run(
            manifest, prepared, renderer, relevance_threshold=relevance_threshold
        )
