"""The Figure 1 prototype: an ORB-connected browser/server pair that
demonstrates incremental multi-resolution rendering over the lossy
wireless channel.
"""

from repro.prototype.broker import (
    BrokerError,
    Interceptor,
    ObjectRequestBroker,
    PassthroughInterceptor,
)
from repro.prototype.messages import (
    BrowseResult,
    FetchManifest,
    FetchRequest,
    RenderEvent,
    UnitDescriptor,
)
from repro.prototype.server import DatabaseGateway, DocumentTransmitterService
from repro.prototype.searchsvc import SearchResult, SearchService
from repro.prototype.client import MobileBrowser, RenderingManager, SequenceManager

__all__ = [
    "ObjectRequestBroker",
    "BrokerError",
    "Interceptor",
    "PassthroughInterceptor",
    "FetchRequest",
    "FetchManifest",
    "UnitDescriptor",
    "RenderEvent",
    "BrowseResult",
    "DatabaseGateway",
    "DocumentTransmitterService",
    "SearchService",
    "SearchResult",
    "MobileBrowser",
    "RenderingManager",
    "SequenceManager",
]
