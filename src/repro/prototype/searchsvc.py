"""Search servant for the prototype (the "WWW server" side of Fig. 1).

The paper's browsing model starts at a search engine; this servant
puts one behind the ORB so the mobile browser's first interaction —
query in, ranked hits with snippets out — happens through the same
broker as document fetching.  Hit payloads are deliberately small
(id, score, snippet, size): the result list itself must be cheap to
ship over the weak link.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.prototype.server import DatabaseGateway
from repro.search.engine import SearchEngine
from repro.search.snippets import make_snippet
from repro.xmlkit.parser import parse_xml


class SearchResult(NamedTuple):
    """One entry of the result list shipped to the client."""

    document_id: str
    score: float
    snippet: str
    size_bytes: int


class SearchService:
    """The servant behind the ORB name ``"search"``.

    Shares the gateway's pipeline so query lemmas conflate with the
    corpus, and keeps its engine index in sync with the gateway via
    :meth:`index` (call it after ``gateway.put``).
    """

    def __init__(self, gateway: DatabaseGateway) -> None:
        self._gateway = gateway
        self._engine = SearchEngine(pipeline=gateway.pipeline)

    def index(self, document_id: str) -> None:
        """(Re)index one document already stored in the gateway."""
        self._engine.add_sc(document_id, self._gateway.sc(document_id))

    def index_all(self, document_ids) -> None:
        for document_id in document_ids:
            self.index(document_id)

    @property
    def corpus_size(self) -> int:
        return self._engine.size

    def search(
        self, query_text: str, limit: int = 10, snippet_width: int = 140
    ) -> List[SearchResult]:
        """Ranked results with query-biased snippets."""
        query = self._engine.parse_query(query_text)
        hits = self._engine.search(query_text, limit=limit)
        results: List[SearchResult] = []
        for hit in hits:
            snippet = make_snippet(
                hit.sc,
                query=None if query.is_empty else query,
                width=snippet_width,
            )
            results.append(
                SearchResult(
                    document_id=hit.document_id,
                    score=hit.score,
                    snippet=snippet,
                    size_bytes=hit.sc.size_bytes(),
                )
            )
        return results

    def search_boolean(
        self, query_text: str, limit: int = 10, snippet_width: int = 140
    ) -> List[SearchResult]:
        """Boolean-filtered variant (AND/OR/NOT/phrases)."""
        hits = self._engine.search_boolean(query_text, limit=limit)
        results: List[SearchResult] = []
        for hit in hits:
            results.append(
                SearchResult(
                    document_id=hit.document_id,
                    score=hit.score,
                    snippet=make_snippet(hit.sc, width=snippet_width),
                    size_bytes=hit.sc.size_bytes(),
                )
            )
        return results
