"""Push-style (SAX-like) streaming XML parsing.

The tree parser materializes whole documents; a streaming interface
lets consumers process arbitrarily large XML with O(depth) memory —
the shape a server-side document store wants for bulk ingest.  The
event layer reuses the tokenizer, adds the same well-formedness
enforcement as the tree builder, and drives a user-supplied handler:

    class Collector(ContentHandler):
        def start_element(self, tag, attributes): ...
        def end_element(self, tag): ...
        def characters(self, data): ...

``iter_events`` offers the pull-style equivalent (a generator of
``(kind, value)`` tuples), and ``TreeBuilderHandler`` rebuilds a DOM
from events — used by tests to prove event/tree equivalence.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.xmlkit.dom import Comment, Document, Element, Text
from repro.xmlkit.errors import XmlSyntaxError
from repro.xmlkit.tokenizer import XmlTokenizer


class ContentHandler:
    """Base handler with no-op callbacks; override what you need."""

    def start_document(self) -> None:
        """Called once before any other event."""

    def end_document(self) -> None:
        """Called once after the root element closes."""

    def start_element(self, tag: str, attributes: Dict[str, str]) -> None:
        """An opening tag (also fired for self-closing elements)."""

    def end_element(self, tag: str) -> None:
        """A closing tag (also fired for self-closing elements)."""

    def characters(self, data: str) -> None:
        """Character data inside the root element."""

    def comment(self, data: str) -> None:
        """A comment anywhere in the document."""


def parse_streaming(source: str, handler: ContentHandler) -> None:
    """Drive *handler* with the events of *source*.

    Enforces the same well-formedness rules as
    :func:`repro.xmlkit.parser.parse_xml`: single root, proper
    nesting, no stray character data outside the root.
    """
    handler.start_document()
    stack: List[str] = []
    seen_root = False

    for token in XmlTokenizer(source).tokens():
        if token.kind in ("pi", "doctype"):
            continue
        if token.kind == "comment":
            handler.comment(token.value)
            continue
        if token.kind == "text":
            if stack:
                if token.value:
                    handler.characters(token.value)
            elif token.value.strip():
                raise XmlSyntaxError(
                    "character data outside the root element",
                    token.line,
                    token.column,
                )
            continue
        if token.kind == "start":
            if not stack and seen_root:
                raise XmlSyntaxError(
                    f"second root element <{token.value}>", token.line, token.column
                )
            seen_root = True
            handler.start_element(token.value, dict(token.attrs or {}))
            if token.self_closing:
                handler.end_element(token.value)
            else:
                stack.append(token.value)
            continue
        if token.kind == "end":
            if not stack:
                raise XmlSyntaxError(
                    f"unexpected end tag </{token.value}>", token.line, token.column
                )
            open_tag = stack.pop()
            if open_tag != token.value:
                raise XmlSyntaxError(
                    f"end tag </{token.value}> does not match open <{open_tag}>",
                    token.line,
                    token.column,
                )
            handler.end_element(token.value)

    if stack:
        raise XmlSyntaxError(f"unclosed element <{stack[-1]}>", 0, 0)
    if not seen_root:
        raise XmlSyntaxError("document has no root element", 0, 0)
    handler.end_document()


Event = Tuple[str, object]


def iter_events(source: str) -> Iterator[Event]:
    """Pull-style events: yields ('start', (tag, attrs)), ('end', tag),
    ('text', data), ('comment', data) in document order.

    Well-formedness violations raise when the offending token is
    reached; events before it are yielded normally (buffered in
    chunks of one — the whole stream is validated by completion).
    """

    class _Collector(ContentHandler):
        def __init__(self) -> None:
            self.events: List[Event] = []

        def start_element(self, tag, attributes):
            self.events.append(("start", (tag, attributes)))

        def end_element(self, tag):
            self.events.append(("end", tag))

        def characters(self, data):
            self.events.append(("text", data))

        def comment(self, data):
            self.events.append(("comment", data))

    collector = _Collector()
    parse_streaming(source, collector)
    yield from collector.events


class TreeBuilderHandler(ContentHandler):
    """Rebuilds a :class:`Document` from streaming events."""

    def __init__(self) -> None:
        self.document: Optional[Document] = None
        self._stack: List[Element] = []
        self._root: Optional[Element] = None
        self._prolog: List[Comment] = []

    def start_element(self, tag: str, attributes: Dict[str, str]) -> None:
        element = Element(tag, attributes)
        if self._stack:
            self._stack[-1].append(element)
        else:
            self._root = element
        self._stack.append(element)

    def end_element(self, tag: str) -> None:
        self._stack.pop()

    def characters(self, data: str) -> None:
        if self._stack:
            self._stack[-1].append(Text(data))

    def comment(self, data: str) -> None:
        if self._stack:
            self._stack[-1].append(Comment(data))
        else:
            self._prolog.append(Comment(data))

    def end_document(self) -> None:
        assert self._root is not None
        self.document = Document(self._root, prolog=self._prolog)
