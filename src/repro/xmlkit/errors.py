"""Exception hierarchy for the XML toolkit."""

from __future__ import annotations


class XmlError(Exception):
    """Base class for all XML toolkit errors."""


class XmlSyntaxError(XmlError):
    """Raised when the input is not well-formed XML.

    Carries the 1-based line and column of the offending character so
    callers can point users at the problem.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class XmlValidationError(XmlError):
    """Raised when a well-formed document violates its DTD."""
