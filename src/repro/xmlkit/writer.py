"""Serialization of DOM trees back to XML text."""

from __future__ import annotations

from typing import List

from repro.xmlkit.dom import Comment, Document, Element, Node, Text

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def escape_text(data: str) -> str:
    """Escape character data for element content."""
    for char, entity in _TEXT_ESCAPES.items():
        data = data.replace(char, entity)
    return data


def escape_attribute(data: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for char, entity in _ATTR_ESCAPES.items():
        data = data.replace(char, entity)
    return data


def serialize(node: "Node | Document", indent: int = 0) -> str:
    """Serialize a node or document to XML text.

    With ``indent > 0`` the output is pretty-printed; elements whose
    children are exclusively elements/comments get each child on its
    own line.  Mixed content (any text child) is emitted inline so
    whitespace-sensitive content round-trips.
    """
    if isinstance(node, Document):
        parts: List[str] = []
        if node.doctype:
            parts.append(f"<!{node.doctype}>")
        for comment in node.prolog:
            parts.append(f"<!--{comment.data}-->")
        parts.append(serialize(node.root, indent=indent))
        joiner = "\n" if indent else ""
        return joiner.join(parts)
    return _serialize_node(node, indent, 0)


def _serialize_node(node: Node, indent: int, depth: int) -> str:
    pad = " " * (indent * depth) if indent else ""
    if isinstance(node, Text):
        return pad + escape_text(node.data)
    if isinstance(node, Comment):
        return f"{pad}<!--{node.data}-->"
    if isinstance(node, Element):
        return _serialize_element(node, indent, depth)
    raise TypeError(f"cannot serialize {type(node).__name__}")


def _serialize_element(element: Element, indent: int, depth: int) -> str:
    pad = " " * (indent * depth) if indent else ""
    attrs = "".join(
        f' {name}="{escape_attribute(value)}"'
        for name, value in element.attributes.items()
    )
    if not element.children:
        return f"{pad}<{element.tag}{attrs}/>"
    has_text = any(isinstance(child, Text) for child in element.children)
    if has_text or not indent:
        inner = "".join(
            _serialize_node(child, 0, 0) for child in element.children
        )
        return f"{pad}<{element.tag}{attrs}>{inner}</{element.tag}>"
    inner_lines = "\n".join(
        _serialize_node(child, indent, depth + 1) for child in element.children
    )
    return f"{pad}<{element.tag}{attrs}>\n{inner_lines}\n{pad}</{element.tag}>"
