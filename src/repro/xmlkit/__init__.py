"""From-scratch XML toolkit: tokenizer, parser, DOM, DTD, serializer.

This is the document substrate the paper builds on: XML documents with
an explicit ``research-paper`` structure from which organizational
units at each level of detail are derived.
"""

from repro.xmlkit.errors import XmlError, XmlSyntaxError, XmlValidationError
from repro.xmlkit.dom import Comment, Document, Element, Text
from repro.xmlkit.tokenizer import Token, XmlTokenizer, resolve_entities, tokenize_xml
from repro.xmlkit.parser import parse_fragment, parse_xml
from repro.xmlkit.writer import escape_attribute, escape_text, serialize
from repro.xmlkit.select import SelectorError, select, select_one
from repro.xmlkit.sax import (
    ContentHandler,
    TreeBuilderHandler,
    iter_events,
    parse_streaming,
)
from repro.xmlkit.dtd import (
    RESEARCH_PAPER,
    DocumentType,
    ElementDecl,
    research_paper_dtd,
)

__all__ = [
    "XmlError",
    "XmlSyntaxError",
    "XmlValidationError",
    "Comment",
    "Document",
    "Element",
    "Text",
    "Token",
    "XmlTokenizer",
    "resolve_entities",
    "tokenize_xml",
    "parse_xml",
    "parse_fragment",
    "serialize",
    "escape_text",
    "escape_attribute",
    "select",
    "select_one",
    "SelectorError",
    "ContentHandler",
    "parse_streaming",
    "iter_events",
    "TreeBuilderHandler",
    "DocumentType",
    "ElementDecl",
    "research_paper_dtd",
    "RESEARCH_PAPER",
]
