"""Lightweight DTD facility and the ``research-paper`` document type.

The paper grounds its LOD abstraction in XML: "a section LOD might be
implemented using a pair of <section> and </section> tags, where
section is defined as an element in an XML DTD for document type
research-paper" (§3).  We provide a small content-model validator and
the concrete DTD the rest of the library assumes.

Content models are expressed per element as a set of allowed child
tags plus a flag for character data; this covers the document class the
paper works with without implementing full SGML content-model regular
expressions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.xmlkit.dom import Comment, Document, Element, Text
from repro.xmlkit.errors import XmlValidationError


class ElementDecl:
    """Declaration of one element type: allowed children and text policy."""

    __slots__ = ("tag", "children", "allows_text", "required_attributes")

    def __init__(
        self,
        tag: str,
        children: Tuple[str, ...] = (),
        allows_text: bool = False,
        required_attributes: Tuple[str, ...] = (),
    ) -> None:
        self.tag = tag
        self.children: FrozenSet[str] = frozenset(children)
        self.allows_text = allows_text
        self.required_attributes: Tuple[str, ...] = tuple(required_attributes)

    def __repr__(self) -> str:
        return f"ElementDecl({self.tag!r})"


class DocumentType:
    """A named collection of element declarations with a fixed root."""

    def __init__(self, name: str, root: str, declarations: Mapping[str, ElementDecl]) -> None:
        if root not in declarations:
            raise ValueError(f"root element {root!r} has no declaration")
        self.name = name
        self.root = root
        self._declarations: Dict[str, ElementDecl] = dict(declarations)

    def declaration(self, tag: str) -> Optional[ElementDecl]:
        return self._declarations.get(tag)

    def validate(self, document: Document) -> None:
        """Raise :class:`XmlValidationError` on the first violation."""
        if document.root.tag != self.root:
            raise XmlValidationError(
                f"document type {self.name!r} requires root <{self.root}>, "
                f"found <{document.root.tag}>"
            )
        self._validate_element(document.root, path=document.root.tag)

    def is_valid(self, document: Document) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(document)
        except XmlValidationError:
            return False
        return True

    def _validate_element(self, element: Element, path: str) -> None:
        decl = self._declarations.get(element.tag)
        if decl is None:
            raise XmlValidationError(f"undeclared element <{element.tag}> at {path}")
        for attribute in decl.required_attributes:
            if attribute not in element.attributes:
                raise XmlValidationError(
                    f"<{element.tag}> at {path} is missing required "
                    f"attribute {attribute!r}"
                )
        for child in element.children:
            if isinstance(child, Text):
                if child.data.strip() and not decl.allows_text:
                    raise XmlValidationError(
                        f"<{element.tag}> at {path} may not contain character data"
                    )
            elif isinstance(child, Element):
                if child.tag not in decl.children:
                    raise XmlValidationError(
                        f"<{child.tag}> is not allowed inside <{element.tag}> at {path}"
                    )
                self._validate_element(child, path=f"{path}/{child.tag}")
            elif isinstance(child, Comment):
                continue


def research_paper_dtd() -> DocumentType:
    """The ``research-paper`` document type from the paper (§3).

    Hierarchy:  paper → title/abstract/section → subsection →
    subsubsection → paragraph, with ``keyword`` and ``emph`` allowed as
    inline markup inside paragraphs (specially formatted words qualify
    as keywords per §3.3).
    """
    paragraph_inline = ("keyword", "emph")
    declarations = {
        "paper": ElementDecl(
            "paper",
            children=("title", "author", "abstract", "section"),
        ),
        "title": ElementDecl("title", allows_text=True),
        "author": ElementDecl("author", allows_text=True),
        "abstract": ElementDecl("abstract", children=("paragraph",)),
        "section": ElementDecl(
            "section",
            children=("title", "paragraph", "subsection"),
        ),
        "subsection": ElementDecl(
            "subsection",
            children=("title", "paragraph", "subsubsection"),
        ),
        "subsubsection": ElementDecl(
            "subsubsection",
            children=("title", "paragraph"),
        ),
        "paragraph": ElementDecl(
            "paragraph", children=paragraph_inline, allows_text=True
        ),
        "keyword": ElementDecl("keyword", allows_text=True),
        "emph": ElementDecl("emph", allows_text=True),
    }
    return DocumentType("research-paper", root="paper", declarations=declarations)


#: Shared instance of the research-paper document type.
RESEARCH_PAPER: DocumentType = research_paper_dtd()
