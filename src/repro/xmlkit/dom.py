"""A small document object model for parsed XML/HTML documents.

Three node kinds suffice for the paper's document class: elements,
text, and comments.  Elements own an ordered child list and an
attribute dict; navigation helpers (``find``, ``find_all``, ``walk``)
cover everything the structural-characteristic generator needs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

Node = Union["Element", "Text", "Comment"]


class Text:
    """A run of character data."""

    __slots__ = ("data", "parent")

    def __init__(self, data: str) -> None:
        self.data = data
        self.parent: Optional["Element"] = None

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"Text({preview!r})"


class Comment:
    """An XML comment; preserved so serialization round-trips."""

    __slots__ = ("data", "parent")

    def __init__(self, data: str) -> None:
        self.data = data
        self.parent: Optional["Element"] = None

    def __repr__(self) -> str:
        return f"Comment({self.data!r})"


class Element:
    """An XML element with a tag, attributes, and ordered children."""

    __slots__ = ("tag", "attributes", "children", "parent")

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        children: Optional[List[Node]] = None,
    ) -> None:
        if not tag:
            raise ValueError("element tag must be non-empty")
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.children: List[Node] = []
        self.parent: Optional["Element"] = None
        for child in children or []:
            self.append(child)

    # -- construction ----------------------------------------------------

    def append(self, child: Node) -> Node:
        """Append *child* and set its parent pointer; returns the child."""
        if not isinstance(child, (Element, Text, Comment)):
            raise TypeError(f"cannot append {type(child).__name__} to an Element")
        child.parent = self
        self.children.append(child)
        return child

    def append_text(self, data: str) -> Text:
        """Convenience: append a text node built from *data*."""
        return self.append(Text(data))  # type: ignore[return-value]

    # -- navigation --------------------------------------------------------

    def child_elements(self) -> List["Element"]:
        """Direct element children, in document order."""
        return [child for child in self.children if isinstance(child, Element)]

    def find(self, tag: str) -> Optional["Element"]:
        """First descendant element with the given tag, depth-first."""
        for element in self.iter(tag):
            return element
        return None

    def find_all(self, tag: str) -> List["Element"]:
        """All descendant elements with the given tag, depth-first order."""
        return list(self.iter(tag))

    def iter(self, tag: Optional[str] = None) -> Iterator["Element"]:
        """Depth-first iterator over descendant elements.

        The element itself is not yielded; pass ``tag=None`` to yield
        every descendant element.
        """
        for child in self.children:
            if isinstance(child, Element):
                if tag is None or child.tag == tag:
                    yield child
                yield from child.iter(tag)

    def walk(self) -> Iterator[Node]:
        """Depth-first iterator over all descendant nodes (any kind)."""
        for child in self.children:
            yield child
            if isinstance(child, Element):
                yield from child.walk()

    def ancestors(self) -> Iterator["Element"]:
        """Iterator from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- content -----------------------------------------------------------

    def text_content(self) -> str:
        """Concatenated character data of all descendant text nodes."""
        parts: List[str] = []
        for node in self.walk():
            if isinstance(node, Text):
                parts.append(node.data)
        return "".join(parts)

    def direct_text(self) -> str:
        """Character data of the element's immediate text children only."""
        return "".join(
            child.data for child in self.children if isinstance(child, Text)
        )

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Attribute lookup with a default, mirroring ``dict.get``."""
        return self.attributes.get(name, default)

    def __repr__(self) -> str:
        return f"Element({self.tag!r}, {len(self.children)} children)"


class Document:
    """A parsed document: prolog comments plus a single root element."""

    __slots__ = ("root", "prolog", "doctype")

    def __init__(
        self,
        root: Element,
        prolog: Optional[List[Comment]] = None,
        doctype: Optional[str] = None,
    ) -> None:
        self.root = root
        self.prolog: List[Comment] = list(prolog or [])
        self.doctype = doctype

    def find(self, tag: str) -> Optional[Element]:
        if self.root.tag == tag:
            return self.root
        return self.root.find(tag)

    def find_all(self, tag: str) -> List[Element]:
        found = self.root.find_all(tag)
        if self.root.tag == tag:
            return [self.root] + found
        return found

    def __repr__(self) -> str:
        return f"Document(root={self.root.tag!r})"
