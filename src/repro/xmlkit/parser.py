"""Tree builder: assembles tokenizer output into a DOM.

Enforces the well-formedness rules the structural-characteristic
generator depends on: a single root element, properly nested tags, and
no character data outside the root (other than whitespace).
"""

from __future__ import annotations

from typing import List, Optional

from repro.xmlkit.dom import Comment, Document, Element, Text
from repro.xmlkit.errors import XmlSyntaxError
from repro.xmlkit.tokenizer import Token, XmlTokenizer


def parse_xml(source: str) -> Document:
    """Parse well-formed XML *source* into a :class:`Document`.

    Raises :class:`XmlSyntaxError` on any well-formedness violation.
    """
    prolog: List[Comment] = []
    doctype: Optional[str] = None
    root: Optional[Element] = None
    stack: List[Element] = []

    for token in XmlTokenizer(source).tokens():
        if token.kind == "pi":
            continue  # processing instructions carry no document content
        if token.kind == "doctype":
            if root is not None or stack:
                raise XmlSyntaxError(
                    "doctype declaration must precede the root element",
                    token.line,
                    token.column,
                )
            doctype = token.value
            continue
        if token.kind == "comment":
            comment = Comment(token.value)
            if stack:
                stack[-1].append(comment)
            else:
                prolog.append(comment)
            continue
        if token.kind == "text":
            if stack:
                if token.value:
                    stack[-1].append(Text(token.value))
            elif token.value.strip():
                raise XmlSyntaxError(
                    "character data outside the root element",
                    token.line,
                    token.column,
                )
            continue
        if token.kind == "start":
            element = Element(token.value, token.attrs)
            if stack:
                stack[-1].append(element)
            elif root is None:
                root = element
            else:
                raise XmlSyntaxError(
                    f"second root element <{token.value}>", token.line, token.column
                )
            if not token.self_closing:
                stack.append(element)
            continue
        if token.kind == "end":
            if not stack:
                raise XmlSyntaxError(
                    f"unexpected end tag </{token.value}>", token.line, token.column
                )
            open_element = stack.pop()
            if open_element.tag != token.value:
                raise XmlSyntaxError(
                    f"end tag </{token.value}> does not match open <{open_element.tag}>",
                    token.line,
                    token.column,
                )
            continue
        raise XmlSyntaxError(  # pragma: no cover - tokenizer emits no other kinds
            f"unexpected token kind {token.kind!r}", token.line, token.column
        )

    if stack:
        raise XmlSyntaxError(f"unclosed element <{stack[-1].tag}>", 0, 0)
    if root is None:
        raise XmlSyntaxError("document has no root element", 0, 0)
    return Document(root, prolog=prolog, doctype=doctype)


def parse_fragment(source: str) -> List[object]:
    """Parse an XML fragment (no single-root requirement).

    Returns the list of top-level nodes.  Used by tests and by the
    HTML structure extractor when grafting converted content.
    """
    wrapped = parse_xml(f"<fragment>{source}</fragment>")
    nodes = list(wrapped.root.children)
    for node in nodes:
        node.parent = None
    return nodes
