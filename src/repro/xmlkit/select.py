"""A small path-selector over the DOM (CSS-combinator style).

Navigation helpers on :class:`~repro.xmlkit.dom.Element` cover simple
cases; structured tooling (tests, the CLI, the HTML extractor's
consumers) wants declarative paths::

    select(doc, "paper > section > title")   # child combinator
    select(doc, "section paragraph")          # descendant combinator
    select(doc, "section[label]")             # attribute presence
    select(doc, 'section[label="3"] *')       # attribute value + wildcard

Grammar::

    selector   := step (combinator step)*
    combinator := '>' | whitespace
    step       := (tag | '*') predicate*
    predicate  := '[' name ('=' '"' value '"')? ']'
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional, Union

from repro.xmlkit.dom import Document, Element

_STEP_RE = re.compile(
    r"""(?P<tag>[A-Za-z_:][A-Za-z0-9_.:\-]*|\*)
        (?P<preds>(?:\[[^\]]*\])*)""",
    re.X,
)
_PRED_RE = re.compile(
    r"""\[\s*(?P<name>[A-Za-z_:][A-Za-z0-9_.:\-]*)\s*
        (?:=\s*"(?P<value>[^"]*)")?\s*\]""",
    re.X,
)


class SelectorError(Exception):
    """Malformed selector string."""


class _Step(NamedTuple):
    tag: str                      # element tag or "*"
    predicates: tuple             # ((name, value-or-None), ...)
    child_of_previous: bool       # True for ">", False for descendant


def _parse(selector: str) -> List[_Step]:
    text = selector.strip()
    if not text:
        raise SelectorError("empty selector")
    steps: List[_Step] = []
    position = 0
    child = False
    while position < len(text):
        while position < len(text) and text[position].isspace():
            position += 1
        if position < len(text) and text[position] == ">":
            if not steps:
                raise SelectorError("selector cannot start with '>'")
            if child:
                raise SelectorError("duplicate '>' combinator")
            child = True
            position += 1
            continue
        match = _STEP_RE.match(text, position)
        if match is None or match.end() == position:
            raise SelectorError(f"cannot parse selector at {text[position:]!r}")
        predicates = []
        for pred in _PRED_RE.finditer(match.group("preds")):
            predicates.append((pred.group("name"), pred.group("value")))
        # Verify the predicate block parsed completely.
        consumed = "".join(
            f'[{name}="{value}"]' if value is not None else f"[{name}]"
            for name, value in predicates
        )
        raw = match.group("preds")
        if _PRED_RE.sub("", raw).strip():
            raise SelectorError(f"malformed predicate in {raw!r}")
        steps.append(
            _Step(
                tag=match.group("tag"),
                predicates=tuple(predicates),
                child_of_previous=child,
            )
        )
        child = False
        position = match.end()
    if child:
        raise SelectorError("dangling '>' combinator")
    if not steps:
        raise SelectorError("empty selector")
    return steps


def _matches(element: Element, step: _Step) -> bool:
    if step.tag != "*" and element.tag != step.tag:
        return False
    for name, value in step.predicates:
        if name not in element.attributes:
            return False
        if value is not None and element.attributes[name] != value:
            return False
    return True


def select(
    root: Union[Document, Element], selector: str
) -> List[Element]:
    """All elements matching *selector*, in document order.

    The root element itself can match a single-step selector; deeper
    steps match descendants/children per the combinators.
    """
    steps = _parse(selector)
    start = root.root if isinstance(root, Document) else root

    # Candidate sets per step; begin with the root itself plus all
    # descendants for the first (descendant-combinator) step.
    current: List[Element] = []
    first = steps[0]
    if _matches(start, first):
        current.append(start)
    current.extend(el for el in start.iter() if _matches(el, first))

    for step in steps[1:]:
        next_set: List[Element] = []
        seen = set()
        for element in current:
            pool = (
                element.child_elements()
                if step.child_of_previous
                else list(element.iter())
            )
            for candidate in pool:
                if id(candidate) not in seen and _matches(candidate, step):
                    seen.add(id(candidate))
                    next_set.append(candidate)
        current = next_set
    return current


def select_one(
    root: Union[Document, Element], selector: str
) -> Optional[Element]:
    """First match of *selector*, or ``None``."""
    matches = select(root, selector)
    return matches[0] if matches else None
