"""Lexer for XML markup.

Produces a flat token stream (start tags, end tags, text, comments,
processing instructions, doctype declarations) that the tree builder in
:mod:`repro.xmlkit.parser` assembles into a DOM.  The lexer tracks line
and column numbers for error reporting and resolves the five predefined
XML entities plus numeric character references.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

from repro.xmlkit.errors import XmlSyntaxError

PREDEFINED_ENTITIES: Dict[str, str] = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_.:\-]*")
_ENTITY_RE = re.compile(r"&(#x[0-9A-Fa-f]+|#[0-9]+|[A-Za-z_:][A-Za-z0-9_.:\-]*);")


class Token(NamedTuple):
    """One lexical unit of the markup stream.

    ``kind`` is one of ``start``, ``end``, ``text``, ``comment``,
    ``pi``, ``doctype``.  For start tags, ``attrs`` carries the
    attribute dict and ``self_closing`` marks ``<tag/>`` forms.
    """

    kind: str
    value: str
    attrs: Optional[Dict[str, str]]
    self_closing: bool
    line: int
    column: int


def resolve_entities(text: str, line: int = 1, column: int = 1, strict: bool = True) -> str:
    """Replace entity and character references in *text*.

    With ``strict=True`` an unknown entity raises
    :class:`XmlSyntaxError`; with ``strict=False`` (HTML mode) it is
    left verbatim, as browsers do.
    """

    def replace(match: "re.Match[str]") -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in PREDEFINED_ENTITIES:
            return PREDEFINED_ENTITIES[body]
        if strict:
            raise XmlSyntaxError(f"unknown entity &{body};", line, column)
        return match.group(0)

    if "&" not in text:
        return text
    resolved = _ENTITY_RE.sub(replace, text)
    if strict and "&" in _ENTITY_RE.sub("", text):
        raise XmlSyntaxError("bare '&' must be escaped as &amp;", line, column)
    return resolved


class XmlTokenizer:
    """Single-pass lexer over an XML source string."""

    def __init__(self, source: str, strict_entities: bool = True) -> None:
        self._source = source
        self._pos = 0
        self._line = 1
        self._column = 1
        self._strict = strict_entities

    # -- position helpers ---------------------------------------------------

    def _advance(self, count: int) -> str:
        """Consume *count* characters, maintaining line/column."""
        consumed = self._source[self._pos : self._pos + count]
        for char in consumed:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return consumed

    def _error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self._line, self._column)

    def _at_end(self) -> bool:
        return self._pos >= len(self._source)

    def _peek(self, length: int = 1) -> str:
        return self._source[self._pos : self._pos + length]

    def _consume_until(self, terminator: str, context: str) -> str:
        """Consume and return text up to *terminator* (which is also consumed)."""
        index = self._source.find(terminator, self._pos)
        if index < 0:
            raise self._error(f"unterminated {context}")
        text = self._advance(index - self._pos)
        self._advance(len(terminator))
        return text

    # -- tokenization --------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield the token stream; raises on malformed markup."""
        while not self._at_end():
            line, column = self._line, self._column
            if self._peek() == "<":
                yield self._lex_markup(line, column)
            else:
                yield self._lex_text(line, column)

    def _lex_text(self, line: int, column: int) -> Token:
        index = self._source.find("<", self._pos)
        if index < 0:
            index = len(self._source)
        raw = self._advance(index - self._pos)
        data = resolve_entities(raw, line, column, strict=self._strict)
        return Token("text", data, None, False, line, column)

    def _lex_markup(self, line: int, column: int) -> Token:
        if self._peek(4) == "<!--":
            self._advance(4)
            data = self._consume_until("-->", "comment")
            return Token("comment", data, None, False, line, column)
        if self._peek(9) == "<![CDATA[":
            self._advance(9)
            data = self._consume_until("]]>", "CDATA section")
            return Token("text", data, None, False, line, column)
        if self._peek(2) == "<?":
            self._advance(2)
            data = self._consume_until("?>", "processing instruction")
            return Token("pi", data, None, False, line, column)
        if self._peek(2) == "<!":
            self._advance(2)
            data = self._consume_doctype()
            return Token("doctype", data, None, False, line, column)
        if self._peek(2) == "</":
            self._advance(2)
            name = self._lex_name()
            self._skip_whitespace()
            if self._peek() != ">":
                raise self._error(f"malformed end tag </{name}")
            self._advance(1)
            return Token("end", name, None, False, line, column)
        return self._lex_start_tag(line, column)

    def _consume_doctype(self) -> str:
        """Consume a <!DOCTYPE ...> declaration, honoring internal subsets."""
        depth = 1
        start = self._pos
        while depth > 0:
            if self._at_end():
                raise self._error("unterminated doctype declaration")
            char = self._advance(1)
            if char == "<":
                depth += 1
            elif char == ">":
                depth -= 1
        return self._source[start : self._pos - 1].strip()

    def _lex_start_tag(self, line: int, column: int) -> Token:
        self._advance(1)  # consume '<'
        name = self._lex_name()
        attrs: Dict[str, str] = {}
        while True:
            self._skip_whitespace()
            if self._at_end():
                raise self._error(f"unterminated start tag <{name}")
            if self._peek(2) == "/>":
                self._advance(2)
                return Token("start", name, attrs, True, line, column)
            if self._peek() == ">":
                self._advance(1)
                return Token("start", name, attrs, False, line, column)
            attr_name, attr_value = self._lex_attribute(name)
            if attr_name in attrs:
                raise self._error(f"duplicate attribute {attr_name!r} on <{name}>")
            attrs[attr_name] = attr_value

    def _lex_attribute(self, tag_name: str) -> Tuple[str, str]:
        attr_name = self._lex_name()
        self._skip_whitespace()
        if self._peek() != "=":
            raise self._error(
                f"attribute {attr_name!r} on <{tag_name}> is missing '='"
            )
        self._advance(1)
        self._skip_whitespace()
        quote = self._peek()
        if quote not in ("'", '"'):
            raise self._error(
                f"attribute {attr_name!r} on <{tag_name}> must be quoted"
            )
        line, column = self._line, self._column
        self._advance(1)
        raw = self._consume_until(quote, f"attribute value of {attr_name!r}")
        value = resolve_entities(raw, line, column, strict=self._strict)
        return attr_name, value

    def _lex_name(self) -> str:
        match = _NAME_RE.match(self._source, self._pos)
        if match is None:
            raise self._error("expected a name")
        self._advance(match.end() - match.start())
        return match.group(0)

    def _skip_whitespace(self) -> None:
        while not self._at_end() and self._peek() in " \t\r\n":
            self._advance(1)


def tokenize_xml(source: str) -> List[Token]:
    """Convenience wrapper: the full token list of *source*."""
    return list(XmlTokenizer(source).tokens())
