"""Metrics helpers for the experiment drivers."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.util.stats import confidence_interval, mean, sample_stdev


class SeriesPoint:
    """One (x, mean response time) point with dispersion information."""

    __slots__ = ("x", "mean", "stdev", "ci_low", "ci_high", "samples")

    def __init__(self, x: float, samples: Sequence[float]) -> None:
        self.x = x
        self.samples = list(samples)
        self.mean = mean(self.samples)
        self.stdev = sample_stdev(self.samples)
        self.ci_low, self.ci_high = confidence_interval(self.samples)

    def relative_stdev(self) -> float:
        """Dispersion as a fraction of the mean (the paper's 1–5% check)."""
        if self.mean == 0:
            return 0.0
        return self.stdev / self.mean

    def __repr__(self) -> str:
        return f"SeriesPoint(x={self.x:g}, mean={self.mean:.4g}±{self.stdev:.2g})"


def improvement_ratio(baseline: float, candidate: float) -> float:
    """The paper's improvement metric: baseline time / candidate time.

    Values above 1 mean the candidate (a finer LOD) responds faster
    than document-LOD transmission.
    """
    if candidate <= 0:
        raise ValueError("candidate response time must be positive")
    return baseline / candidate


def series_table(
    series: Dict[str, List[SeriesPoint]], x_label: str = "x"
) -> List[Tuple]:
    """Flatten named series into printable rows (series, x, mean, stdev)."""
    rows: List[Tuple] = []
    for name in sorted(series):
        for point in series[name]:
            rows.append((name, point.x, point.mean, point.stdev))
    return rows
