"""Carousel-vs-unicast experiment: thousands of passive receivers.

The weakly-connected argument for broadcast delivery is a server-cost
one: a unicast server pays the air once **per reader**, a carousel pays
it once **per cycle** no matter how many radios are tuned in.  This
driver quantifies that trade for the repository's own artifacts — the
scheduler's precomputed tagged envelopes on one side, the per-reader
unicast frame stream on the other — under the same seeded channel
models the chaos layers use.

Everything here is sans-IO and slot-synchronous: one "slot" is one
wire envelope on the shared medium.  A fleet of
:class:`~repro.broadcast.receiver.CarouselReceiver` instances tunes in
at uniformly random offsets within the first cycle, each behind its
own seeded channel, and listens until its document decodes.  The
unicast baseline replays the same per-reader verdict schedules against
a dedicated round-based frame stream (the socket server's behaviour:
send what the reader is missing, repeat).

Outputs per channel model:

* **bytes on air** — carousel: bytes aired from cycle 0 until the last
  receiver finishes (the stream is shared); unicast: the sum over
  readers of every frame envelope sent to them.
* **tuning latency** — slots (and bytes) from a receiver's tune-in to
  its terminal effect, plus the sync latency (slots before the first
  air index was heard — bounded by one period by construction).

:func:`run_broadcast_experiment` bundles both sides over several
channel specs into one report row set for ``BENCH_broadcast.json``.
"""

from __future__ import annotations

import random
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.broadcast import CarouselReceiver, CarouselScheduler
from repro.broadcast.airindex import ENVELOPE_OVERHEAD
from repro.channel import PASS, parse_model_spec
from repro.coding.packets import Packetizer
from repro.prep.prepare import DocumentSender, PreparedDocument

#: Per-reader seed stride: readers i and j never share a channel
#: stream, and the carousel and unicast sides of the comparison reuse
#: the same per-reader seeds so both face the same adversary.
_SEED_STRIDE = 9973


def build_documents(
    count: int,
    *,
    size: int = 16384,
    packet_size: int = 256,
    gamma: float = 1.5,
    seed: int = 7,
) -> List[Tuple[PreparedDocument, bytes]]:
    """Cook *count* deterministic pseudo-random documents.

    Returns ``(prepared, payload)`` pairs; document ids are
    ``doc-000`` … hottest-first by convention (hotness is assigned by
    the caller).
    """
    if count < 1:
        raise ValueError(f"need at least one document, got {count}")
    sender = DocumentSender(
        Packetizer(packet_size=packet_size, redundancy_ratio=gamma)
    )
    documents = []
    for index in range(count):
        rng = random.Random(seed * 1_000_003 + index)
        payload = bytes(rng.randrange(256) for _ in range(size))
        documents.append((sender.prepare_raw(f"doc-{index:03d}", payload), payload))
    return documents


def zipf_hotness(count: int, *, base: int = 1024) -> List[int]:
    """A 1/rank demand profile: doc-000 hot, the tail cold."""
    return [max(1, base // (rank + 1)) for rank in range(count)]


def _reader_channel(spec: Optional[str], seed: int, reader: int):
    if spec is None:
        return None
    return parse_model_spec(spec, seed=seed + reader * _SEED_STRIDE)


def simulate_carousel(
    scheduler: CarouselScheduler,
    document_id: str,
    *,
    readers: int,
    channel_spec: Optional[str] = None,
    seed: int = 0,
    max_cycles: int = 100,
    expected_payload: Optional[bytes] = None,
    verify_payloads: int = 8,
) -> Dict[str, object]:
    """Tune *readers* passive receivers into the shared carousel stream.

    Each receiver joins at a uniformly random absolute slot offset
    within the first cycle and listens (through its own seeded channel)
    until it decodes or gives up after *max_cycles* cycle boundaries.
    Bytes on air accrue from slot 0 until the last receiver finishes —
    the stream is shared, so the fleet size never multiplies it.
    """
    if readers < 1:
        raise ValueError(f"need at least one reader, got {readers}")
    scheduler.build()
    period = scheduler.period_slots
    offset_rng = random.Random(seed ^ 0x5EED)
    frames = [
        (tag, bytes(envelope[ENVELOPE_OVERHEAD + 1 :]), len(envelope))
        for tag, _sequence, envelope in scheduler.frame_slots()
    ]

    class _State:
        __slots__ = (
            "receiver", "offset", "start_bytes", "finish_slot", "finish_bytes"
        )

        def __init__(self, receiver, offset):
            self.receiver = receiver
            self.offset = offset
            self.start_bytes = None
            self.finish_slot = None
            self.finish_bytes = None

    states = [
        _State(
            CarouselReceiver(
                document_id,
                max_cycles=max_cycles,
                channel=_reader_channel(channel_spec, seed, reader),
            ),
            offset_rng.randrange(period),
        )
        for reader in range(readers)
    ]
    active = set(range(readers))
    slot_index = 0
    cumulative_bytes = 0
    for cycle in range(max_cycles):
        if not active:
            break
        index = scheduler.air_index(cycle)
        index_length = len(index.encode())
        for kind, payload, length in [("index", index, index_length)] + [
            ("frame", (tag, frame), length) for tag, frame, length in frames
        ]:
            cumulative_bytes += length
            for reader in tuple(active):
                state = states[reader]
                if slot_index < state.offset:
                    continue
                if state.start_bytes is None:
                    state.start_bytes = cumulative_bytes - length
                if kind == "index":
                    terminal = state.receiver.on_air_index(payload)
                else:
                    terminal = state.receiver.on_frame(payload[0], payload[1])
                if terminal is not None:
                    state.finish_slot = slot_index
                    state.finish_bytes = cumulative_bytes
                    active.discard(reader)
            slot_index += 1
            if not active:
                # The stream goes dark for this workload the moment the
                # last receiver finishes; later slots cost nothing here.
                break
    bytes_on_air = cumulative_bytes
    for reader in active:
        state = states[reader]
        state.receiver.abort()
        state.finish_slot = slot_index - 1
        state.finish_bytes = cumulative_bytes

    verified = 0
    if expected_payload is not None:
        for state in states:
            if verified >= verify_payloads:
                break
            if state.receiver.decoded:
                if state.receiver.payload() != expected_payload:
                    raise AssertionError(
                        "carousel decode diverged from the unicast payload"
                    )
                verified += 1

    tuning_slots = [
        state.finish_slot - state.offset + 1 for state in states
    ]
    tuning_bytes = [
        state.finish_bytes - (state.start_bytes or 0) for state in states
    ]
    sync_slots = [state.receiver.slots_before_sync for state in states]
    decoded = sum(1 for state in states if state.receiver.decoded)
    return {
        "readers": readers,
        "decoded": decoded,
        "failed": readers - decoded,
        "period_slots": period,
        "cycles_aired": min(max_cycles, (slot_index + period - 1) // period),
        "bytes_on_air": bytes_on_air,
        "mean_tuning_slots": statistics.fmean(tuning_slots),
        "p95_tuning_slots": _percentile(tuning_slots, 95.0),
        "max_tuning_slots": max(tuning_slots),
        "mean_tuning_bytes": statistics.fmean(tuning_bytes),
        "mean_sync_slots": statistics.fmean(sync_slots),
        "max_sync_slots": max(sync_slots),
        "payloads_verified": verified,
    }


def simulate_unicast(
    prepared: PreparedDocument,
    *,
    readers: int,
    channel_spec: Optional[str] = None,
    seed: int = 0,
    max_rounds: int = 100,
) -> Dict[str, object]:
    """The dedicated-stream baseline: every reader gets its own rounds.

    Mirrors the socket server's retransmission loop without the
    sockets: each round sends the reader's missing cooked frames, the
    reader's channel verdicts decide what lands, and the next round
    resends the remainder.  Bytes on air are paid per reader — this is
    the quantity the carousel amortizes away.
    """
    if readers < 1:
        raise ValueError(f"need at least one reader, got {readers}")
    frames = prepared.cooked.frames()
    envelope_lengths = [ENVELOPE_OVERHEAD + len(frame) for frame in frames]
    m, n = prepared.m, prepared.n
    total_bytes = 0
    rounds_used: List[int] = []
    decoded = 0
    for reader in range(readers):
        channel = _reader_channel(channel_spec, seed, reader)
        intact: set = set()
        rounds = 0
        while len(intact) < m and rounds < max_rounds:
            rounds += 1
            for sequence in range(n):
                if sequence in intact:
                    continue
                total_bytes += envelope_lengths[sequence]
                verdict = PASS if channel is None else channel.decide()
                if verdict is PASS:
                    intact.add(sequence)
                if len(intact) >= m:
                    break
        rounds_used.append(rounds)
        if len(intact) >= m:
            decoded += 1
    return {
        "readers": readers,
        "decoded": decoded,
        "failed": readers - decoded,
        "bytes_on_air": total_bytes,
        "mean_rounds": statistics.fmean(rounds_used),
        "max_rounds": max(rounds_used),
        "bytes_per_reader": total_bytes / readers,
    }


def run_broadcast_experiment(
    *,
    readers: int = 1000,
    documents: int = 4,
    document_size: int = 16384,
    packet_size: int = 256,
    gamma: float = 1.5,
    schedule: str = "skewed",
    max_repeats: int = 8,
    channels: Sequence[Optional[str]] = (
        "iid:corrupt=0.1",
        "gilbert:alpha=0.1,burst=5",
    ),
    seed: int = 20000806,
    max_cycles: int = 100,
) -> Dict[str, object]:
    """Full comparison: one hot document, *readers* passive radios.

    Every reader wants ``doc-000`` (the hottest document of a 1/rank
    demand profile); the rest of the carousel rides along, as it would
    on a live broadcast disk.  Each entry of *channels* yields one
    comparison row; ``None`` means a clean channel.
    """
    cooked = build_documents(
        documents,
        size=document_size,
        packet_size=packet_size,
        gamma=gamma,
        seed=seed,
    )
    hotness = zipf_hotness(documents)
    scheduler = CarouselScheduler(schedule=schedule, max_repeats=max_repeats)
    for (prepared, _payload), hits in zip(cooked, hotness):
        scheduler.add_document(prepared, hits)
    scheduler.build()
    hot_prepared, hot_payload = cooked[0]

    rows: List[Dict[str, object]] = []
    for spec in channels:
        carousel = simulate_carousel(
            scheduler,
            hot_prepared.document_id,
            readers=readers,
            channel_spec=spec,
            seed=seed,
            max_cycles=max_cycles,
            expected_payload=hot_payload,
        )
        unicast = simulate_unicast(
            hot_prepared,
            readers=readers,
            channel_spec=spec,
            seed=seed,
            max_rounds=max_cycles,
        )
        rows.append(
            {
                "channel": spec or "clean",
                "carousel": carousel,
                "unicast": unicast,
                "air_savings_ratio": (
                    unicast["bytes_on_air"] / carousel["bytes_on_air"]
                    if carousel["bytes_on_air"]
                    else float("inf")
                ),
            }
        )
    return {
        "benchmark": "broadcast_carousel",
        "readers": readers,
        "documents": scheduler.documents,
        "hot_document": hot_prepared.document_id,
        "hotness": dict(zip(scheduler.documents, hotness)),
        "schedule": schedule,
        "period_slots": scheduler.period_slots,
        "cycle_bytes": scheduler.cycle_bytes(),
        "document_size": document_size,
        "packet_size": packet_size,
        "gamma": gamma,
        "seed": seed,
        "rows": rows,
    }


def _percentile(values: List[int], pct: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction
