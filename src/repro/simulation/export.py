"""Persistence of experiment results.

Experiment drivers return nested dictionaries of
:class:`~repro.simulation.metrics.SeriesPoint`; re-plotting or
cross-run comparison wants them on disk.  This module serializes any
experiment result to a stable JSON form and loads it back:

* dictionary keys of any scalar/tuple/LOD type are encoded as tagged
  strings so round-trips are exact;
* SeriesPoints keep their raw samples, so dispersion statistics can be
  recomputed after loading.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.lod import LOD
from repro.simulation.metrics import SeriesPoint


def _encode_key(key: Any) -> str:
    if isinstance(key, str):
        return f"s:{key}"
    if isinstance(key, bool):
        raise TypeError("boolean keys are ambiguous; use strings")
    if isinstance(key, int):
        return f"i:{key}"
    if isinstance(key, float):
        return f"f:{key!r}"
    if isinstance(key, LOD):
        return f"lod:{key.name}"
    if isinstance(key, tuple):
        return "t:" + json.dumps([_encode_key(part) for part in key])
    raise TypeError(f"cannot encode key of type {type(key).__name__}")


def _decode_key(encoded: str) -> Any:
    tag, _, body = encoded.partition(":")
    if tag == "s":
        return body
    if tag == "i":
        return int(body)
    if tag == "f":
        return float(body)
    if tag == "lod":
        return LOD[body]
    if tag == "t":
        return tuple(_decode_key(part) for part in json.loads(body))
    raise ValueError(f"unknown key tag {tag!r} in {encoded!r}")


def _encode_value(value: Any) -> Any:
    if isinstance(value, SeriesPoint):
        return {"__series_point__": True, "x": value.x, "samples": value.samples}
    if isinstance(value, dict):
        return {_encode_key(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, LOD):
        return {"__lod__": value.name}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"cannot encode value of type {type(value).__name__}")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get("__series_point__"):
            return SeriesPoint(value["x"], value["samples"])
        if "__lod__" in value:
            return LOD[value["__lod__"]]
        return {_decode_key(k): _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def dumps(result: Any, indent: int = 2) -> str:
    """Serialize an experiment result to a JSON string."""
    return json.dumps(_encode_value(result), indent=indent, sort_keys=True)


def loads(text: str) -> Any:
    """Inverse of :func:`dumps`."""
    return _decode_value(json.loads(text))


def save(result: Any, path: Union[str, Path]) -> Path:
    """Write an experiment result to *path*; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dumps(result), encoding="utf-8")
    return path


def load(path: Union[str, Path]) -> Any:
    """Read an experiment result written by :func:`save`."""
    return loads(Path(path).read_text(encoding="utf-8"))
