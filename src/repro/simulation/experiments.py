"""Drivers for the paper's four simulated experiments (§5.1–§5.4).

Each driver returns plain nested dictionaries of
:class:`~repro.simulation.metrics.SeriesPoint` objects keyed the way
the corresponding figure is panelled, so benchmark harnesses and
examples can print the same rows the paper plots.

Common random numbers: every repetition draws its seed from the
master seed *independently of the swept parameter*, so two
configurations compared at the same repetition index see identical
workloads — reducing comparison variance exactly where the paper's
"same experiment repeated 50 times" averaging matters.

Every driver accepts ``jobs``: the sweep's (configuration ×
repetition-block) grid fans across a process pool via
:mod:`repro.simulation.parallel`, and because each repetition is
independently seeded the results are bit-for-bit identical to the
serial run at any worker count.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.lod import LOD
from repro.simulation.metrics import SeriesPoint, improvement_ratio
from repro.simulation.parallel import SessionTask, map_session_means
from repro.simulation.parameters import Parameters

#: The α values the paper sweeps in Figures 2 and 4–5.
DEFAULT_ALPHAS = (0.1, 0.2, 0.3, 0.4, 0.5)

#: The γ grid of Figure 4 (1.1 .. 2.5 step 0.1).
DEFAULT_GAMMAS = tuple(round(1.1 + 0.1 * i, 2) for i in range(15))

#: The F/I grid of Figures 5–7 (0.1 .. 1.0 step 0.1; F = 0 is the
#: paper's "artificial" do-not-download point, included for shape).
DEFAULT_FRACTIONS = tuple(round(0.1 * i, 1) for i in range(11))

#: LODs compared in Experiments #3 and #4 (the simulated documents
#: "do not have subsubsection defined", §5.3).
EXPERIMENT_LODS = (LOD.DOCUMENT, LOD.SECTION, LOD.SUBSECTION, LOD.PARAGRAPH)


def _repetition_seeds(seed: int, repetitions: int) -> List[int]:
    master = random.Random(seed)
    return [master.getrandbits(64) for _ in range(repetitions)]


def _session_means(
    params: Parameters,
    seeds: Sequence[int],
    caching: bool,
    lod: LOD = LOD.DOCUMENT,
) -> List[float]:
    """Serial helper kept for ad-hoc use; drivers batch via tasks."""
    [means] = map_session_means(
        [SessionTask(params, tuple(seeds), caching, lod)], jobs=1
    )
    return means


# ---------------------------------------------------------------------------
# Experiment #1 — Caching vs NoCaching across the redundancy ratio (Fig. 4)
# ---------------------------------------------------------------------------

def experiment1(
    params: Parameters,
    gammas: Sequence[float] = DEFAULT_GAMMAS,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    irrelevant_fractions: Sequence[float] = (0.0, 0.5),
    seed: int = 20000401,
    jobs: Optional[int] = 1,
) -> Dict[Tuple[str, float], Dict[float, List[SeriesPoint]]]:
    """Response time vs γ for each α, panelled by (strategy, I).

    Reproduces Figure 4: panels (NoCaching, I=0), (Caching, I=0),
    (NoCaching, I=0.5), (Caching, I=0.5); one curve per α.  All
    documents are transmitted at the document LOD ("modeling [the]
    conventional transmission paradigm").
    """
    seeds = tuple(_repetition_seeds(seed, params.repetitions))
    keys: List[Tuple[str, float, float, float]] = []
    tasks: List[SessionTask] = []
    for irrelevant in irrelevant_fractions:
        for strategy, caching in (("nocaching", False), ("caching", True)):
            for alpha in alphas:
                for gamma in gammas:
                    config = params.replace(
                        gamma=gamma, alpha=alpha, irrelevant=irrelevant
                    )
                    keys.append((strategy, irrelevant, alpha, gamma))
                    tasks.append(SessionTask(config, seeds, caching))
    all_means = map_session_means(tasks, jobs=jobs)

    panels: Dict[Tuple[str, float], Dict[float, List[SeriesPoint]]] = {}
    for (strategy, irrelevant, alpha, gamma), means in zip(keys, all_means):
        curves = panels.setdefault((strategy, irrelevant), {})
        curves.setdefault(alpha, []).append(SeriesPoint(gamma, means))
    return panels


# ---------------------------------------------------------------------------
# Experiment #2 — impact of I and of F (Fig. 5)
# ---------------------------------------------------------------------------

def experiment2(
    params: Parameters,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    seed: int = 20000402,
    jobs: Optional[int] = 1,
) -> Dict[Tuple[str, str], Dict[float, List[SeriesPoint]]]:
    """Response time vs I (F = 0.5) and vs F (I = 0.5).

    Reproduces Figure 5: panels keyed ("vary_i" | "vary_f",
    "nocaching" | "caching"), one curve per α, document LOD.
    """
    seeds = tuple(_repetition_seeds(seed, params.repetitions))
    keys: List[Tuple[str, str, float, float]] = []
    tasks: List[SessionTask] = []
    for strategy, caching in (("nocaching", False), ("caching", True)):
        for alpha in alphas:
            for irrelevant in fractions:
                config = params.replace(
                    alpha=alpha, irrelevant=irrelevant, threshold=0.5
                )
                keys.append(("vary_i", strategy, alpha, irrelevant))
                tasks.append(SessionTask(config, seeds, caching))
            for threshold in fractions:
                config = params.replace(
                    alpha=alpha, irrelevant=0.5, threshold=threshold
                )
                keys.append(("vary_f", strategy, alpha, threshold))
                tasks.append(SessionTask(config, seeds, caching))
    all_means = map_session_means(tasks, jobs=jobs)

    panels: Dict[Tuple[str, str], Dict[float, List[SeriesPoint]]] = {}
    for (panel_kind, strategy, alpha, x), means in zip(keys, all_means):
        curves = panels.setdefault((panel_kind, strategy), {})
        curves.setdefault(alpha, []).append(SeriesPoint(x, means))
    return panels


# ---------------------------------------------------------------------------
# Experiment #3 — multi-resolution improvement per LOD (Fig. 6)
# ---------------------------------------------------------------------------

def experiment3(
    params: Parameters,
    thresholds: Sequence[float] = DEFAULT_FRACTIONS,
    alphas: Sequence[float] = (0.1, 0.3, 0.5),
    lods: Sequence[LOD] = EXPERIMENT_LODS,
    seed: int = 20000403,
    caching: bool = True,
    jobs: Optional[int] = 1,
) -> Dict[float, Dict[LOD, List[SeriesPoint]]]:
    """Improvement over document-LOD transmission, per LOD and α.

    Reproduces Figure 6: all documents irrelevant (I = 1) so only the
    early-discard path is measured; the improvement at LOD ℓ and
    threshold F is mean-RT(document LOD) / mean-RT(ℓ).  Values are
    :class:`SeriesPoint` objects whose samples are the per-repetition
    improvement ratios.
    """
    seeds = tuple(_repetition_seeds(seed, params.repetitions))
    # One task per (α, F, LOD); the document LOD doubles as the
    # baseline every other LOD is compared against.
    wanted_lods = list(dict.fromkeys([LOD.DOCUMENT, *lods]))
    keys: List[Tuple[float, float, LOD]] = []
    tasks: List[SessionTask] = []
    for alpha in alphas:
        for threshold in thresholds:
            config = params.replace(alpha=alpha, irrelevant=1.0, threshold=threshold)
            for lod in wanted_lods:
                keys.append((alpha, threshold, lod))
                tasks.append(SessionTask(config, seeds, caching, lod))
    all_means = map_session_means(tasks, jobs=jobs)
    by_key = dict(zip(keys, all_means))

    results: Dict[float, Dict[LOD, List[SeriesPoint]]] = {}
    for alpha in alphas:
        per_lod: Dict[LOD, List[SeriesPoint]] = {lod: [] for lod in lods}
        for threshold in thresholds:
            baseline = by_key[(alpha, threshold, LOD.DOCUMENT)]
            for lod in lods:
                candidate = by_key[(alpha, threshold, lod)]
                ratios = [
                    1.0 if base == 0.0 and cand == 0.0 else improvement_ratio(base, cand)
                    for base, cand in zip(baseline, candidate)
                    if cand > 0.0 or base == 0.0
                ]
                per_lod[lod].append(SeriesPoint(threshold, ratios or [1.0]))
        results[alpha] = per_lod
    return results


# ---------------------------------------------------------------------------
# Experiment #4 — impact of the skew factor δ (Fig. 7)
# ---------------------------------------------------------------------------

def experiment4(
    params: Parameters,
    thresholds: Sequence[float] = DEFAULT_FRACTIONS,
    deltas: Sequence[float] = (2.0, 3.0, 4.0, 5.0),
    lods: Sequence[LOD] = EXPERIMENT_LODS,
    seed: int = 20000404,
    alpha: float = 0.1,
    jobs: Optional[int] = 1,
) -> Dict[float, Dict[LOD, List[SeriesPoint]]]:
    """Experiment #3 repeated at α = 0.1 for several skew factors δ.

    Reproduces Figure 7; higher δ concentrates content in fewer
    paragraphs, so finer LODs discard irrelevant documents sooner.
    """
    results: Dict[float, Dict[LOD, List[SeriesPoint]]] = {}
    for delta in deltas:
        config = params.replace(delta=delta)
        results[delta] = experiment3(
            config,
            thresholds=thresholds,
            alphas=(alpha,),
            lods=lods,
            seed=seed,
            jobs=jobs,
        )[alpha]
    return results
