"""Client energy accounting (paper §1–2 motivation).

The paper motivates everything with the "limited energy of a mobile
client": wasted transfers burn battery, and the literature it cites
reduces energy with clock-rate reduction and disk spin-down [7, 20].
This module prices a browsing session in joules with the classic
WaveLAN-era radio model:

* ``rx_power`` W while the radio is receiving a transfer;
* ``idle_power`` W while the radio is up but the user is reading
  (think time between documents);
* ``decode_energy`` J per erasure-decode that needs matrix recovery
  (reconstructions where clear-text packets were lost).

Early termination (multi-resolution's contribution) converts receive
time into idle/sleep time, which is where its energy saving comes
from; the model makes that saving measurable.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple, Sequence

from repro.simulation.runner import TransferOutcome
from repro.util.validation import check_positive


class EnergyModel(NamedTuple):
    """Radio/CPU power figures (defaults ≈ 2.4 GHz WaveLAN, 1999)."""

    rx_power: float = 1.2        # W while receiving
    idle_power: float = 0.15     # W while idle/listening
    sleep_power: float = 0.02    # W with the radio sleeping
    decode_energy: float = 0.05  # J per matrix-recovery decode


class SessionEnergy(NamedTuple):
    """Energy breakdown of one browsing session."""

    receive_joules: float
    idle_joules: float
    decode_joules: float

    @property
    def total_joules(self) -> float:
        return self.receive_joules + self.idle_joules + self.decode_joules


def transfer_energy(
    outcome: TransferOutcome,
    model: EnergyModel = EnergyModel(),
    needed_matrix_decode: bool = False,
) -> float:
    """Joules spent receiving (and decoding) one document transfer."""
    energy = model.rx_power * outcome.response_time
    if needed_matrix_decode and outcome.success and not outcome.terminated_early:
        energy += model.decode_energy
    return energy


def session_energy(
    outcomes: Sequence[TransferOutcome],
    think_time_per_document: float = 10.0,
    model: EnergyModel = EnergyModel(),
) -> SessionEnergy:
    """Energy of a whole session: transfers plus inter-document idle.

    *think_time_per_document* is the reading pause after each document
    during which the radio idles (or sleeps, at ``sleep_power``, if
    the client powers it down — use a model with ``idle_power`` set to
    the sleep figure for that policy).
    """
    check_positive(think_time_per_document, "think_time_per_document")
    receive = sum(model.rx_power * outcome.response_time for outcome in outcomes)
    idle = model.idle_power * think_time_per_document * len(outcomes)
    # A full (non-early) success on a lossy channel typically needs the
    # recovery decode; early terminations never decode.
    decode = model.decode_energy * sum(
        1
        for outcome in outcomes
        if outcome.success
        and not outcome.terminated_early
        and outcome.packets_sent > 0
    )
    return SessionEnergy(
        receive_joules=receive, idle_joules=idle, decode_joules=decode
    )


def energy_saving(
    baseline: SessionEnergy, candidate: SessionEnergy
) -> float:
    """Fractional total-energy saving of *candidate* over *baseline*."""
    if baseline.total_joules <= 0:
        raise ValueError("baseline energy must be positive")
    return 1.0 - candidate.total_joules / baseline.total_joules
