"""Synthetic research-paper corpus generator.

The §5 workload abstracts documents to IC vectors; testing the *full*
pipeline (XML parsing → lemmatization → keyword extraction → search)
at corpus scale needs actual text.  This generator produces
research-paper XML with the statistical properties real text has:

* a Zipf-distributed background vocabulary (rank-frequency ∝ 1/rank);
* per-document *topic* words drawn from a topic pool and boosted, so
  documents are distinguishable and queries have right answers;
* the 5 × 2 × 2 organizational geometry of the paper's simulation.

Everything is driven by a seeded RNG, so corpora are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util.validation import check_positive_int

# A compact consonant-vowel syllable inventory yields pronounceable,
# stemming-stable pseudo-words.
_ONSETS = "b c d f g l m n p r s t v".split()
_VOWELS = "a e i o u".split()
_CODAS = ["", "n", "r", "s", "l", "t"]


def _make_word(rng: random.Random, syllables: int) -> str:
    parts = []
    for _ in range(syllables):
        parts.append(
            rng.choice(_ONSETS) + rng.choice(_VOWELS) + rng.choice(_CODAS)
        )
    return "".join(parts)


def make_vocabulary(size: int, seed: int = 0, syllables: Tuple[int, int] = (2, 4)) -> List[str]:
    """*size* distinct pseudo-words, deterministic in *seed*."""
    check_positive_int(size, "size")
    rng = random.Random(seed)
    words: List[str] = []
    seen = set()
    while len(words) < size:
        word = _make_word(rng, rng.randint(*syllables))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return words


class ZipfSampler:
    """Samples vocabulary indices with P(rank) ∝ 1/(rank+1)^s."""

    def __init__(self, size: int, exponent: float = 1.1) -> None:
        check_positive_int(size, "size")
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        weights = [1.0 / (rank + 1) ** exponent for rank in range(size)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)

    def sample(self, rng: random.Random) -> int:
        from bisect import bisect_left

        return bisect_left(self._cumulative, rng.random())


class CorpusGenerator:
    """Generates research-paper XML documents over a shared vocabulary.

    Parameters
    ----------
    vocabulary_size / topic_count / topic_words:
        Background vocabulary size; number of topics; topic-specific
        words per topic (disjoint from each other).
    words_per_paragraph:
        Mean paragraph length in words.
    """

    def __init__(
        self,
        vocabulary_size: int = 800,
        topic_count: int = 8,
        topic_words: int = 12,
        words_per_paragraph: int = 40,
        seed: int = 0,
    ) -> None:
        check_positive_int(vocabulary_size, "vocabulary_size")
        check_positive_int(topic_count, "topic_count")
        check_positive_int(topic_words, "topic_words")
        check_positive_int(words_per_paragraph, "words_per_paragraph")
        needed = topic_count * topic_words
        if needed >= vocabulary_size:
            raise ValueError("vocabulary too small for the requested topics")
        self.vocabulary = make_vocabulary(vocabulary_size, seed=seed)
        self.topics: List[List[str]] = [
            self.vocabulary[i * topic_words : (i + 1) * topic_words]
            for i in range(topic_count)
        ]
        self._background = self.vocabulary[needed:]
        self._sampler = ZipfSampler(len(self._background))
        self.words_per_paragraph = words_per_paragraph
        self._seed = seed

    def topic_query(self, topic: int, words: int = 3) -> str:
        """A query string targeting *topic* (its most prominent words)."""
        return " ".join(self.topics[topic][:words])

    def _paragraph(self, rng: random.Random, topic: int, topic_bias: float) -> str:
        words: List[str] = []
        count = max(5, int(rng.gauss(self.words_per_paragraph, 6)))
        for _ in range(count):
            if rng.random() < topic_bias:
                words.append(rng.choice(self.topics[topic]))
            else:
                words.append(self._background[self._sampler.sample(rng)])
        sentence_break = max(6, count // 3)
        pieces = []
        for index, word in enumerate(words):
            if index % sentence_break == 0:
                word = word.capitalize()
            pieces.append(word)
            if index % sentence_break == sentence_break - 1:
                pieces[-1] += "."
        text = " ".join(pieces)
        if not text.endswith("."):
            text += "."
        return text

    def document(
        self,
        doc_id: int,
        topic: Optional[int] = None,
        sections: int = 5,
        subsections: int = 2,
        paragraphs: int = 2,
        topic_bias: float = 0.25,
    ) -> Tuple[str, int]:
        """One research-paper XML document; returns ``(xml, topic)``."""
        rng = random.Random((self._seed << 20) ^ doc_id)
        chosen = topic if topic is not None else rng.randrange(len(self.topics))
        title_words = [self.topics[chosen][0], self.topics[chosen][1]]
        parts = [f"<paper>\n  <title>Study of {' '.join(title_words)}</title>"]
        parts.append(
            "  <abstract><paragraph>"
            + self._paragraph(rng, chosen, topic_bias * 2.0)
            + "</paragraph></abstract>"
        )
        for s in range(sections):
            parts.append(f"  <section>\n    <title>Part {s + 1}</title>")
            for _ss in range(subsections):
                parts.append("    <subsection>\n      <title>Detail</title>")
                for _p in range(paragraphs):
                    parts.append(
                        "      <paragraph>"
                        + self._paragraph(rng, chosen, topic_bias)
                        + "</paragraph>"
                    )
                parts.append("    </subsection>")
            parts.append("  </section>")
        parts.append("</paper>")
        return "\n".join(parts), chosen

    def corpus(self, count: int, **document_kwargs) -> Dict[str, Tuple[str, int]]:
        """*count* documents keyed ``doc-000``, with balanced topics."""
        check_positive_int(count, "count")
        result: Dict[str, Tuple[str, int]] = {}
        for index in range(count):
            topic = index % len(self.topics)
            xml, chosen = self.document(index, topic=topic, **document_kwargs)
            result[f"doc-{index:03d}"] = (xml, chosen)
        return result
