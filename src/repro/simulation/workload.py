"""Synthetic document workload (paper §5).

Each simulated document has 5 sections × 2 subsections × 2 paragraphs;
paragraph information contents are drawn from a uniform distribution
whose spread is controlled by the skew factor δ — "the ratio between
the highest information content of a paragraph and the lowest" — and
normalized to sum to one (the additive rule at the document level).

The workload object answers the one question the transfer simulator
asks: *in what order do the document's bytes go on the air at a given
LOD, and how much content does each clear-text packet then carry?*
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.core.lod import LOD
from repro.simulation.parameters import Parameters


class SyntheticDocument:
    """One generated document: a paragraph IC vector plus geometry."""

    def __init__(self, params: Parameters, rng: random.Random) -> None:
        self.params = params
        count = params.paragraphs
        # Uniform draws on [1, δ] make the expected max/min ratio ≈ δ;
        # δ = 1 degenerates to equal contents.
        raw = [rng.uniform(1.0, params.delta) for _ in range(count)]
        total = sum(raw)
        self.paragraph_ic: List[float] = [value / total for value in raw]

    # -- structure helpers ---------------------------------------------------

    def _group_size(self, lod: LOD) -> int:
        """Paragraphs per organizational unit at *lod*."""
        params = self.params
        if lod is LOD.DOCUMENT:
            return params.paragraphs
        if lod is LOD.SECTION:
            return params.subsections_per_section * params.paragraphs_per_subsection
        if lod is LOD.SUBSECTION:
            return params.paragraphs_per_subsection
        # The simulated documents "do not have subsubsection defined"
        # (§5.3): both finer LODs rank individual paragraphs.
        return 1

    def unit_ic(self, lod: LOD) -> List[float]:
        """Information content of each unit at *lod*, document order."""
        size = self._group_size(lod)
        return [
            sum(self.paragraph_ic[start : start + size])
            for start in range(0, self.params.paragraphs, size)
        ]

    def paragraph_order(self, lod: LOD) -> List[int]:
        """Paragraph transmission order for LOD-ranked transfer.

        Units at *lod* are sorted by descending information content
        (stable: ties keep document order, matching the deterministic
        multi-resolution scheduler); paragraphs within a unit stay in
        document order.  The document LOD is the conventional
        sequential order.
        """
        if lod is LOD.DOCUMENT:
            return list(range(self.params.paragraphs))
        size = self._group_size(lod)
        units = self.unit_ic(lod)
        ranked = sorted(range(len(units)), key=lambda index: (-units[index], index))
        order: List[int] = []
        for unit_index in ranked:
            start = unit_index * size
            order.extend(range(start, start + size))
        return order

    def content_profile(self, lod: LOD) -> List[float]:
        """Content carried by each clear-text packet at *lod*.

        The scheduled paragraph stream is cut into M packets of ``sp``
        bytes; a packet carries content proportional to the paragraph
        bytes it covers (content accrues linearly within a paragraph).
        """
        params = self.params
        order = self.paragraph_order(lod)
        paragraph_bytes = params.sd / params.paragraphs

        profile: List[float] = []
        m = params.m
        for packet_index in range(m):
            start_byte = packet_index * params.sp
            end_byte = min(start_byte + params.sp, params.sd)
            content = 0.0
            position = start_byte
            while position < end_byte:
                paragraph_slot = int(position // paragraph_bytes)
                if paragraph_slot >= len(order):
                    break
                paragraph = order[paragraph_slot]
                slot_end = min((paragraph_slot + 1) * paragraph_bytes, end_byte)
                fraction = (slot_end - position) / paragraph_bytes
                content += self.paragraph_ic[paragraph] * fraction
                position = slot_end
            profile.append(content)
        return profile


def generate_session(
    params: Parameters, rng: random.Random
) -> List[SyntheticDocument]:
    """The documents one browsing session visits."""
    return [
        SyntheticDocument(params, rng) for _ in range(params.documents_per_session)
    ]


def relevance_flags(params: Parameters, rng: random.Random) -> List[bool]:
    """Irrelevance indicator per session document.

    Exactly ⌊I·count⌋ documents are irrelevant, placed at random
    positions — matching "a certain percentage of documents, I,
    defined to be irrelevant" without binomial noise between runs.
    """
    count = params.documents_per_session
    irrelevant_count = int(round(params.irrelevant * count))
    flags = [index < irrelevant_count for index in range(count)]
    rng.shuffle(flags)
    return flags
