"""Evaluation substrate (paper §5): Table 2 parameters, synthetic
workloads, the oracle-mode transfer simulator, and the drivers for
Experiments #1–#4.
"""

from repro.simulation.parameters import Parameters, from_environment, quick, table2_defaults
from repro.simulation.workload import (
    SyntheticDocument,
    generate_session,
    relevance_flags,
)
from repro.simulation.runner import (
    SessionResult,
    TransferOutcome,
    repeated_sessions,
    simulate_session,
    simulate_transfer,
)
from repro.simulation.metrics import SeriesPoint, improvement_ratio, series_table
from repro.simulation.energy import (
    EnergyModel,
    SessionEnergy,
    energy_saving,
    session_energy,
    transfer_energy,
)
from repro.simulation.throughput import (
    ThroughputResult,
    session_throughput,
    throughput_comparison,
)
from repro.simulation.export import dumps as export_dumps
from repro.simulation.export import load as export_load
from repro.simulation.export import loads as export_loads
from repro.simulation.export import save as export_save
from repro.simulation.textgen import CorpusGenerator, ZipfSampler, make_vocabulary
from repro.simulation.experiments import (
    DEFAULT_ALPHAS,
    DEFAULT_FRACTIONS,
    DEFAULT_GAMMAS,
    EXPERIMENT_LODS,
    experiment1,
    experiment2,
    experiment3,
    experiment4,
)
from repro.simulation.parallel import (
    JOBS_ENV,
    SessionTask,
    jobs_from_environment,
    map_session_means,
    resolve_jobs,
)

__all__ = [
    "JOBS_ENV",
    "SessionTask",
    "jobs_from_environment",
    "map_session_means",
    "resolve_jobs",
    "Parameters",
    "table2_defaults",
    "quick",
    "from_environment",
    "SyntheticDocument",
    "generate_session",
    "relevance_flags",
    "simulate_transfer",
    "simulate_session",
    "repeated_sessions",
    "TransferOutcome",
    "SessionResult",
    "SeriesPoint",
    "improvement_ratio",
    "series_table",
    "experiment1",
    "experiment2",
    "experiment3",
    "experiment4",
    "DEFAULT_ALPHAS",
    "DEFAULT_GAMMAS",
    "DEFAULT_FRACTIONS",
    "EXPERIMENT_LODS",
    "EnergyModel",
    "SessionEnergy",
    "transfer_energy",
    "session_energy",
    "energy_saving",
    "ThroughputResult",
    "session_throughput",
    "throughput_comparison",
    "export_save",
    "export_load",
    "export_dumps",
    "export_loads",
    "CorpusGenerator",
    "ZipfSampler",
    "make_vocabulary",
]
