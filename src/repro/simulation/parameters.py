"""Simulation parameters — the paper's Table 2.

==============  =============================================  =======
Parameter       Description                                    Default
==============  =============================================  =======
``sp``          Raw size per packet (bytes)                    256
``sd``          Size per document (bytes)                      10240
``overhead``    Frame overhead: CRC + sequence number (bytes)  4
``m``           Number of raw packets (derived: ⌈sd/sp⌉)       40
``n``           Number of cooked packets (derived: ⌈γ·m⌉)      60
``bandwidth``   Channel bandwidth (kbps)                       19.2
``delta``       Skew factor of paragraph information content   3
``irrelevant``  Fraction I of irrelevant documents             0.5
``threshold``   Information content F deciding irrelevance     0.5
``alpha``       Per-packet corruption probability              0.1
``gamma``       Redundancy ratio N/M                           1.5
==============  =============================================  =======

Document structure (§5): 5 sections × 2 subsections × 2 paragraphs
per document; a browsing session visits 200 documents and every
experiment is repeated 50 times.  The defaults below reproduce that;
``quick()`` returns a scaled-down configuration for fast test runs.
"""

from __future__ import annotations

import dataclasses
import math
import os

from repro.util.validation import (
    check_positive,
    check_positive_int,
    check_probability,
    check_range,
)


@dataclasses.dataclass(frozen=True)
class Parameters:
    """One complete simulation configuration (immutable)."""

    sp: int = 256                 # raw bytes per packet
    sd: int = 10240               # document size in bytes
    overhead: int = 4             # CRC + sequence number bytes per frame
    bandwidth_kbps: float = 19.2  # wireless channel bandwidth
    delta: float = 3.0            # information-content skew factor
    irrelevant: float = 0.5       # fraction I of irrelevant documents
    threshold: float = 0.5        # relevance threshold F
    alpha: float = 0.1            # per-packet corruption probability
    gamma: float = 1.5            # redundancy ratio N/M
    sections: int = 5
    subsections_per_section: int = 2
    paragraphs_per_subsection: int = 2
    documents_per_session: int = 200
    repetitions: int = 50
    max_rounds: int = 25          # retransmission bound per document

    def __post_init__(self) -> None:
        check_positive_int(self.sp, "sp")
        check_positive_int(self.sd, "sd")
        check_positive_int(self.overhead + 1, "overhead")  # allow 0
        check_positive(self.bandwidth_kbps, "bandwidth_kbps")
        check_range(self.delta, 1.0, 1000.0, "delta")
        check_probability(self.irrelevant, "irrelevant")
        check_range(self.threshold, 0.0, 1.0, "threshold")
        check_probability(self.alpha, "alpha")
        check_range(self.gamma, 1.0, 6.0, "gamma")
        check_positive_int(self.sections, "sections")
        check_positive_int(self.subsections_per_section, "subsections_per_section")
        check_positive_int(self.paragraphs_per_subsection, "paragraphs_per_subsection")
        check_positive_int(self.documents_per_session, "documents_per_session")
        check_positive_int(self.repetitions, "repetitions")
        check_positive_int(self.max_rounds, "max_rounds")

    # -- derived quantities -------------------------------------------------

    @property
    def m(self) -> int:
        """Number of raw packets M = ⌈s_D / s_p⌉."""
        return -(-self.sd // self.sp)

    @property
    def n(self) -> int:
        """Number of cooked packets N = ⌈γ·M⌉ (min M, max 255)."""
        return min(max(math.ceil(self.gamma * self.m - 1e-9), self.m), 255)

    @property
    def paragraphs(self) -> int:
        """Paragraphs per document (20 with Table 2 defaults)."""
        return (
            self.sections
            * self.subsections_per_section
            * self.paragraphs_per_subsection
        )

    @property
    def packet_time(self) -> float:
        """Air time of one cooked packet: (s_p + O)·8 / bandwidth."""
        return (self.sp + self.overhead) * 8.0 / (self.bandwidth_kbps * 1000.0)

    def replace(self, **changes) -> "Parameters":
        """A modified copy (convenience over ``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)


def table2_defaults() -> Parameters:
    """The exact Table 2 configuration."""
    return Parameters()


def quick(documents: int = 60, repetitions: int = 5) -> Parameters:
    """A scaled-down configuration for fast CI-grade runs."""
    return Parameters(documents_per_session=documents, repetitions=repetitions)


def from_environment() -> Parameters:
    """Full Table 2 scale when ``REPRO_FULL=1``, quick scale otherwise."""
    if os.environ.get("REPRO_FULL") == "1":
        return table2_defaults()
    return quick()
