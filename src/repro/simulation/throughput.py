"""Effective-throughput experiment (paper §6).

The paper's future work: "we are also conducting experiments to
measure the throughput of our system in browsing web documents when
compared with traditional web browsing paradigm."  We define the
metric a browsing user cares about:

    effective throughput = useful document bytes delivered
                           ------------------------------------
                           total air time consumed

where *useful* bytes are content-equivalent bytes: a relevant
document delivers its full s_D bytes of content; an irrelevant one
delivers the F·s_D content-equivalent the user needed to reach the
discard decision, *however many air bytes it took to get there*.
Conventional sequential transmission hauls low-content bytes before
the decision is possible; multi-resolution reaches the same decision
with less air time, raising the effective rate.
"""

from __future__ import annotations

import random
from typing import Dict, NamedTuple, Sequence

from repro.core.lod import LOD
from repro.simulation.parameters import Parameters
from repro.simulation.runner import simulate_session


class ThroughputResult(NamedTuple):
    """Effective throughput of one session configuration."""

    lod: LOD
    useful_bytes: float
    air_seconds: float

    @property
    def effective_kbps(self) -> float:
        if self.air_seconds == 0:
            return 0.0
        return self.useful_bytes * 8.0 / (self.air_seconds * 1000.0)


def session_throughput(
    params: Parameters,
    lod: LOD,
    seed: int,
    caching: bool = True,
) -> ThroughputResult:
    """Measure one session's effective throughput at *lod*."""
    rng = random.Random(seed)
    result = simulate_session(
        params, rng, caching=caching, lod=lod, collect_outcomes=True
    )
    useful = 0.0
    air = 0.0
    for outcome in result.outcomes:
        air += outcome.response_time
        if not outcome.success:
            continue
        if outcome.terminated_early:
            # Content-equivalent bytes of the discard decision: the
            # user needed content F, worth F·s_D document bytes.
            useful += params.threshold * params.sd
        else:
            useful += params.sd
    return ThroughputResult(lod=lod, useful_bytes=useful, air_seconds=air)


def throughput_comparison(
    params: Parameters,
    lods: Sequence[LOD] = (LOD.DOCUMENT, LOD.SECTION, LOD.SUBSECTION, LOD.PARAGRAPH),
    repetitions: int = 3,
    seed: int = 20000406,
    caching: bool = True,
) -> Dict[LOD, float]:
    """Mean effective throughput (kbps) per LOD over *repetitions*.

    Uses common repetition seeds across LODs for variance reduction.
    """
    master = random.Random(seed)
    seeds = [master.getrandbits(64) for _ in range(repetitions)]
    comparison: Dict[LOD, float] = {}
    for lod in lods:
        values = [
            session_throughput(params, lod, seed=s, caching=caching).effective_kbps
            for s in seeds
        ]
        comparison[lod] = sum(values) / len(values)
    return comparison
