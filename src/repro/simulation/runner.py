"""The transfer simulator: fast oracle-mode driver of the §4.2 protocol.

The byte-level driver in :mod:`repro.transport` is exact but carries
real frames; the evaluation (§5) needs hundreds of thousands of
packet events, so this runner drives the *same* decision logic — the
sans-IO :class:`repro.protocol.TransferEngine` — on packet indices
only.  Equivalence between the two paths is asserted by the three-way
parity suite (`tests/test_integration_transport_vs_runner.py`).

Per round, all N cooked packets are sent in sequence order; each is
corrupted independently with probability α.  The engine terminates
the transfer when

* M intact packets are held (document reconstructable), or
* received content ≥ the relevance threshold F (irrelevant document
  discarded — the "stop button"), or
* the round ends with < M intact: a stall.  Caching keeps the intact
  set across the retransmission; NoCaching starts over.

CRN discipline: the driver draws exactly one uniform variate per
packet from the caller's RNG, and the engine draws none — common
random numbers stay aligned across policies, and enabling telemetry
cannot perturb outcomes.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Sequence

from repro.obs.runtime import OBS
from repro.protocol import (
    DEFAULT_ROUND_TIMEOUT,
    EarlyStop,
    Failed,
    TelemetryBridge,
    TransferEngine,
)
from repro.simulation.parameters import Parameters
from repro.simulation.workload import SyntheticDocument, generate_session, relevance_flags
from repro.core.lod import LOD


class TransferOutcome(NamedTuple):
    """Result of one simulated document transfer."""

    response_time: float
    rounds: int
    packets_sent: int
    success: bool
    terminated_early: bool


#: The bridge is stateless (it only names a metric namespace), so the
#: sweeps share one instead of constructing one per transfer.
_SIM_BRIDGE = TelemetryBridge("sim")


def simulate_transfer(
    m: int,
    n: int,
    alpha: float,
    packet_time: float,
    rng: random.Random,
    caching: bool,
    relevance_threshold: Optional[float] = None,
    content_profile: Optional[Sequence[float]] = None,
    max_rounds: int = 25,
    round_timeout: float = DEFAULT_ROUND_TIMEOUT,
) -> TransferOutcome:
    """Simulate one document download; see the module docstring.

    *content_profile* gives the content of clear-text packet i (in
    transmission order); required when *relevance_threshold* is set.
    *round_timeout* is the shared channel-time bound per round
    (:data:`repro.protocol.DEFAULT_ROUND_TIMEOUT`): when one full
    round of N packets takes at least this long, the link is too slow
    to ever converge and the transfer aborts instead of retrying.
    """
    bridge = _SIM_BRIDGE
    engine = TransferEngine(
        m,
        n,
        content_profile=list(content_profile) if content_profile is not None else None,
        caching=caching,
        relevance_threshold=relevance_threshold,
        max_rounds=max_rounds,
        document_id="sim",
        bridge=bridge,
    )

    rand = rng.random
    on_intact = engine.on_frame_intact
    time = 0.0
    packets_sent = 0

    # The per-packet loop carries no instrumentation of its own: all
    # protocol telemetry is emitted by the engine's bridge at round and
    # transfer granularity, and is one attribute read when disabled.
    terminal = engine.start()
    while terminal is None:
        for seq in range(n):
            time += packet_time
            packets_sent += 1
            if rand() < alpha:
                # Oracle mode knows ground truth: a corrupted packet is
                # simply discarded, no engine event needed (there is no
                # preloaded state a loss could newly reveal).
                continue
            terminal = on_intact(seq)
            if terminal is not None:
                break
        else:
            if n * packet_time >= round_timeout:
                terminal = engine.abort()
            else:
                terminal = engine.on_round_ended()

    outcome = TransferOutcome(
        time,
        terminal.round,
        packets_sent,
        success=not isinstance(terminal, Failed),
        terminated_early=isinstance(terminal, EarlyStop),
    )
    if OBS.enabled:
        bridge.complete(
            success=outcome.success,
            terminated_early=outcome.terminated_early,
            rounds=outcome.rounds,
            frames=outcome.packets_sent,
            content=engine.content_received,
            response_time=outcome.response_time,
        )
    return outcome


class SessionResult(NamedTuple):
    """Aggregate outcome of one browsing session."""

    mean_response_time: float
    response_times: List[float]
    stalled_documents: int
    early_terminations: int
    outcomes: List[TransferOutcome] = []


def simulate_session(
    params: Parameters,
    rng: random.Random,
    caching: bool,
    lod: LOD = LOD.DOCUMENT,
    collect_times: bool = False,
    collect_outcomes: bool = False,
) -> SessionResult:
    """Simulate one browsing session of ``params.documents_per_session``.

    A fraction I of the documents is irrelevant and terminates at
    content F; the rest download to reconstruction.  Transmission
    order (and hence the clear-packet content profile) follows *lod*.
    """
    documents = generate_session(params, rng)
    irrelevant = relevance_flags(params, rng)

    m, n = params.m, params.n
    packet_time = params.packet_time
    total_time = 0.0
    times: List[float] = []
    outcomes: List[TransferOutcome] = []
    stalled = 0
    early = 0

    for document, is_irrelevant in zip(documents, irrelevant):
        threshold = params.threshold if is_irrelevant else None
        profile = document.content_profile(lod) if is_irrelevant else None
        outcome = simulate_transfer(
            m=m,
            n=n,
            alpha=params.alpha,
            packet_time=packet_time,
            rng=rng,
            caching=caching,
            relevance_threshold=threshold,
            content_profile=profile,
            max_rounds=params.max_rounds,
        )
        total_time += outcome.response_time
        if collect_times:
            times.append(outcome.response_time)
        if collect_outcomes:
            outcomes.append(outcome)
        if not outcome.success:
            stalled += 1
        if outcome.terminated_early:
            early += 1

    if OBS.enabled:
        OBS.metrics.counter("sim.sessions", "simulated browsing sessions").inc()
        OBS.metrics.counter("sim.stalled_documents").inc(stalled)

    mean_time = total_time / len(documents)
    return SessionResult(
        mean_response_time=mean_time,
        response_times=times,
        stalled_documents=stalled,
        early_terminations=early,
        outcomes=outcomes,
    )


def repeated_sessions(
    params: Parameters,
    seed: int,
    caching: bool,
    lod: LOD = LOD.DOCUMENT,
) -> List[float]:
    """Mean response time of each of ``params.repetitions`` sessions.

    The paper repeats every experiment 50 times and averages the mean
    response times; this returns the per-repetition means so callers
    can also report dispersion.
    """
    master = random.Random(seed)
    means: List[float] = []
    for _repetition in range(params.repetitions):
        rng = random.Random(master.getrandbits(64))
        result = simulate_session(params, rng, caching=caching, lod=lod)
        means.append(result.mean_response_time)
    return means
