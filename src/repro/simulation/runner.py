"""The transfer simulator: fast oracle-mode replay of the §4.2 protocol.

The byte-level protocol in :mod:`repro.transport` is exact but carries
real frames; the evaluation (§5) needs hundreds of thousands of
packet events, so this runner replays the identical decision logic on
packet *indices* only.  Equivalence between the two paths is asserted
by an integration test (`tests/test_integration_transport_vs_runner.py`).

Per round, all N cooked packets are sent in sequence order; each is
corrupted independently with probability α.  The transfer terminates
when

* M intact packets are held (document reconstructable), or
* received content ≥ the relevance threshold F (irrelevant document
  discarded — the "stop button"), or
* the round ends with < M intact: a stall.  Caching keeps the intact
  set across the retransmission; NoCaching starts over.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Sequence

from repro.simulation.parameters import Parameters
from repro.simulation.workload import SyntheticDocument, generate_session, relevance_flags
from repro.core.lod import LOD


class TransferOutcome(NamedTuple):
    """Result of one simulated document transfer."""

    response_time: float
    rounds: int
    packets_sent: int
    success: bool
    terminated_early: bool


def simulate_transfer(
    m: int,
    n: int,
    alpha: float,
    packet_time: float,
    rng: random.Random,
    caching: bool,
    relevance_threshold: Optional[float] = None,
    content_profile: Optional[Sequence[float]] = None,
    max_rounds: int = 25,
) -> TransferOutcome:
    """Simulate one document download; see the module docstring.

    *content_profile* gives the content of clear-text packet i (in
    transmission order); required when *relevance_threshold* is set.
    """
    if relevance_threshold is not None and content_profile is None:
        raise ValueError("relevance termination requires a content_profile")
    if relevance_threshold is not None and relevance_threshold <= 0.0:
        return TransferOutcome(0.0, 0, 0, True, True)

    rand = rng.random
    intact = bytearray(n)
    intact_count = 0
    content = 0.0
    time = 0.0
    packets_sent = 0

    for round_index in range(1, max_rounds + 1):
        for seq in range(n):
            time += packet_time
            packets_sent += 1
            if rand() < alpha:
                continue
            if intact[seq]:
                continue
            intact[seq] = 1
            intact_count += 1
            if seq < m and content_profile is not None:
                content += content_profile[seq]

            if relevance_threshold is not None:
                # Once reconstruction is possible the whole document's
                # content is in hand; either way the check is against
                # the usable content, matching TransferReceiver.
                usable = 1.0 if intact_count >= m else content
                if usable >= relevance_threshold:
                    return TransferOutcome(time, round_index, packets_sent, True, True)
            if intact_count >= m:
                # Reconstruction possible: the transfer is complete.
                return TransferOutcome(time, round_index, packets_sent, True, False)

        if not caching:
            intact = bytearray(n)
            intact_count = 0
            content = 0.0

    return TransferOutcome(time, max_rounds, packets_sent, False, False)


class SessionResult(NamedTuple):
    """Aggregate outcome of one browsing session."""

    mean_response_time: float
    response_times: List[float]
    stalled_documents: int
    early_terminations: int
    outcomes: List[TransferOutcome] = []


def simulate_session(
    params: Parameters,
    rng: random.Random,
    caching: bool,
    lod: LOD = LOD.DOCUMENT,
    collect_times: bool = False,
    collect_outcomes: bool = False,
) -> SessionResult:
    """Simulate one browsing session of ``params.documents_per_session``.

    A fraction I of the documents is irrelevant and terminates at
    content F; the rest download to reconstruction.  Transmission
    order (and hence the clear-packet content profile) follows *lod*.
    """
    documents = generate_session(params, rng)
    irrelevant = relevance_flags(params, rng)

    m, n = params.m, params.n
    packet_time = params.packet_time
    total_time = 0.0
    times: List[float] = []
    outcomes: List[TransferOutcome] = []
    stalled = 0
    early = 0

    for document, is_irrelevant in zip(documents, irrelevant):
        threshold = params.threshold if is_irrelevant else None
        profile = document.content_profile(lod) if is_irrelevant else None
        outcome = simulate_transfer(
            m=m,
            n=n,
            alpha=params.alpha,
            packet_time=packet_time,
            rng=rng,
            caching=caching,
            relevance_threshold=threshold,
            content_profile=profile,
            max_rounds=params.max_rounds,
        )
        total_time += outcome.response_time
        if collect_times:
            times.append(outcome.response_time)
        if collect_outcomes:
            outcomes.append(outcome)
        if not outcome.success:
            stalled += 1
        if outcome.terminated_early:
            early += 1

    mean_time = total_time / len(documents)
    return SessionResult(
        mean_response_time=mean_time,
        response_times=times,
        stalled_documents=stalled,
        early_terminations=early,
        outcomes=outcomes,
    )


def repeated_sessions(
    params: Parameters,
    seed: int,
    caching: bool,
    lod: LOD = LOD.DOCUMENT,
) -> List[float]:
    """Mean response time of each of ``params.repetitions`` sessions.

    The paper repeats every experiment 50 times and averages the mean
    response times; this returns the per-repetition means so callers
    can also report dispersion.
    """
    master = random.Random(seed)
    means: List[float] = []
    for _repetition in range(params.repetitions):
        rng = random.Random(master.getrandbits(64))
        result = simulate_session(params, rng, caching=caching, lod=lod)
        means.append(result.mean_response_time)
    return means
