"""The transfer simulator: fast oracle-mode replay of the §4.2 protocol.

The byte-level protocol in :mod:`repro.transport` is exact but carries
real frames; the evaluation (§5) needs hundreds of thousands of
packet events, so this runner replays the identical decision logic on
packet *indices* only.  Equivalence between the two paths is asserted
by an integration test (`tests/test_integration_transport_vs_runner.py`).

Per round, all N cooked packets are sent in sequence order; each is
corrupted independently with probability α.  The transfer terminates
when

* M intact packets are held (document reconstructable), or
* received content ≥ the relevance threshold F (irrelevant document
  discarded — the "stop button"), or
* the round ends with < M intact: a stall.  Caching keeps the intact
  set across the retransmission; NoCaching starts over.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Sequence

from repro.obs.runtime import OBS
from repro.obs.trace import (
    DECODE_COMPLETE,
    EARLY_STOP,
    ROUND_STALLED,
    ROUND_START,
)
from repro.simulation.parameters import Parameters
from repro.simulation.workload import SyntheticDocument, generate_session, relevance_flags
from repro.core.lod import LOD


class TransferOutcome(NamedTuple):
    """Result of one simulated document transfer."""

    response_time: float
    rounds: int
    packets_sent: int
    success: bool
    terminated_early: bool


def simulate_transfer(
    m: int,
    n: int,
    alpha: float,
    packet_time: float,
    rng: random.Random,
    caching: bool,
    relevance_threshold: Optional[float] = None,
    content_profile: Optional[Sequence[float]] = None,
    max_rounds: int = 25,
) -> TransferOutcome:
    """Simulate one document download; see the module docstring.

    *content_profile* gives the content of clear-text packet i (in
    transmission order); required when *relevance_threshold* is set.
    """
    if relevance_threshold is not None and content_profile is None:
        raise ValueError("relevance termination requires a content_profile")
    if relevance_threshold is not None and relevance_threshold <= 0.0:
        return TransferOutcome(0.0, 0, 0, True, True)

    # One attribute read when telemetry is off; the per-packet loop
    # below carries no instrumentation at all (events are emitted at
    # round and transfer granularity only).
    telemetry = OBS.enabled
    if telemetry:
        OBS.trace.begin_transfer(document="sim", m=m, n=n)

    rand = rng.random
    intact = bytearray(n)
    intact_count = 0
    content = 0.0
    time = 0.0
    packets_sent = 0

    for round_index in range(1, max_rounds + 1):
        if telemetry:
            OBS.trace.emit(ROUND_START, round=round_index)
        for seq in range(n):
            time += packet_time
            packets_sent += 1
            if rand() < alpha:
                continue
            if intact[seq]:
                continue
            intact[seq] = 1
            intact_count += 1
            if seq < m and content_profile is not None:
                content += content_profile[seq]

            if relevance_threshold is not None:
                # Once reconstruction is possible the whole document's
                # content is in hand; either way the check is against
                # the usable content, matching TransferReceiver.
                usable = 1.0 if intact_count >= m else content
                if usable >= relevance_threshold:
                    outcome = TransferOutcome(time, round_index, packets_sent, True, True)
                    return _record_outcome(outcome, intact_count) if telemetry else outcome
            if intact_count >= m:
                # Reconstruction possible: the transfer is complete.
                outcome = TransferOutcome(time, round_index, packets_sent, True, False)
                return _record_outcome(outcome, intact_count) if telemetry else outcome

        if telemetry:
            OBS.trace.emit(ROUND_STALLED, round=round_index, intact=intact_count)
            OBS.metrics.counter("sim.stalls", "simulated rounds ending < M intact").inc()
        if not caching:
            intact = bytearray(n)
            intact_count = 0
            content = 0.0

    outcome = TransferOutcome(time, max_rounds, packets_sent, False, False)
    return _record_outcome(outcome, intact_count) if telemetry else outcome


#: Histogram buckets for simulated transfers (rounds and seconds).
_SIM_ROUND_BUCKETS = (1, 2, 3, 5, 8, 13, 21, 34, 55, 100)
_SIM_RESPONSE_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)


def _record_outcome(outcome: TransferOutcome, intact_count: int) -> TransferOutcome:
    """Emit end-of-transfer telemetry for the oracle-mode runner."""
    trace = OBS.trace
    if outcome.terminated_early:
        trace.emit(EARLY_STOP, round=outcome.rounds)
    elif outcome.success:
        trace.emit(DECODE_COMPLETE, round=outcome.rounds, intact=intact_count)
    metrics = OBS.metrics
    kind = (
        "early_stop"
        if outcome.terminated_early
        else ("ok" if outcome.success else "failed")
    )
    metrics.counter("sim.transfers").labels(outcome=kind).inc()
    metrics.counter("sim.packets_sent").inc(outcome.packets_sent)
    metrics.histogram(
        "sim.rounds", "rounds per simulated transfer", buckets=_SIM_ROUND_BUCKETS
    ).observe(outcome.rounds)
    metrics.histogram(
        "sim.response_seconds",
        "simulated response time",
        buckets=_SIM_RESPONSE_BUCKETS,
    ).observe(outcome.response_time)
    trace.end_transfer(
        success=outcome.success,
        rounds=outcome.rounds,
        frames=outcome.packets_sent,
        response_time=outcome.response_time,
    )
    return outcome


class SessionResult(NamedTuple):
    """Aggregate outcome of one browsing session."""

    mean_response_time: float
    response_times: List[float]
    stalled_documents: int
    early_terminations: int
    outcomes: List[TransferOutcome] = []


def simulate_session(
    params: Parameters,
    rng: random.Random,
    caching: bool,
    lod: LOD = LOD.DOCUMENT,
    collect_times: bool = False,
    collect_outcomes: bool = False,
) -> SessionResult:
    """Simulate one browsing session of ``params.documents_per_session``.

    A fraction I of the documents is irrelevant and terminates at
    content F; the rest download to reconstruction.  Transmission
    order (and hence the clear-packet content profile) follows *lod*.
    """
    documents = generate_session(params, rng)
    irrelevant = relevance_flags(params, rng)

    m, n = params.m, params.n
    packet_time = params.packet_time
    total_time = 0.0
    times: List[float] = []
    outcomes: List[TransferOutcome] = []
    stalled = 0
    early = 0

    for document, is_irrelevant in zip(documents, irrelevant):
        threshold = params.threshold if is_irrelevant else None
        profile = document.content_profile(lod) if is_irrelevant else None
        outcome = simulate_transfer(
            m=m,
            n=n,
            alpha=params.alpha,
            packet_time=packet_time,
            rng=rng,
            caching=caching,
            relevance_threshold=threshold,
            content_profile=profile,
            max_rounds=params.max_rounds,
        )
        total_time += outcome.response_time
        if collect_times:
            times.append(outcome.response_time)
        if collect_outcomes:
            outcomes.append(outcome)
        if not outcome.success:
            stalled += 1
        if outcome.terminated_early:
            early += 1

    if OBS.enabled:
        OBS.metrics.counter("sim.sessions", "simulated browsing sessions").inc()
        OBS.metrics.counter("sim.stalled_documents").inc(stalled)

    mean_time = total_time / len(documents)
    return SessionResult(
        mean_response_time=mean_time,
        response_times=times,
        stalled_documents=stalled,
        early_terminations=early,
        outcomes=outcomes,
    )


def repeated_sessions(
    params: Parameters,
    seed: int,
    caching: bool,
    lod: LOD = LOD.DOCUMENT,
) -> List[float]:
    """Mean response time of each of ``params.repetitions`` sessions.

    The paper repeats every experiment 50 times and averages the mean
    response times; this returns the per-repetition means so callers
    can also report dispersion.
    """
    master = random.Random(seed)
    means: List[float] = []
    for _repetition in range(params.repetitions):
        rng = random.Random(master.getrandbits(64))
        result = simulate_session(params, rng, caching=caching, lod=lod)
        means.append(result.mean_response_time)
    return means
