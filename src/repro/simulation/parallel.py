"""Parallel execution of experiment sweeps.

The paper's four experiments (§5.1–§5.4) repeat every sweep point 50
times; the drivers in :mod:`repro.simulation.experiments` enumerate
hundreds of (configuration × repetition) simulations that are all
mutually independent.  This module fans that work across a
``ProcessPoolExecutor`` while preserving the common-random-number
contract **bit-for-bit**:

* every repetition is simulated with a fresh ``random.Random(seed)``
  whose seed was drawn from the master seed before any fan-out, so a
  repetition's workload does not depend on which worker runs it or in
  what order;
* results are reassembled in submission order, so the value stream a
  driver sees is byte-identical between ``jobs=1`` and ``jobs=N``
  (locked in by ``tests/test_simulation_parallel.py``).

The work unit is a *repetition block*: one sweep-point configuration
plus a slice of its repetition seeds.  Blocks keep per-task pickling
overhead amortized while still letting a single expensive sweep point
spread across workers.
"""

from __future__ import annotations

import os
import random
from concurrent.futures import ProcessPoolExecutor
from typing import List, NamedTuple, Optional, Sequence, Tuple

from repro.core.lod import LOD
from repro.obs.runtime import OBS
from repro.simulation.parameters import Parameters
from repro.simulation.runner import simulate_session

#: Environment variable supplying the default worker count.
JOBS_ENV = "REPRO_JOBS"

#: Default number of repetition seeds per work unit.  Small enough to
#: load-balance a 50-repetition sweep point across workers, large
#: enough that pickling a Parameters dataclass is amortized.
DEFAULT_BLOCK_SIZE = 8


class SessionTask(NamedTuple):
    """One sweep point: a configuration and its repetition seeds."""

    params: Parameters
    seeds: Tuple[int, ...]
    caching: bool
    lod: LOD = LOD.DOCUMENT


def _run_block(task: SessionTask) -> List[float]:
    """Simulate one repetition block; top-level so it pickles."""
    means: List[float] = []
    for seed in task.seeds:
        result = simulate_session(
            task.params, random.Random(seed), caching=task.caching, lod=task.lod
        )
        means.append(result.mean_response_time)
    return means


def jobs_from_environment(default: int = 1) -> int:
    """Worker count from ``REPRO_JOBS`` (invalid/unset → *default*)."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None → env default, 0 → cpu count."""
    if jobs is None:
        jobs = jobs_from_environment()
    if jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0 for cpu count), got {jobs}")
    return jobs


def _split_blocks(
    tasks: Sequence[SessionTask], block_size: int
) -> List[Tuple[int, SessionTask]]:
    """(task_index, block) pairs covering every seed exactly once, in order."""
    blocks: List[Tuple[int, SessionTask]] = []
    for index, task in enumerate(tasks):
        seeds = task.seeds
        for start in range(0, len(seeds), block_size):
            blocks.append(
                (index, task._replace(seeds=seeds[start : start + block_size]))
            )
    return blocks


def map_session_means(
    tasks: Sequence[SessionTask],
    jobs: Optional[int] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[List[float]]:
    """Per-repetition mean response times for every task, in order.

    ``jobs <= 1`` runs serially in-process; otherwise the repetition
    blocks fan across a process pool.  Either way the returned value
    for task *i*, repetition *j* is exactly
    ``simulate_session(tasks[i].params, random.Random(tasks[i].seeds[j]),
    ...).mean_response_time`` — the execution strategy is
    unobservable in the results.
    """
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    jobs = resolve_jobs(jobs)
    if not tasks:
        return []
    if jobs <= 1:
        return [_run_block(task) for task in tasks]

    blocks = _split_blocks(tasks, block_size)
    if OBS.enabled:
        OBS.metrics.gauge("parallel.jobs", "sweep worker processes").set(jobs)
        OBS.metrics.counter("parallel.blocks", "repetition blocks dispatched").inc(
            len(blocks)
        )
        OBS.metrics.counter("parallel.tasks", "sweep points dispatched").inc(
            len(tasks)
        )
    results: List[List[float]] = [[] for _ in tasks]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [(index, pool.submit(_run_block, block)) for index, block in blocks]
        # Collect in submission order: blocks of a task were emitted
        # seed-order, so concatenation restores the serial layout.
        for index, future in futures:
            results[index].extend(future.result())
    return results
